"""Command-line interface: run any of the paper's systems from a shell.

Every run the CLI constructs goes through the declarative scenario
layer (:mod:`repro.scenarios`): flags build a
:class:`~repro.scenarios.ScenarioSpec`, the spec builds the simulator.
The same spec can live in a JSON file — ``repro scenario run`` of the
file is byte-identical to the equivalent ``repro run`` flags.

The subcommands cover the repository's surface:

* ``run``       — dynamic packet transmission (AO-/CA-ARRoW, baselines)
                  under a chosen slot adversary, workload and optional
                  fault injection (``--faults``);
* ``grid``      — an algorithm x rho experiment grid on the
                  :mod:`repro.exec` process pool (``--jobs``), with
                  content-addressed result caching (``--no-cache`` to
                  bypass), CSV export, and fault tolerance: per-cell
                  ``--task-timeout`` and ``--retries``, plus a
                  ``--journal`` checkpoint so an interrupted run
                  ``--resume``\\ s recomputing only missing cells;
* ``scenario``  — the declarative layer itself: ``list`` registries and
                  bundled specs, ``validate`` spec files, ``run`` a
                  spec file (or replay a JSONL artifact's embedded spec);
* ``serve``     — the run-service HTTP daemon (:mod:`repro.service`):
                  accepts ``RunRequest`` JSON over localhost, streams
                  the JSONL artifact back incrementally, serves repeat
                  submissions from the result cache;
* ``submit``    — the matching client: POST a scenario file (or a full
                  ``RunRequest`` document) to a running daemon;
* ``sst``       — single-successful-transmission / leader election
                  (ABS, unknown-R doubling, randomized);
* ``adversary`` — execute a theorem construction (Thm 2 mirror,
                  Thm 4 collision forcer, Thm 5 rate-one);
* ``bounds``    — print every closed-form bound for given parameters;
* ``diagram``   — print the Fig. 3/5/6 automata as text or Graphviz DOT;
* ``stats``     — summarize a saved JSONL run artifact;
* ``trace``     — summarize a flight-recorder trace (``--trace`` on
                  ``run``/``grid``/``bench perf`` records one:
                  Perfetto-loadable Chrome trace-event JSON);
* ``history``   — the persistent run-history index: ``list``, ``show``
                  or ``query`` every recorded completion
                  (``.repro-cache/history.db``);
* ``bench``     — benchmark artifact tooling (``bench diff`` compares
                  two ``benchmarks/results`` directories and exits
                  nonzero on any value drift);
* ``cache``     — inspect, clear, or ``verify`` (re-hash and
                  quarantine corrupt entries) the ``.repro-cache``
                  result cache.

Examples::

    python -m repro run --algorithm ca-arrow --n 4 --max-slot 2 \
        --rho 1/2 --horizon 5000 --schedule worst
    python -m repro run --algorithm ca-arrow-ft --n 4 --rho 2/5 \
        --faults crash:2@40
    python -m repro scenario run scenarios/ca_arrow_worst.json
    python -m repro scenario validate scenarios/
    python -m repro stats out.jsonl
    python -m repro grid --algorithms ca-arrow,ao-arrow --rhos 1/2,9/10 \
        --n 4 --horizon 20000 --jobs 4 --csv grid.csv
    python -m repro bench diff results-main benchmarks/results
    python -m repro sst --algorithm abs --n 16 --max-slot 2 --schedule random --seed 7
    python -m repro adversary mirror --n 64 --realized-r 4
    python -m repro bounds --n 8 --max-slot 2 --rho 3/4 --burstiness 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .algorithms import ABSLeaderElection, NaiveTDMA
from .analysis import (
    abs_slot_upper_bound,
    ao_queue_bound_L,
    ao_sync_silence_threshold,
    ca_gap_slots,
    ca_queue_bound_L,
    mbtf_queue_bound,
    sst_lower_bound_slots,
)
from .core import as_time
from .core.errors import ConfigurationError
from .lowerbounds import (
    force_collision_or_overflow,
    measure_rate_one_instability,
    run_mirror_adversary,
    verify_mirror_execution,
)
from .obs import (
    Tracer,
    activate,
    deactivate,
    git_sha,
    record_completion,
    render_summary,
    summarize_run,
)
from .scenarios import ALGORITHMS, FAULTS, SCHEDULES, SOURCES, ScenarioSpec, load_spec
from .service import (
    COMMANDS,
    RunRequest,
    RunResult,
    execute,
    options_from_args,
)

#: Where the bundled scenario files live, relative to the repo root.
BUNDLED_SCENARIOS_DIR = "scenarios"


def _parse_fault_flag(text: str) -> Dict[str, Any]:
    """One ``--faults`` occurrence -> one fault entry dict.

    Two syntaxes::

        crash:SID@SLOT                  # shorthand for the common case
        KIND:key=value,key=value        # e.g. jam-periodic:burst=1,period=12
    """
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    if not kind:
        raise SystemExit(f"--faults: missing fault kind in {text!r}")
    if kind == "crash" and "@" in rest and "=" not in rest:
        station, _, at_slot = rest.partition("@")
        try:
            return {
                "kind": "crash",
                "station": int(station),
                "at_slot": int(at_slot),
            }
        except ValueError:
            raise SystemExit(
                f"--faults: expected crash:SID@SLOT, got {text!r}"
            ) from None
    entry: Dict[str, Any] = {"kind": kind}
    if rest.strip():
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            if not eq:
                raise SystemExit(
                    f"--faults: expected key=value in {text!r}, got {item!r}"
                )
            key = key.strip()
            value = value.strip()
            try:
                entry[key] = int(value)
            except ValueError:
                entry[key] = value
    return entry


def _spec_or_exit(**kwargs: Any) -> ScenarioSpec:
    """Build a spec, turning validation errors into CLI errors."""
    try:
        return ScenarioSpec(**kwargs)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def _dynamic_algorithm_or_exit(name: str) -> None:
    """Reject non-fleet names with the historical error shape."""
    if name not in ALGORITHMS.names(kind="dynamic"):
        raise SystemExit(
            f"unknown algorithm {name!r} "
            f"(use {' | '.join(ALGORITHMS.names(kind='dynamic'))})"
        )


def _schedule_or_exit(name: str) -> str:
    if name not in SCHEDULES:
        raise SystemExit(
            f"unknown schedule {name!r} (use {' | '.join(SCHEDULES.names())})"
        )
    return name


def _spec_from_run_args(args: argparse.Namespace) -> ScenarioSpec:
    _dynamic_algorithm_or_exit(args.algorithm)
    _schedule_or_exit(args.schedule)
    faults = tuple(_parse_fault_flag(text) for text in (args.faults or ()))
    return _spec_or_exit(
        algorithm=args.algorithm,
        n=args.n,
        max_slot=args.max_slot,
        schedule=args.schedule,
        rho=args.rho,
        burst=args.burst,
        horizon=args.horizon,
        seed=args.seed,
        faults=faults,
    )


@contextmanager
def _tracing(path: Optional[str]) -> Iterator[Optional[Tracer]]:
    """Activate the flight recorder around a command body.

    With no path this is a no-op (tracing stays zero-cost off).  With
    one, a :class:`Tracer` is active for the body and the Chrome trace
    is exported — even when the body fails, so a crashed grid still
    leaves its evidence behind.
    """
    if not path:
        yield None
        return
    tracer = activate(Tracer())
    try:
        yield tracer
    finally:
        deactivate()
        try:
            target = tracer.export_chrome(path)
        except OSError as exc:
            raise SystemExit(f"cannot write trace {path!r}: {exc}") from None
        print(f"trace: {target}")


def _request_or_exit(**kwargs: Any) -> RunRequest:
    """Build a service request, turning validation errors into CLI errors."""
    try:
        return RunRequest(**kwargs)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def _run_spec(spec: ScenarioSpec, args: argparse.Namespace) -> int:
    """Route one spec through the service (``run`` / ``scenario run``)."""
    if args.progress and args.progress < 1:
        raise SystemExit(f"--progress must be >= 1, got {args.progress}")
    request = _request_or_exit(
        specs=(spec,), command="run", options=options_from_args(args)
    )
    try:
        result = execute(request)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    _render_run(spec, result, args)
    return 0


def _render_run(
    spec: ScenarioSpec, result: RunResult, args: argparse.Namespace
) -> None:
    """Print one run result — byte-identical to the pre-service CLI.

    The header line is golden-pinned (tests/golden/) — engine and
    timebase are run options, surfaced via --verbose-engine instead.
    """
    metrics = result.metrics
    print(f"algorithm={spec.algorithm} n={spec.n} R={spec.max_slot} "
          f"rho={spec.rho} schedule={spec.schedule_display()} "
          f"horizon={spec.horizon}")
    if getattr(args, "verbose_engine", False):
        detail = f" ({result.engine_detail})" if result.engine_detail else ""
        print(f"  engine:         {result.engine}/"
              f"{result.timebase}{detail}")
    print(f"  delivered:      {metrics.delivered}")
    print(f"  backlog:        {metrics.backlog} (peak {metrics.max_backlog})")
    print(f"  collisions:     {metrics.collisions}")
    print(f"  control msgs:   {metrics.control_transmissions}")
    print(f"  throughput:     {float(metrics.throughput_cost):.4f} cost/time")
    if metrics.mean_latency is not None:
        print(f"  mean latency:   {float(metrics.mean_latency):.2f}")
    if args.metrics:
        print("metrics:")
        for line in result.metrics_lines:
            print(f"  {line}")
    if args.profile:
        print("profile:")
        for line in result.profile_lines:
            print(f"  {line}")
    if result.artifact_path is not None:
        print(f"artifact:         {result.artifact_path}")


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_run_args(args)
    with _tracing(args.trace):
        return _run_spec(spec, args)


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import load_run

    try:
        artifact = load_run(args.artifact)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.artifact!r}: {exc}") from None
    if artifact.manifest is None and not artifact.records:
        raise SystemExit(
            f"{args.artifact!r} is not a repro run artifact "
            "(no manifest or event records; expected a --emit-jsonl file)"
        )
    stats = summarize_run(artifact)
    for line in render_summary(stats):
        print(line)
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from .obs import render_trace_summary, summarize_trace

    try:
        summary = summarize_trace(args.trace_file)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.trace_file!r}: {exc}") from None
    except ValueError as exc:
        raise SystemExit(f"{args.trace_file!r}: {exc}") from None
    for line in render_trace_summary(summary, top=args.top):
        print(line)
    return 0


def _history_or_exit(args: argparse.Namespace) -> Any:
    """The history index behind ``--db``, erroring on an explicit miss.

    A *default* database that does not exist yet just means nothing
    has been recorded — an empty listing, not an error.  An explicitly
    named one that is missing is a user mistake and exits nonzero.
    """
    from .obs import RunHistory

    if args.db is not None and not pathlib.Path(args.db).exists():
        raise SystemExit(f"cannot read {args.db!r}: no such history database")
    return RunHistory(args.db)


def _cmd_history(args: argparse.Namespace) -> int:
    import sqlite3

    from .obs.history import render_entries, render_entry

    history = _history_or_exit(args)
    try:
        if args.history_command == "show":
            entry = history.get(args.id)
            if entry is None:
                raise SystemExit(
                    f"no history row with id {args.id} in {history.path}"
                )
            for line in render_entry(entry):
                print(line)
            return 0
        if args.history_command == "query":
            entries = history.query(
                kind=args.kind,
                name_like=args.name,
                status=args.status,
                since=args.since,
                limit=args.limit,
                engine=args.engine,
                timebase=args.timebase,
                served=args.served,
            )
        else:
            entries = history.list(limit=args.limit)
    except sqlite3.Error as exc:
        raise SystemExit(f"cannot read {history.path}: {exc}") from None
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read {history.path}: {exc}") from None
    for line in render_entries(entries):
        print(line)
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from .exec import JournalMismatch

    algorithms = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    rhos = [rho.strip() for rho in args.rhos.split(",") if rho.strip()]
    if not algorithms or not rhos:
        raise SystemExit("--algorithms and --rhos must each name at least one value")
    _schedule_or_exit(args.schedule)
    faults = tuple(_parse_fault_flag(text) for text in (args.faults or ()))
    specs = []
    for algorithm in algorithms:
        _dynamic_algorithm_or_exit(algorithm)
        for rho in rhos:
            specs.append(_spec_or_exit(
                algorithm=algorithm,
                n=args.n,
                max_slot=args.max_slot,
                schedule=args.schedule,
                rho=rho,
                burst=args.burst,
                horizon=args.horizon,
                seed=args.seed,
                faults=faults,
                labels={"algorithm": algorithm, "rho": rho},
            ))
    request = _request_or_exit(
        specs=tuple(specs), command="grid", options=options_from_args(args)
    )
    try:
        with _tracing(args.trace):
            grid = execute(request)
    except JournalMismatch as exc:
        raise SystemExit(str(exc))
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    report = grid.report
    header = (
        f"{'name':<24} {'stable':<8} {'delivered':>9} {'backlog':>7} "
        f"{'peak':>5} {'coll':>5} {'thr':>7}  {'engine/timebase':<15}"
    )
    print(header)
    print("-" * len(header))
    for result in report.results:
        # Cached rows predating the engine field render as "-" rather
        # than guessing what executed them.
        engine_note = (
            f"{result.engine}/{result.timebase}" if result.timebase else "-"
        )
        print(
            f"{result.name:<24} "
            f"{'stable' if result.stable else 'UNSTABLE':<8} "
            f"{result.metrics.delivered:>9} {result.metrics.backlog:>7} "
            f"{result.peak_backlog:>5} {result.metrics.collisions:>5} "
            f"{float(result.metrics.throughput_cost):>7.3f}  "
            f"{engine_note:<15}"
        )
    cache_note = (
        f"cache: {report.cache_hits} hit / {report.cache_misses} miss "
        f"({args.cache_dir})"
        if request.options.cache
        else "cache: disabled"
    )
    print(
        f"grid: {len(report.results)} cells in {report.wall_s:.2f}s "
        f"jobs={report.jobs} mode={report.mode} | {cache_note}"
    )
    if grid.journal_path is not None:
        journal_note = f"journal: {grid.journal_path}"
        if report.journal_hits:
            journal_note += f" ({report.journal_hits} cells resumed)"
        print(journal_note)
    if report.health.disturbed:
        print(f"health: {report.health.render()}")
    if grid.csv_path:
        print(f"csv:  {grid.csv_path}")
    if report.failures:
        print(f"FAILED cells ({len(report.failures)}):", file=sys.stderr)
        for failure in report.failures:
            print(f"  {failure.summary()}", file=sys.stderr)
        return 1
    return 0


def _scenario_files(paths: Sequence[str]) -> List[pathlib.Path]:
    """Expand files/directories into the list of spec files to process."""
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            found = sorted(path.glob("*.json"))
            if not found:
                raise SystemExit(f"no *.json scenario files under {raw!r}")
            files.extend(found)
        else:
            files.append(path)
    return files


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    print("algorithms (dynamic):")
    for name in ALGORITHMS.names(kind="dynamic"):
        print(f"  {ALGORITHMS.get(name).describe()}")
    print("algorithms (sst):")
    for name in ALGORITHMS.names(kind="sst"):
        print(f"  {ALGORITHMS.get(name).describe()}")
    other = ALGORITHMS.names()
    extras = [n for n in other if ALGORITHMS.get(n).meta.get("kind")
              not in ("dynamic", "sst")]
    if extras:
        print("algorithms (other):")
        for name in extras:
            print(f"  {ALGORITHMS.get(name).describe()}")
    print("schedules:")
    for entry in SCHEDULES.entries():
        print(f"  {entry.describe()}")
    print("sources:")
    for entry in SOURCES.entries():
        print(f"  {entry.describe()}")
    print("faults:")
    for entry in FAULTS.entries():
        print(f"  {entry.describe()}")
    bundled = pathlib.Path(args.dir)
    if bundled.is_dir():
        files = sorted(bundled.glob("*.json"))
        if files:
            print(f"bundled scenarios ({bundled}/):")
            for path in files:
                try:
                    spec = load_spec(path)
                    note = (f"{spec.algorithm} n={spec.n} R={spec.max_slot} "
                            f"schedule={spec.schedule_display()}")
                except ConfigurationError as exc:
                    note = f"INVALID: {exc}"
                print(f"  {path.name:<28} {note}")
    return 0


def _cmd_scenario_validate(args: argparse.Namespace) -> int:
    failures = 0
    for path in _scenario_files(args.paths):
        try:
            spec = load_spec(path)
            # Building exercises every registry name and parameter.
            spec.build()
        except ConfigurationError as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
            continue
        print(f"ok   {path}: {spec.name} "
              f"(algorithm={spec.algorithm} n={spec.n} R={spec.max_slot} "
              f"schedule={spec.schedule_display()})")
    if failures:
        print(f"{failures} invalid scenario file(s)")
        return 1
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    try:
        spec = load_spec(args.spec)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    overrides: Dict[str, Any] = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        try:
            spec = spec.replace(**overrides)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    with _tracing(args.trace):
        return _run_spec(spec, args)


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from .exec import diff_results

    try:
        report = diff_results(args.old, args.new, tolerance=args.tolerance)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    for line in report.render():
        print(line)
    return report.exit_code()


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    from .exec.perf import render_report, run_perf, write_report

    try:
        with _tracing(args.trace):
            document = run_perf(quick=args.quick)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    for line in render_report(document):
        print(line)
    meta = document["meta"]
    print(f"\ngeomean speedup: {meta['geomean_speedup']}x "
          f"(wall {meta['wall_s']}s, best of {meta['repeats']})")
    targets = [args.results_dir]
    if args.update_baseline:
        targets.append(args.baseline_dir)
    primary_json = None
    for target in targets:
        json_path, txt_path = write_report(document, target)
        if primary_json is None:
            primary_json = json_path
        print(f"wrote {json_path} and {txt_path}")
    record_completion(
        "bench",
        "perf_core",
        wall_s=float(meta.get("wall_s") or 0) or None,
        jobs=1,
        mode="serial",
        git_sha=git_sha(),
        artifact_path=str(primary_json) if primary_json else None,
        trace_path=args.trace,
        extra={"geomean_speedup": meta.get("geomean_speedup"),
               "quick": bool(args.quick)},
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .exec import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "clear":
        dropped = cache.clear()
        print(f"cleared {dropped} cached results from {cache.root}")
        return 0
    if args.cache_command == "verify":
        verification = cache.verify()
        print(
            f"verified {verification.checked} entries: {verification.ok} ok, "
            f"{len(verification.quarantined)} quarantined"
        )
        for path in verification.quarantined:
            print(f"  quarantined: {path}", file=sys.stderr)
        return 0 if verification.clean else 1
    entries = list(cache.entries())
    print(f"root:    {cache.root}")
    print(f"entries: {len(entries)}")
    print(f"size:    {cache.size_bytes()} bytes")
    print(f"salt:    {cache.salt[:16]}… (changes with any repro source edit)")
    return 0


def _cmd_sst(args: argparse.Namespace) -> int:
    if args.algorithm not in ALGORITHMS.names(kind="sst"):
        raise SystemExit(
            f"unknown SST algorithm {args.algorithm!r} "
            f"(use {' | '.join(ALGORITHMS.names(kind='sst'))})"
        )
    _schedule_or_exit(args.schedule)
    spec = _spec_or_exit(
        algorithm=args.algorithm,
        n=args.n,
        max_slot=args.max_slot,
        schedule=args.schedule,
        seed=args.seed,
        rho=None,
    )
    request = _request_or_exit(
        specs=(spec,), command="sst", options=options_from_args(args)
    )
    try:
        result = execute(request)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    if not result.ok:
        print("SST NOT solved within the event budget")
        return 1
    payload = result.sst or {}
    print(f"algorithm={args.algorithm} n={args.n} R={spec.max_slot} "
          f"schedule={args.schedule}")
    print(f"  solved at:      t = {payload['solved_at']}")
    winner = payload.get("winner")
    print(f"  winner:         station {winner if winner is not None else '?'}")
    print(f"  max slots used: {payload['max_slots']}")
    print(f"  Theorem 1 bound (known R): {payload['bound']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve_forever

    try:
        return serve_forever(
            args.host, args.port, args.cache_dir, quiet=args.quiet
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceError, submit_request

    try:
        text = pathlib.Path(args.target).read_text(encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"cannot read {args.target!r}: {exc}") from None
    try:
        probe = json.loads(text)
    except json.JSONDecodeError:
        probe = None
    if isinstance(probe, dict) and (
        "specs" in probe or "spec" in probe or "request" in probe
    ):
        # A full RunRequest document: submit it as-is.
        try:
            request = RunRequest.from_json(probe)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    else:
        # A scenario spec file (or JSONL artifact): wrap it in a request
        # built from the submit flags, exactly like `scenario run`.
        try:
            spec = load_spec(args.target)
            overrides: Dict[str, Any] = {}
            if args.horizon is not None:
                overrides["horizon"] = args.horizon
            if args.seed is not None:
                overrides["seed"] = args.seed
            if overrides:
                spec = spec.replace(**overrides)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        request = _request_or_exit(
            specs=(spec,), command=args.command,
            options=options_from_args(args),
        )
    out = None
    try:
        if args.out:
            try:
                out = open(args.out, "w", encoding="utf-8")
            except OSError as exc:
                raise SystemExit(f"cannot write {args.out!r}: {exc}") from None
        try:
            envelope = submit_request(
                args.url, request, out=out, timeout=args.timeout
            )
        except ServiceError as exc:
            raise SystemExit(str(exc)) from None
    finally:
        if out is not None:
            out.close()
    print(f"submitted {request.command} to {args.url}")
    print(f"  name:        {envelope.get('name', '?')}")
    print(f"  status:      {envelope.get('status', '?')}")
    print(f"  served from: {envelope.get('served_from', '?')}")
    if "delivered" in envelope:
        print(f"  delivered:   {envelope['delivered']}")
        print(f"  backlog:     {envelope['backlog']}")
    if "cells" in envelope:
        print(f"  cells:       {envelope['cells']} "
              f"({envelope.get('cache_hits', 0)} cache hits)")
    if "wall_s" in envelope:
        print(f"  wall:        {envelope['wall_s']}s")
    if envelope.get("history_id") is not None:
        print(f"  history id:  {envelope['history_id']}")
    if args.out:
        print(f"artifact:         {args.out}")
    return 0 if envelope.get("status") == "ok" else 1


def _cmd_adversary(args: argparse.Namespace) -> int:
    if args.construction == "mirror":
        r = int(args.realized_r)
        factory = lambda sid: ABSLeaderElection(sid, r)  # noqa: E731
        result = run_mirror_adversary(factory, args.n, r)
        verify_mirror_execution(factory, result)
        print(f"mirror adversary vs ABS: n={args.n} r={r}")
        print(f"  phases sustained:  {len(result.phases)}")
        print(f"  slots forced:      {result.slots_forced}")
        print(f"  formula bound:     {float(sst_lower_bound_slots(args.n, r)):.1f}")
        print(f"  survivors:         {result.survivors}")
        print("  realized schedule replayed: 0 successes (verified)")
        return 0
    if args.construction == "thm4":
        result = force_collision_or_overflow(
            lambda sid: NaiveTDMA(sid, 2),
            queue_limit=args.queue_limit,
            rho=args.rho,
            max_slot_length=args.max_slot,
        )
        print(f"Theorem 4 vs NaiveTDMA: L={args.queue_limit} rho={args.rho} "
              f"R={args.max_slot}")
        print(f"  outcome:     {result.outcome}")
        print(f"  S / alpha / beta: {result.start_slot} / "
              f"{result.probe_s1.first_attempt_offset} / "
              f"{result.probe_s2.first_attempt_offset}")
        if result.collision_time is not None:
            print(f"  X / Y:       {result.slot_length_s1} / {result.slot_length_s2}")
            print(f"  collision at t = {result.collision_time} (replayed)")
        return 0
    if args.construction == "rate1":
        _dynamic_algorithm_or_exit(args.algorithm)
        spec = _spec_or_exit(
            algorithm=args.algorithm,
            n=args.n,
            max_slot=args.max_slot,
            seed=args.seed,
            rho=None,
        )
        report = measure_rate_one_instability(
            spec.build_fleet(),
            max_slot_length=spec.max_slot,
            horizon=args.horizon,
        )
        print(f"Theorem 5 vs {args.algorithm}: n={args.n} R={spec.max_slot} "
              f"horizon={args.horizon}")
        print(f"  backlog slope:  {report.slope:.4f} packets/time")
        print(f"  final backlog:  {report.final_backlog} (peak {report.max_backlog})")
        print(f"  delivered:      {report.delivered}")
        print(f"  verdict:        "
              f"{'UNSTABLE (grew unboundedly)' if report.grew_unboundedly else 'inconclusive'}")
        return 0
    raise SystemExit(
        f"unknown construction {args.construction!r} (use mirror | thm4 | rate1)"
    )


def _cmd_bounds(args: argparse.Namespace) -> int:
    n, max_slot = args.n, as_time(args.max_slot)
    rho, b = as_time(args.rho), as_time(args.burstiness)
    print(f"closed-form bounds at n={n}, R={max_slot}, rho={rho}, b={b}:")
    print(f"  ABS slots (Thm 1):            {abs_slot_upper_bound(n, max_slot)}")
    print(f"  SST lower bound (Thm 2, r=R): "
          f"{float(sst_lower_bound_slots(n, max_slot)):.1f}")
    print(f"  AO-ARRoW queue cost L (Thm 3): "
          f"{float(ao_queue_bound_L(n, max_slot, rho, b, max_slot)):.1f}")
    print(f"  AO-ARRoW sync threshold:       "
          f"{ao_sync_silence_threshold(max_slot)} slots")
    print(f"  CA-ARRoW gap:                  {ca_gap_slots(max_slot)} slots")
    print(f"  CA-ARRoW queue cost (Thm 6):   "
          f"{float(ca_queue_bound_L(n, max_slot, rho, b)):.1f}")
    print(f"  MBTF sync reference 2(n^2+b):  {float(mbtf_queue_bound(n, b)):.1f}")
    return 0


def _cmd_diagram(args: argparse.Namespace) -> int:
    from .viz import ALL_DIAGRAMS, render_all_text

    if args.name == "all":
        print(render_all_text())
        return 0
    try:
        diagram = ALL_DIAGRAMS[args.name]
    except KeyError:
        raise SystemExit(
            f"unknown diagram {args.name!r} "
            f"(use {' | '.join(sorted(ALL_DIAGRAMS))} | all)"
        ) from None
    print(diagram.to_dot() if args.dot else diagram.to_text())
    return 0


def _scenario_flags_parent() -> argparse.ArgumentParser:
    """The shared scenario flags — one definition keeps ``run`` and
    ``grid`` (and any future spec-built subcommand) in sync."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--n", type=int, default=4)
    parent.add_argument("--max-slot", default="2", help="the bound R")
    parent.add_argument("--burst", type=int, default=1)
    parent.add_argument("--horizon", default="5000")
    parent.add_argument("--schedule", default="worst",
                        help="slot adversary (see `repro scenario list`)")
    parent.add_argument("--seed", type=int, default=0)
    parent.add_argument(
        "--faults", action="append", metavar="SPEC",
        help="inject a fault; crash:SID@SLOT or KIND:key=val,key=val "
             "(repeatable; see `repro scenario list`)",
    )
    return parent


def _obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``run`` and ``scenario run``."""
    parser.add_argument("--metrics", action="store_true",
                        help="attach the metric instruments and print them")
    parser.add_argument("--emit-jsonl", metavar="PATH",
                        help="stream a manifest + per-event JSONL artifact")
    parser.add_argument("--profile", action="store_true",
                        help="report wall time per simulator phase")
    parser.add_argument("--progress", type=int, metavar="N", default=0,
                        help="print a progress line every N slot events")
    parser.add_argument("--timebase", choices=("auto", "lattice", "fraction"),
                        default="auto",
                        help="internal time representation (observably "
                        "identical; 'auto' uses integer ticks when the "
                        "scenario declares a time lattice)")
    parser.add_argument("--engine", choices=("auto", "batch", "object"),
                        default="auto",
                        help="run loop (observably identical; 'auto' uses "
                        "the vectorized batch kernel when every component "
                        "is batch-eligible, else the per-object loop)")
    parser.add_argument("--verbose-engine", action="store_true",
                        help="print the resolved engine/timebase, plus the "
                        "promotion path (which vector programs matched) "
                        "when auto picked the batch kernel or the demotion "
                        "reason when it fell back to the object loop")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a flight-recorder trace and export "
                        "Chrome trace-event JSON (Perfetto-loadable)")


def _version_string() -> str:
    from . import __version__

    return f"repro {__version__} ({git_sha() or 'unknown'})"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bounded-asynchrony MAC: algorithms, adversaries, bounds "
        "(ICDCS 2024 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=_version_string(),
                        help="print package version and git commit")
    sub = parser.add_subparsers(dest="command", required=True)
    scenario_flags = _scenario_flags_parent()

    run_p = sub.add_parser("run", parents=[scenario_flags],
                           help="dynamic packet transmission")
    run_p.add_argument("--algorithm", default="ca-arrow")
    run_p.add_argument("--rho", default="1/2")
    _obs_flags(run_p)
    run_p.set_defaults(handler=_cmd_run)

    stats_p = sub.add_parser("stats", help="summarize a saved JSONL run")
    stats_p.add_argument("artifact", help="path to a --emit-jsonl artifact")
    stats_p.set_defaults(handler=_cmd_stats)

    grid_p = sub.add_parser(
        "grid", parents=[scenario_flags],
        help="run an algorithm x rho experiment grid (parallel, cached)",
    )
    grid_p.add_argument("--algorithms", default="ca-arrow,ao-arrow",
                        help="comma-separated algorithm names")
    grid_p.add_argument("--rhos", default="3/10,1/2,7/10,9/10",
                        help="comma-separated injection rates")
    grid_p.add_argument("--backlog-stride", type=int, default=8,
                        help="trace sampling stride (passed to every cell)")
    grid_p.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = one per CPU core)")
    grid_p.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed result cache")
    grid_p.add_argument("--cache-dir", default=".repro-cache")
    grid_p.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill any cell running longer than this "
                             "(pool mode; killed cells count as retries)")
    grid_p.add_argument("--retries", type=int, default=0,
                        help="re-run a failed/crashed/timed-out cell up to "
                             "N more times (deterministic backoff)")
    grid_p.add_argument("--journal", metavar="PATH", default=None,
                        help="checkpoint completed cells to this JSONL "
                             "file as they finish")
    grid_p.add_argument("--resume", action="store_true",
                        help="restore completed cells from the journal and "
                             "recompute only the missing ones "
                             "(default journal: <cache-dir>/grid-journal.jsonl)")
    grid_p.add_argument("--csv", metavar="PATH", help="also write results as CSV")
    grid_p.add_argument("--progress", action="store_true",
                        help="report per-cell progress on stderr")
    grid_p.add_argument("--engine", choices=("auto", "batch", "object"),
                        default="auto",
                        help="run loop per cell (observably identical; "
                        "'auto' picks the vectorized batch kernel when "
                        "the cell is batch-eligible)")
    grid_p.add_argument("--trace", metavar="PATH", default=None,
                        help="record a flight-recorder trace of the grid "
                        "(pool dispatch, attempts, cache, per-cell sim "
                        "phases) as Chrome trace-event JSON")
    grid_p.set_defaults(handler=_cmd_grid)

    trace_p = sub.add_parser(
        "trace", help="inspect a flight-recorder trace (--trace output)"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    tsum_p = trace_sub.add_parser(
        "summarize",
        help="per-span self-time totals and the retry/timeout timeline",
    )
    tsum_p.add_argument("trace_file", help="a --trace Chrome trace-event JSON")
    tsum_p.add_argument("--top", type=int, default=12,
                        help="span kinds to show in the self-time ranking")
    tsum_p.set_defaults(handler=_cmd_trace_summarize)

    history_p = sub.add_parser(
        "history", help="the persistent run-history index (every completion)"
    )
    history_sub = history_p.add_subparsers(dest="history_command", required=True)
    hlist_p = history_sub.add_parser("list", help="most recent runs first")
    hshow_p = history_sub.add_parser("show", help="every recorded fact of one run")
    hshow_p.add_argument("id", type=int, help="history row id (from list)")
    hquery_p = history_sub.add_parser(
        "query", help="filter by kind / name substring / status / date"
    )
    hquery_p.add_argument("--kind", default=None,
                          help="run | grid | sweep | bench")
    hquery_p.add_argument("--name", default=None,
                          help="case-insensitive name substring")
    hquery_p.add_argument("--status", default=None, help="ok | failed")
    hquery_p.add_argument("--since", default=None, metavar="ISO",
                          help="ISO date(time) prefix, e.g. 2026-08")
    hquery_p.add_argument("--engine", default=None,
                          choices=("batch", "batch(adaptive)",
                                   "batch(nonadaptive)", "object"),
                          help="runs executed by this engine — recorded "
                          "with the resolved program family, so 'batch' "
                          "matches both batch(adaptive) and "
                          "batch(nonadaptive) (grids match when any cell "
                          "used it)")
    hquery_p.add_argument("--timebase", default=None,
                          choices=("lattice", "fraction"),
                          help="runs executed on this timebase")
    hquery_p.add_argument("--served", default=None,
                          choices=("cache", "journal", "mixed", "exec"),
                          help="provenance: where the result came from")
    for history_cmd in (hlist_p, hshow_p, hquery_p):
        history_cmd.add_argument(
            "--db", default=None,
            help="history database path (default: .repro-cache/history.db, "
            "or $REPRO_HISTORY_DB)")
        history_cmd.set_defaults(handler=_cmd_history)
    for history_cmd in (hlist_p, hquery_p):
        history_cmd.add_argument("--limit", type=int, default=20,
                                 help="rows to show")

    scenario_p = sub.add_parser(
        "scenario", help="declarative scenarios: list, validate, run"
    )
    scenario_sub = scenario_p.add_subparsers(dest="scenario_command", required=True)
    slist_p = scenario_sub.add_parser(
        "list", help="registered algorithms/schedules/sources/faults + bundled specs"
    )
    slist_p.add_argument("--dir", default=BUNDLED_SCENARIOS_DIR,
                         help="bundled scenarios directory to list")
    slist_p.set_defaults(handler=_cmd_scenario_list)
    svalidate_p = scenario_sub.add_parser(
        "validate", help="strictly validate scenario spec files (or directories)"
    )
    svalidate_p.add_argument("paths", nargs="+",
                             help="spec files and/or directories of *.json")
    svalidate_p.set_defaults(handler=_cmd_scenario_validate)
    srun_p = scenario_sub.add_parser(
        "run", help="run a spec file (or replay a JSONL artifact's spec)"
    )
    srun_p.add_argument("spec", help="scenario .json file or --emit-jsonl artifact")
    srun_p.add_argument("--horizon", default=None,
                        help="override the spec's horizon")
    srun_p.add_argument("--seed", type=int, default=None,
                        help="override the spec's seed")
    _obs_flags(srun_p)
    srun_p.set_defaults(handler=_cmd_scenario_run)

    serve_p = sub.add_parser(
        "serve",
        help="HTTP daemon: accept RunRequest JSON, stream artifacts back",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (keep it loopback: the daemon "
                         "has no authentication)")
    serve_p.add_argument("--port", type=int, default=8765,
                         help="TCP port (0 = pick a free one)")
    serve_p.add_argument("--cache-dir", default=".repro-cache",
                         help="result cache + history database directory")
    serve_p.add_argument("--quiet", action="store_true",
                         help="suppress per-request access logging")
    serve_p.set_defaults(handler=_cmd_serve)

    submit_p = sub.add_parser(
        "submit",
        help="send a scenario or RunRequest file to a repro serve daemon",
    )
    submit_p.add_argument("target",
                          help="scenario .json, --emit-jsonl artifact, or a "
                          "full RunRequest document")
    submit_p.add_argument("--url", default="http://127.0.0.1:8765",
                          help="daemon base URL")
    submit_p.add_argument("--out", metavar="PATH", default=None,
                          help="write the streamed JSONL artifact here")
    submit_p.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS", help="socket timeout")
    submit_p.add_argument("--command", choices=list(COMMANDS), default="run",
                          help="how the daemon should execute a scenario "
                          "file (RunRequest documents carry their own)")
    submit_p.add_argument("--horizon", default=None,
                          help="override a scenario file's horizon")
    submit_p.add_argument("--seed", type=int, default=None,
                          help="override a scenario file's seed")
    submit_p.add_argument("--engine", choices=("auto", "batch", "object"),
                          default="auto",
                          help="run loop for a scenario-file submission")
    submit_p.add_argument("--timebase",
                          choices=("auto", "lattice", "fraction"),
                          default="auto",
                          help="time representation for a scenario-file "
                          "submission")
    submit_p.add_argument("--metrics", action="store_true",
                          help="attach the metric instruments daemon-side")
    submit_p.set_defaults(handler=_cmd_submit)

    bench_p = sub.add_parser("bench", help="benchmark artifact tooling")
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    bdiff_p = bench_sub.add_parser(
        "diff",
        help="compare two results directories; nonzero exit on value drift",
    )
    bdiff_p.add_argument("old", help="baseline benchmarks/results directory")
    bdiff_p.add_argument("new", help="candidate benchmarks/results directory")
    bdiff_p.add_argument("--tolerance", type=float, default=0.0,
                         metavar="REL",
                         help="relative tolerance for numeric cells "
                         "(0.25 = 25%%; default exact)")
    bdiff_p.set_defaults(handler=_cmd_bench_diff)
    bperf_p = bench_sub.add_parser(
        "perf",
        help="core perf suite: events/sec, fraction vs tick-lattice timebase",
    )
    bperf_p.add_argument("--quick", action="store_true",
                         help="short horizons, one repeat (CI smoke)")
    bperf_p.add_argument("--results-dir", default="benchmarks/results",
                         help="where to write perf_core.json / .txt")
    bperf_p.add_argument("--update-baseline", action="store_true",
                         help="also write the report to the baseline dir "
                         "(regenerate with --quick so CI row counts match)")
    bperf_p.add_argument("--baseline-dir", default="benchmarks/baselines",
                         help="baseline directory for --update-baseline")
    bperf_p.add_argument("--trace", metavar="PATH", default=None,
                         help="record a flight-recorder trace of the suite")
    bperf_p.set_defaults(handler=_cmd_bench_perf)

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    for name, blurb in (
        ("info", "entry count, size, code salt"),
        ("clear", "drop every cached result"),
        ("verify", "re-hash every entry; quarantine corrupt ones"),
    ):
        cache_cmd = cache_sub.add_parser(name, help=blurb)
        cache_cmd.add_argument("--cache-dir", default=".repro-cache")
        cache_cmd.set_defaults(handler=_cmd_cache)

    sst_p = sub.add_parser("sst", help="leader election / SST")
    sst_p.add_argument("--algorithm", default="abs")
    sst_p.add_argument("--n", type=int, default=8)
    sst_p.add_argument("--max-slot", default="2")
    sst_p.add_argument("--schedule", default="worst")
    sst_p.add_argument("--seed", type=int, default=0)
    sst_p.add_argument("--max-events", type=int, default=2_000_000)
    sst_p.set_defaults(handler=_cmd_sst)

    adv_p = sub.add_parser("adversary", help="run a theorem construction")
    adv_p.add_argument("construction", choices=["mirror", "thm4", "rate1"])
    adv_p.add_argument("--n", type=int, default=64)
    adv_p.add_argument("--realized-r", default="4")
    adv_p.add_argument("--queue-limit", type=int, default=16)
    adv_p.add_argument("--rho", default="1/2")
    adv_p.add_argument("--max-slot", default="2")
    adv_p.add_argument("--algorithm", default="ca-arrow")
    adv_p.add_argument("--horizon", default="5000")
    adv_p.add_argument("--seed", type=int, default=0)
    adv_p.set_defaults(handler=_cmd_adversary)

    bounds_p = sub.add_parser("bounds", help="print closed-form bounds")
    bounds_p.add_argument("--n", type=int, default=8)
    bounds_p.add_argument("--max-slot", default="2")
    bounds_p.add_argument("--rho", default="1/2")
    bounds_p.add_argument("--burstiness", default="2")
    bounds_p.set_defaults(handler=_cmd_bounds)

    diagram_p = sub.add_parser(
        "diagram", help="print an automaton diagram (Figs. 3/5/6)"
    )
    diagram_p.add_argument("name", nargs="?", default="all")
    diagram_p.add_argument("--dot", action="store_true",
                           help="emit Graphviz DOT instead of text")
    diagram_p.set_defaults(handler=_cmd_diagram)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # Interrupted runs exit promptly but nonzero; any grid journal
        # keeps its completed cells for a follow-up --resume.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`) — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
