"""The Theorem 5 scenario: no algorithm is stable at injection rate 1.

The paper's argument: a stable rate-1 algorithm must keep the channel
occupied by successful transmissions at all but finitely many times.
Whenever the currently transmitting station runs dry and another takes
over, asynchrony lets the adversary misalign slots so the handover
wastes time.  The adversary forces infinitely many handovers simply by
*never injecting into the current transmitter* — so wasted time, and
with it backlog, grows without bound.

This module packages the construction as a measurement:

* :class:`UnitTransmitSlots` — a slot adversary that keeps *transmit*
  slots at length exactly 1 (so every packet's realized cost is 1 and
  "rate 1" is exact), while stretching listening slots over a cyclic
  ``[1, R]`` pattern to maximize handover misalignment;
* :func:`measure_rate_one_instability` — runs any algorithm family
  against :class:`~repro.arrivals.adaptive.StarveCurrentTransmitter`
  at ``rho = 1`` and reports the backlog trajectory with a least-squares
  growth slope.

A positive slope with a backlog that keeps setting new maxima is the
measured form of Theorem 5; a stable run (Theorems 3/6 territory,
``rho < 1``) shows slope ~ 0 under the same harness, which the tests
use as the control.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Sequence, Tuple

from ..arrivals.adaptive import StarveCurrentTransmitter
from ..core.simulator import Simulator
from ..core.station import StationAlgorithm
from ..core.timebase import Time, TimeLike, as_time
from ..core.trace import Trace
from ..timing.adversary import SlotAdversary

AlgorithmsFactory = Callable[[], Dict[int, StationAlgorithm]]


class UnitTransmitSlots(SlotAdversary):
    """Transmit slots of length 1; listening slots cycle through ``[1, R]``.

    Keeping transmit slots at unit length pins every packet's realized
    cost to exactly 1, so an injection of one packet per time unit is an
    *exact* rate-1 adversary under Definition 1.  Listening slots cycle
    through station-dependent patterns to keep handovers misaligned.
    """

    def __init__(self, max_length: TimeLike) -> None:
        self.max_length = as_time(max_length)

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        runtime = sim.stations[station_id]
        action = runtime.action
        if action is not None and action.is_transmit:
            return Fraction(1)
        if self.max_length == 1:
            return Fraction(1)
        pattern = (
            (Fraction(1), self.max_length)
            if station_id % 2
            else (self.max_length, Fraction(1), (1 + self.max_length) / 2)
        )
        return pattern[slot_index % len(pattern)]


@dataclass(frozen=True, slots=True)
class RateOneReport:
    """Backlog trajectory of a rate-one run, with its growth trend.

    ``slope`` is the least-squares linear-fit slope of backlog over
    time (packets per time unit); ``final_backlog`` and ``max_backlog``
    are the endpoint and peak.  Theorem 5 predicts ``slope > 0`` that
    does not vanish as the horizon grows.
    """

    horizon: Time
    samples: List[Tuple[Fraction, int]]
    slope: float
    final_backlog: int
    max_backlog: int
    delivered: int

    @property
    def grew_unboundedly(self) -> bool:
        """Heuristic instability verdict for a finite run.

        The backlog at the end must be a large fraction of the peak
        (not a transient) and the fitted slope clearly positive.
        """
        return self.slope > 0 and self.final_backlog >= self.max_backlog // 2


def _least_squares_slope(samples: Sequence[Tuple[Fraction, int]]) -> float:
    if len(samples) < 2:
        return 0.0
    xs = [float(t) for t, _ in samples]
    ys = [float(v) for _, v in samples]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx


def measure_rate_one_instability(
    algorithms: Dict[int, StationAlgorithm],
    max_slot_length: TimeLike,
    horizon: TimeLike,
    rho: TimeLike = 1,
    burstiness: TimeLike = 2,
    sample_every: int = 64,
) -> RateOneReport:
    """Run the Theorem 5 adversary against ``algorithms`` for ``horizon``.

    The slot adversary is :class:`UnitTransmitSlots` (costs pinned to
    1), the arrival adversary :class:`StarveCurrentTransmitter` at the
    given rate.  Use ``rho < 1`` for the stability control runs.
    """
    upper = as_time(max_slot_length)
    end = as_time(horizon)
    station_ids = sorted(algorithms)
    source = StarveCurrentTransmitter(
        rho=rho, burstiness=burstiness, assumed_cost=1, station_ids=station_ids
    )
    trace = Trace(record_slots=False, backlog_stride=sample_every)
    sim = Simulator(
        algorithms,
        UnitTransmitSlots(upper),
        max_slot_length=upper,
        arrival_source=source,
        trace=trace,
    )
    sim.run(until_time=end)
    samples = trace.backlog_series()
    samples.append((sim.now, sim.total_backlog))
    return RateOneReport(
        horizon=end,
        samples=samples,
        slope=_least_squares_slope(samples),
        final_backlog=sim.total_backlog,
        max_backlog=trace.max_backlog,
        delivered=len(sim.delivered_packets),
    )
