"""The Theorem 2 mirror-execution adversary, made executable.

The paper's lower bound — any deterministic SST algorithm needs
``Omega(r (log n / log r + 1))`` slots — is proved by an *online
adversary construction*, and constructions can be run.  Given any
deterministic station automaton family, this module:

1. maintains a set ``C_h`` of participating stations, each fed **mirror
   feedback** (silence when it listens, busy-without-ack when it
   transmits) — under which no transmission ever succeeds;
2. per phase, extends every station by ``r`` virtual slots under the
   mirror assumption, encodes the extension as its listen/transmit
   block signature ``f(i) in {1..2r}`` (number of maximal blocks, plus
   ``r`` when the first block transmits);
3. keeps a largest signature class (pigeonhole: at least
   ``|C_h| / 2r`` stations agree), so ``C`` shrinks by at most a
   ``2r`` factor per phase — surviving ``log n / log 2r`` phases of
   ``r`` slots each;
4. *realizes* the execution: every maximal block of every surviving
   station is uniformly stretched to total duration exactly ``r``, so
   matching blocks align in real time across stations — transmit
   blocks fully overlap (collisions, busy feedback), listen blocks are
   globally silent — i.e., the virtual mirror feedback is exactly what
   the real channel produces.

:func:`run_mirror_adversary` performs 1–3 and returns the forced slot
count plus the realized delay schedule;
:func:`verify_mirror_execution` replays the schedule through the real
simulator and checks that no transmission succeeds — the construction
validating itself against the channel model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.feedback import Feedback
from ..core.simulator import Simulator
from ..core.station import Action, SlotContext, StationAlgorithm
from ..timing.adversary import TableDriven

#: Factory building the automaton under attack for one station id.
AlgorithmFactory = Callable[[int], StationAlgorithm]


@dataclass(slots=True)
class _VirtualStation:
    """One station driven under the mirror-feedback assumption."""

    station_id: int
    algorithm: StationAlgorithm
    slot_index: int = 0
    pending_action: Optional[Action] = None
    #: Realized slot lengths, appended phase by phase.
    slot_lengths: List[Fraction] = field(default_factory=list)

    def _context(self, feedback: Optional[Feedback]) -> SlotContext:
        # SST stations conceptually hold one undelivered message; mirror
        # feedback never acknowledges, so the queue never drains.
        return SlotContext(
            feedback=feedback, queue_size=1, slot_index=self.slot_index
        )

    def next_action(self) -> Action:
        """The action for the upcoming slot under mirror feedback."""
        if self.pending_action is None:
            action = self.algorithm.first_action(self._context(None))
        else:
            mirrored = (
                Feedback.BUSY if self.pending_action.is_transmit else Feedback.SILENCE
            )
            action = self.algorithm.on_slot_end(self._context(mirrored))
        self.pending_action = action
        self.slot_index += 1
        return action


def _block_signature(bits: Sequence[int], r: int) -> int:
    """The paper's ``f(i)``: maximal-block count, ``+r`` if starting with 1."""
    blocks = 1
    for previous, current in zip(bits, bits[1:]):
        if current != previous:
            blocks += 1
    return blocks + (r if bits[0] == 1 else 0)


def _block_lengths(bits: Sequence[int], r: int) -> List[Fraction]:
    """Slot lengths stretching each maximal block to total duration ``r``.

    A block of ``k`` slots becomes ``k`` slots of length ``r / k``;
    since a phase has ``r`` slots in total, every ``k <= r`` and all
    lengths lie in ``[1, r] ⊆ [1, R]``.
    """
    lengths: List[Fraction] = []
    run_start = 0
    for position in range(1, len(bits) + 1):
        if position == len(bits) or bits[position] != bits[run_start]:
            k = position - run_start
            lengths.extend([Fraction(r, k)] * k)
            run_start = position
    return lengths


@dataclass(frozen=True, slots=True)
class MirrorPhase:
    """Bookkeeping for one adversary phase."""

    phase_index: int
    alive_before: int
    signature: int
    alive_after: int


@dataclass(slots=True)
class MirrorResult:
    """Outcome of the mirror-adversary construction.

    ``slots_forced`` is the number of slots each surviving station
    experienced with no successful transmission anywhere — a lower
    bound witness for this algorithm on this input size.
    """

    n: int
    r: int
    phases: List[MirrorPhase]
    survivors: List[int]
    #: Realized slot-length table for every survivor, phase-concatenated.
    schedule: Dict[int, List[Fraction]]

    @property
    def slots_forced(self) -> int:
        return len(self.phases) * self.r

    @property
    def time_forced(self) -> Fraction:
        """Total duration of the realized execution (same for all survivors)."""
        sid = self.survivors[0]
        return sum(self.schedule[sid], Fraction(0))


def run_mirror_adversary(
    factory: AlgorithmFactory, n: int, r: int, max_phases: int = 10_000
) -> MirrorResult:
    """Run the Theorem 2 construction against ``factory``'s automata.

    Args:
        factory: Builds the deterministic SST automaton for a station id.
        n: Number of stations (ids ``1..n``).
        r: The realized slot-length supremum the adversary commits to;
           must be an integer ``>= 2`` (the construction stretches
           blocks of up to ``r`` unit slots to total length ``r``).
        max_phases: Safety valve against a *broken* SST algorithm that
            never lets ``C`` shrink (a correct one must, or it would
            never elect anyone).

    The construction continues while at least two stations can be kept;
    the final phase count is what the adversary provably forces.
    """
    if r < 2:
        raise ConfigurationError(
            f"the mirror construction needs integer r >= 2, got {r}"
        )
    if n < 2:
        raise ConfigurationError(f"need n >= 2 stations, got {n}")

    alive: List[_VirtualStation] = [
        _VirtualStation(station_id=sid, algorithm=factory(sid))
        for sid in range(1, n + 1)
    ]
    phases: List[MirrorPhase] = []

    for phase_index in range(max_phases):
        # Extend every alive station r virtual slots under mirroring.
        extensions: Dict[int, List[int]] = {}
        for station in alive:
            bits = [1 if station.next_action().is_transmit else 0 for _ in range(r)]
            extensions[station.station_id] = bits

        groups: Dict[int, List[_VirtualStation]] = {}
        for station in alive:
            signature = _block_signature(extensions[station.station_id], r)
            groups.setdefault(signature, []).append(station)
        signature, chosen = max(groups.items(), key=lambda kv: (len(kv[1]), -kv[0]))

        if len(chosen) < 2:
            # No class keeps two stations mirrored; the adversary's run
            # ends here (this phase is not realized).
            break

        for station in chosen:
            station.slot_lengths.extend(
                _block_lengths(extensions[station.station_id], r)
            )
        phases.append(
            MirrorPhase(
                phase_index=phase_index,
                alive_before=len(alive),
                signature=signature,
                alive_after=len(chosen),
            )
        )
        alive = chosen

    if not phases:
        raise ConfigurationError(
            "mirror adversary could not realize a single phase — "
            "need n >= 2 stations with a common signature"
        )
    return MirrorResult(
        n=n,
        r=r,
        phases=phases,
        survivors=[s.station_id for s in alive],
        schedule={s.station_id: list(s.slot_lengths) for s in alive},
    )


def verify_mirror_execution(
    factory: AlgorithmFactory, result: MirrorResult
) -> Simulator:
    """Replay the realized schedule on the real channel; self-check it.

    Builds a fresh simulator containing exactly the surviving
    participant set with the constructed slot lengths, runs it for the
    forced duration and asserts that **no transmission succeeded** —
    the defining property of a mirror execution.  Returns the simulator
    for further inspection.
    """
    algorithms = {sid: factory(sid) for sid in result.survivors}
    adversary = TableDriven(result.schedule, default=1)
    # One packet per station mirrors the virtual driver's queue_size=1
    # (SST stations hold one message that is never acknowledged).
    sim = Simulator(
        algorithms,
        adversary,
        max_slot_length=result.r,
        initial_packets=1,
    )
    sim.run(until_time=result.time_forced)
    successes = sim.channel.count_successes_up_to(sim.now)
    if successes:
        raise AssertionError(
            f"mirror execution broken: {successes} successful transmissions "
            f"occurred — block alignment failed"
        )
    return sim
