"""The Theorem 4 adversary: collision-avoidance without control messages
is impossible under bounded asynchrony.

The paper's proof is constructive and this module executes it against
any concrete algorithm.  Fix a queue limit ``L`` and rate ``rho > 0``;
the adversary:

1. picks two stations ``s1``, ``s2`` and a start slot
   ``S > (2L - 1) / (rho (R - 1))``;
2. **probes** each station in isolation: feed it silence-only feedback,
   inject its first packet at the end of its slot ``S`` and further
   packets at rate ``rho / 2`` (by slot count), and record ``alpha``
   (resp. ``beta``) — the number of slots after ``S`` before its first
   transmission attempt.  If a station sits on a growing queue past
   ``2(L + 1) / rho`` slots without attempting, its backlog already
   exceeded ``L``: the algorithm is **unstable** and the adversary
   rests;
3. otherwise solves ``(S + alpha) X = (S + beta) Y`` with
   ``X, Y in [1, R]`` (take ``Y = 1``, ``X = (S + beta)/(S + alpha)``,
   legal because ``S`` was chosen large enough), fixes those listening
   slot lengths, and replays both stations together: both first
   transmissions now *start at the same instant* — a **collision**,
   contradicting collision-freedom.

Either way the algorithm loses: it cannot be simultaneously stable,
collision-free and control-message-free.  The silence-only probe is
sound for this algorithm class — a station that cannot send control
messages cannot transmit before it has a packet, so both stations
really are silent until the solved collision instant.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from ..analysis.bounds import thm4_minimum_start_slot
from ..arrivals.source import StaticSchedule
from ..core.errors import ConfigurationError
from ..core.feedback import Feedback
from ..core.simulator import Simulator
from ..core.station import SlotContext, StationAlgorithm
from ..core.timebase import Time, TimeLike, as_time
from ..timing.adversary import TableDriven

AlgorithmFactory = Callable[[int], StationAlgorithm]


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """Outcome of the silent-channel probe of one station."""

    station_id: int
    #: Slots after slot ``S`` until the first transmit attempt, or
    #: ``None`` if the attempt never came within the probe budget.
    first_attempt_offset: Optional[int]
    #: Queue length reached during the probe.
    max_queue: int


@dataclass(frozen=True, slots=True)
class Theorem4Result:
    """What the adversary forced, with the full witness."""

    #: ``"collision_forced"`` or ``"queue_exceeded"``.
    outcome: str
    queue_limit: int
    rho: Fraction
    start_slot: int
    probe_s1: ProbeResult
    probe_s2: ProbeResult
    #: The solved listening slot lengths (when a collision was forced).
    slot_length_s1: Optional[Fraction] = None
    slot_length_s2: Optional[Fraction] = None
    #: Real time at which the two transmissions collided.
    collision_time: Optional[Time] = None


def _probe_injection_slots(
    start_slot: int, rho: Fraction, horizon_slots: int
) -> List[int]:
    """Slot indices (1-based) whose ends receive a packet during a probe.

    First packet at the end of slot ``S``; thereafter one packet every
    ``ceil(2 / rho)`` slots — rate ``rho / 2`` in packets per slot.
    """
    gap = -((-2 * rho.denominator) // (rho.numerator))  # ceil(2 / rho)
    slots = []
    s = start_slot
    while s <= start_slot + horizon_slots:
        slots.append(s)
        s += gap
    return slots


def probe_first_attempt(
    algorithm: StationAlgorithm,
    start_slot: int,
    rho: Fraction,
    queue_limit: int,
) -> ProbeResult:
    """Drive one station under silence-only feedback; find its first attempt.

    The station is stepped through its slots with ``SILENCE`` feedback;
    packets appear in its queue at the probe schedule.  Returns the
    offset ``alpha`` of its first transmit attempt after slot ``S``,
    or ``None`` with the queue evidence when it never attempts before
    the queue limit is exceeded.
    """
    station = copy.deepcopy(algorithm)
    sid = getattr(station, "station_id", 0)
    # Enough slots that, at rate rho/2 per slot, the queue must exceed L.
    horizon = int((2 * (queue_limit + 2)) / rho) + start_slot + 2
    injection_slots = set(_probe_injection_slots(start_slot, rho, horizon))

    queue = 0
    max_queue = 0
    action = station.first_action(
        SlotContext(feedback=None, queue_size=0, slot_index=0)
    )
    for slot_number in range(1, horizon + 1):  # 1-based, the slot that just ran
        if action.is_transmit:
            offset = slot_number - 1 - start_slot
            return ProbeResult(
                station_id=sid, first_attempt_offset=offset, max_queue=max_queue
            )
        if slot_number in injection_slots:
            queue += 1
            max_queue = max(max_queue, queue)
        action = station.on_slot_end(
            SlotContext(
                feedback=Feedback.SILENCE, queue_size=queue, slot_index=slot_number
            )
        )
    return ProbeResult(station_id=sid, first_attempt_offset=None, max_queue=max_queue)


def force_collision_or_overflow(
    factory: AlgorithmFactory,
    queue_limit: int,
    rho: TimeLike,
    max_slot_length: TimeLike,
    s1: int = 1,
    s2: int = 2,
) -> Theorem4Result:
    """Run the full Theorem 4 adversary against ``factory``'s algorithm.

    Returns a :class:`Theorem4Result` whose ``outcome`` names the horn
    of the dilemma that fired.  When a collision is forced, the result
    was additionally *replayed on the real channel* (both stations
    together, solved slot lengths) and the collision actually observed
    — an assertion failure here would mean the construction or the
    channel model is wrong.
    """
    rate = as_time(rho)
    upper = as_time(max_slot_length)
    if upper <= 1:
        raise ConfigurationError("Theorem 4 requires R > 1")
    if not 0 < rate < 1:
        raise ConfigurationError(f"need 0 < rho < 1, got {rate}")
    if s1 == s2:
        raise ConfigurationError("pick two distinct stations")

    start_slot = thm4_minimum_start_slot(queue_limit, rate, upper)
    probe1 = probe_first_attempt(factory(s1), start_slot, rate, queue_limit)
    probe2 = probe_first_attempt(factory(s2), start_slot, rate, queue_limit)

    if probe1.first_attempt_offset is None or probe2.first_attempt_offset is None:
        return Theorem4Result(
            outcome="queue_exceeded",
            queue_limit=queue_limit,
            rho=rate,
            start_slot=start_slot,
            probe_s1=probe1,
            probe_s2=probe2,
        )

    # Order so that alpha <= beta, then solve (S+alpha) X = (S+beta) Y.
    if probe1.first_attempt_offset <= probe2.first_attempt_offset:
        first, second = (s1, probe1), (s2, probe2)
    else:
        first, second = (s2, probe2), (s1, probe1)
    alpha = first[1].first_attempt_offset
    beta = second[1].first_attempt_offset
    assert alpha is not None and beta is not None
    x = Fraction(start_slot + beta, start_slot + alpha)
    y = Fraction(1)
    if not 1 <= x <= upper:
        raise ConfigurationError(
            f"S = {start_slot} too small: solved X = {x} outside [1, {upper}] "
            "(increase the queue limit margin)"
        )

    collision_time = (start_slot + beta) * y  # == (start_slot + alpha) * x

    # Replay for real: both stations, solved lengths, probe injections
    # mapped to real time through each station's slot length.
    lengths = {first[0]: x, second[0]: y}
    horizon_slots = start_slot + beta + 2
    arrivals: List[Tuple[Fraction, int]] = []
    for sid, probe in (first, second):
        for slot in _probe_injection_slots(start_slot, rate, horizon_slots):
            arrivals.append((slot * lengths[sid], sid))
    arrivals.sort(key=lambda pair: pair[0])

    algorithms = {first[0]: factory(first[0]), second[0]: factory(second[0])}
    table = {
        sid: [length] * (horizon_slots + 4) for sid, length in lengths.items()
    }
    sim = Simulator(
        algorithms,
        TableDriven(table, default=1),
        max_slot_length=upper,
        arrival_source=StaticSchedule(arrivals),
    )
    sim.run(until_time=collision_time + 2 * upper)
    if sim.channel.stats.collisions < 2:
        raise AssertionError(
            "Theorem 4 replay failed to produce the predicted collision at "
            f"t = {collision_time}"
        )

    return Theorem4Result(
        outcome="collision_forced",
        queue_limit=queue_limit,
        rho=rate,
        start_slot=start_slot,
        probe_s1=probe1,
        probe_s2=probe2,
        slot_length_s1=lengths[s1],
        slot_length_s2=lengths[s2],
        collision_time=collision_time,
    )
