"""Executable lower-bound and impossibility constructions (Thms 2, 4, 5)."""

from .collision_forcer import (
    ProbeResult,
    Theorem4Result,
    force_collision_or_overflow,
    probe_first_attempt,
)
from .mirror import (
    MirrorPhase,
    MirrorResult,
    run_mirror_adversary,
    verify_mirror_execution,
)
from .rate_one import (
    RateOneReport,
    UnitTransmitSlots,
    measure_rate_one_instability,
)

__all__ = [
    "MirrorPhase",
    "MirrorResult",
    "ProbeResult",
    "RateOneReport",
    "Theorem4Result",
    "UnitTransmitSlots",
    "force_collision_or_overflow",
    "measure_rate_one_instability",
    "probe_first_attempt",
    "run_mirror_adversary",
    "verify_mirror_execution",
]
