"""Packets, packet queues and the paper's *cost* accounting.

Definition 1 of the paper measures a packet not by a size field but by
its **cost**: the duration of the slot that eventually transmits it
successfully.  The cost is therefore unknown at injection time and is
filled in by the simulator when the acknowledgment arrives.  The
leaky-bucket admissibility checker (:mod:`repro.arrivals.leaky_bucket`)
verifies arrival patterns against these realized costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Deque, Iterator, Optional

from .errors import SimulationError
from .timebase import Time


@dataclass(slots=True)
class Packet:
    """A single packet injected by the arrival adversary.

    Attributes:
        packet_id: Globally unique, monotonically increasing id.
        station_id: The station whose queue received the packet.
        arrival_time: When the adversary injected it (exact time).
        delivered_time: Filled in when the packet's transmission is
            acknowledged; ``None`` while it waits in a queue or rides a
            transmission that might still collide.
        cost: Duration of the successful transmitting slot — the paper's
            packet cost.  ``None`` until delivery.
    """

    packet_id: int
    station_id: int
    arrival_time: Time
    delivered_time: Optional[Time] = None
    cost: Optional[Fraction] = None

    @property
    def delivered(self) -> bool:
        """True once the packet was successfully transmitted."""
        return self.delivered_time is not None

    @property
    def latency(self) -> Optional[Fraction]:
        """Time from injection to acknowledged delivery, if delivered."""
        if self.delivered_time is None:
            return None
        return self.delivered_time - self.arrival_time

    def mark_delivered(self, at: Time, cost: Fraction) -> None:
        """Record successful delivery (called by the simulator only)."""
        if self.delivered_time is not None:
            raise SimulationError(
                f"packet {self.packet_id} delivered twice (at {self.delivered_time} and {at})"
            )
        self.delivered_time = at
        self.cost = cost


@dataclass(slots=True)
class PacketQueue:
    """FIFO queue of pending packets at one station.

    Station algorithms never touch this object directly: they observe
    only its length through :class:`~repro.core.station.SlotContext`.
    The simulator enqueues arrivals at slot boundaries and dequeues the
    head packet when its transmission is acknowledged.
    """

    station_id: int
    _packets: Deque[Packet] = field(default_factory=deque)
    #: Total number of packets ever enqueued (for conservation checks).
    total_enqueued: int = 0
    #: Total number of packets ever dequeued after delivery.
    total_delivered: int = 0

    def __len__(self) -> int:
        return len(self._packets)

    def __bool__(self) -> bool:
        return bool(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def push(self, packet: Packet) -> None:
        """Enqueue a freshly injected packet."""
        if packet.station_id != self.station_id:
            raise SimulationError(
                f"packet {packet.packet_id} for station {packet.station_id} "
                f"pushed to queue of station {self.station_id}"
            )
        self._packets.append(packet)
        self.total_enqueued += 1

    def head(self) -> Packet:
        """The packet that rides the next packet-carrying transmission."""
        if not self._packets:
            raise SimulationError(
                f"station {self.station_id}: head() on an empty queue"
            )
        return self._packets[0]

    def pop_delivered(self) -> Packet:
        """Remove and return the head packet after its acknowledgment."""
        if not self._packets:
            raise SimulationError(
                f"station {self.station_id}: pop on an empty queue"
            )
        packet = self._packets.popleft()
        self.total_delivered += 1
        return packet

    def pending_cost_upper_bound(self, max_slot_length: Fraction) -> Fraction:
        """Upper bound on the total cost of queued packets.

        A packet's cost is only realized at delivery, but it can never
        exceed the maximum slot length ``R``; the paper's queue-cost
        bounds are checked against ``len(queue) * R``.
        """
        return Fraction(len(self._packets)) * max_slot_length
