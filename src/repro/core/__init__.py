"""Core substrate: exact time, channel model, stations, simulator, traces."""

from .channel import Channel, ChannelStats, Transmission
from .errors import (
    AdmissibilityError,
    AsyncMacError,
    ConfigurationError,
    ProtocolError,
    SimulationError,
)
from .feedback import Feedback
from .packet import Packet, PacketQueue
from .simulator import Simulator, StationRuntime
from .station import (
    LISTEN,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
    Action,
    ActionKind,
    AlwaysListen,
    AlwaysTransmit,
    SlotContext,
    StationAlgorithm,
)
from .timebase import (
    FRACTION_TIMEBASE,
    MAX_LATTICE_DENOMINATOR,
    FractionTimebase,
    Interval,
    OffLatticeError,
    TickLattice,
    Time,
    TimeLike,
    Timebase,
    as_time,
    check_slot_length,
    declared_lattice_denominator,
    make_interval,
)
from .trace import BacklogSample, SlotRecord, Trace

__all__ = [
    "AdmissibilityError",
    "Action",
    "ActionKind",
    "AlwaysListen",
    "AlwaysTransmit",
    "AsyncMacError",
    "BacklogSample",
    "Channel",
    "ChannelStats",
    "ConfigurationError",
    "Feedback",
    "FRACTION_TIMEBASE",
    "FractionTimebase",
    "Interval",
    "LISTEN",
    "MAX_LATTICE_DENOMINATOR",
    "OffLatticeError",
    "Packet",
    "PacketQueue",
    "ProtocolError",
    "SimulationError",
    "Simulator",
    "SlotContext",
    "SlotRecord",
    "StationAlgorithm",
    "StationRuntime",
    "TickLattice",
    "Time",
    "TimeLike",
    "Timebase",
    "TRANSMIT_CONTROL",
    "TRANSMIT_PACKET",
    "Trace",
    "Transmission",
    "as_time",
    "check_slot_length",
    "declared_lattice_denominator",
    "make_interval",
]
