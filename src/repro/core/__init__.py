"""Core substrate: exact time, channel model, stations, simulator, traces."""

from .channel import Channel, ChannelStats, Transmission
from .errors import (
    AdmissibilityError,
    AsyncMacError,
    ConfigurationError,
    ProtocolError,
    SimulationError,
)
from .feedback import Feedback
from .packet import Packet, PacketQueue
from .simulator import Simulator, StationRuntime
from .station import (
    LISTEN,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
    Action,
    ActionKind,
    AlwaysListen,
    AlwaysTransmit,
    SlotContext,
    StationAlgorithm,
)
from .timebase import Interval, Time, TimeLike, as_time, check_slot_length, make_interval
from .trace import BacklogSample, SlotRecord, Trace

__all__ = [
    "AdmissibilityError",
    "Action",
    "ActionKind",
    "AlwaysListen",
    "AlwaysTransmit",
    "AsyncMacError",
    "BacklogSample",
    "Channel",
    "ChannelStats",
    "ConfigurationError",
    "Feedback",
    "Interval",
    "LISTEN",
    "Packet",
    "PacketQueue",
    "ProtocolError",
    "SimulationError",
    "Simulator",
    "SlotContext",
    "SlotRecord",
    "StationAlgorithm",
    "StationRuntime",
    "Time",
    "TimeLike",
    "TRANSMIT_CONTROL",
    "TRANSMIT_PACKET",
    "Trace",
    "Transmission",
    "as_time",
    "check_slot_length",
    "make_interval",
]
