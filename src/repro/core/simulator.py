"""Event-driven simulator for the partially asynchronous MAC.

The simulator owns the four moving parts of the model in Section II:

* one :class:`~repro.core.station.StationAlgorithm` per station, seeing
  only per-slot feedback and its own queue length;
* the :class:`~repro.core.channel.Channel`, which resolves real-time
  transmission overlap exactly;
* a *slot adversary* deciding the length of every slot (within
  ``[1, R]``) at the moment the slot begins, with full knowledge of the
  global state (see :mod:`repro.timing.adversary`);
* an *arrival source* injecting packets at adversary-chosen instants
  (see :mod:`repro.arrivals`).

Events are slot boundaries, processed in ``(time, station_id)`` order.
All timestamps are exact rationals, so executions are bit-for-bit
deterministic and reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs.probes import (
    ArrivalEvent,
    DeliveryEvent,
    FeedbackEvent,
    ProbeBus,
    SlotBeginEvent,
    SlotEndEvent,
)
from .channel import Channel
from .errors import ConfigurationError, ProtocolError, SimulationError
from .feedback import Feedback
from .packet import Packet, PacketQueue
from .station import Action, SlotContext, StationAlgorithm
from .timebase import Interval, Time, TimeLike, as_time, check_slot_length
from .trace import SlotRecord, Trace

#: How many events between channel prunes (amortizes the O(history) scan).
_PRUNE_EVERY = 512


@dataclass(slots=True)
class StationRuntime:
    """Mutable per-station bookkeeping owned by the simulator."""

    station_id: int
    algorithm: StationAlgorithm
    queue: PacketQueue
    slot_index: int = -1
    slot_start: Time = Fraction(0)
    slot_end: Time = Fraction(0)
    action: Optional[Action] = None
    aboard_packet: Optional[Packet] = None
    slots_elapsed: int = 0

    @property
    def slot_interval(self) -> Interval:
        return Interval(self.slot_start, self.slot_end)


class Simulator:
    """Deterministic discrete-event simulation of one execution.

    Args:
        algorithms: The station automata.  Either a sequence (stations
            get ids ``1..n`` in order, matching the paper's ID space
            ``[n]``) or a mapping from explicit ids to algorithms.
        slot_adversary: Object with ``next_slot_length(sim, station_id,
            slot_index) -> TimeLike``; every returned length is
            validated against ``[1, R]``.
        max_slot_length: The model bound ``R`` (known to algorithms —
            they were constructed with it; the simulator only enforces
            it against the adversary).
        arrival_source: Optional packet injector; ``None`` means no
            arrivals (the SST setting, where algorithms that transmit
            packets should be given initial packets via
            ``initial_packets``).
        initial_packets: Number of packets pre-loaded into every queue
            at time 0 (before the first action is chosen).
        trace: Optional :class:`~repro.core.trace.Trace` sink.
        keep_channel_history: Disable channel pruning so every
            transmission record survives the run — required by post-hoc
            analyses that walk the success record (phase segmentation,
            figure rendering).  Leave off for long stability runs.
        probes: Optional :class:`~repro.obs.probes.ProbeBus`.  The
            simulator fires ``slot_begin`` / ``slot_end`` / ``feedback``
            / ``arrival`` / ``delivery`` events on it (and the channel
            fires ``collision``); with no bus — or a bus nobody
            subscribed to — the per-slot cost is a single attribute
            check per probe point.
        profiler: Optional :class:`~repro.obs.profiling.PhaseProfiler`;
            when present, wall time of adversary calls, channel feedback
            resolution and algorithm steps is attributed per phase.
    """

    def __init__(
        self,
        algorithms: Union[Sequence[StationAlgorithm], Mapping[int, StationAlgorithm]],
        slot_adversary,
        max_slot_length: TimeLike,
        arrival_source=None,
        initial_packets: int = 0,
        trace: Optional[Trace] = None,
        keep_channel_history: bool = False,
        probes: Optional[ProbeBus] = None,
        profiler=None,
    ) -> None:
        self.keep_channel_history = keep_channel_history
        if isinstance(algorithms, Mapping):
            items = sorted(algorithms.items())
        else:
            items = list(enumerate(algorithms, start=1))
        if not items:
            raise ConfigurationError("at least one station is required")
        ids = [sid for sid, _ in items]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate station ids: {ids}")

        self.max_slot_length = as_time(max_slot_length)
        if self.max_slot_length < 1:
            raise ConfigurationError(
                f"R must be at least 1, got {self.max_slot_length}"
            )
        self.slot_adversary = slot_adversary
        self.arrival_source = arrival_source
        self.probes = probes
        self.profiler = profiler
        self.channel = Channel(
            max_transmission_duration=self.max_slot_length, probes=probes
        )
        self.trace = trace if trace is not None else Trace()

        self.stations: Dict[int, StationRuntime] = {
            sid: StationRuntime(
                station_id=sid, algorithm=algo, queue=PacketQueue(station_id=sid)
            )
            for sid, algo in items
        }
        self.now: Time = Fraction(0)
        self.events_processed = 0
        self._event_heap: List[Tuple[Time, int]] = []
        self._pending_arrivals: Dict[int, List[Packet]] = {sid: [] for sid in ids}
        self._next_packet_id = 0
        self._total_backlog = 0
        self._delivered_packets: List[Packet] = []
        self._started = False

        if initial_packets:
            for sid in ids:
                for _ in range(initial_packets):
                    self._inject(sid, Fraction(0))

    # ------------------------------------------------------------------
    # Public accessors (also the adversaries' observation surface)
    # ------------------------------------------------------------------

    @property
    def station_ids(self) -> List[int]:
        """All station ids, ascending."""
        return sorted(self.stations)

    @property
    def n_stations(self) -> int:
        return len(self.stations)

    def queue_size(self, station_id: int) -> int:
        """Current queue length of one station (pending arrivals excluded)."""
        return len(self.stations[station_id].queue)

    @property
    def total_backlog(self) -> int:
        """Packets injected but not yet delivered, across all stations.

        Includes packets that arrived but are not yet visible to their
        station (arrival instants between slot boundaries) — exactly the
        paper's "packets that were already injected but have not yet
        been transmitted successfully".
        """
        return self._total_backlog

    @property
    def delivered_packets(self) -> List[Packet]:
        """Every packet delivered so far, in delivery order."""
        return self._delivered_packets

    def algorithm(self, station_id: int) -> StationAlgorithm:
        return self.stations[station_id].algorithm

    # ------------------------------------------------------------------
    # Packet injection
    # ------------------------------------------------------------------

    def _inject(self, station_id: int, at: Time) -> Packet:
        """Create a packet and hold it pending until the next slot boundary."""
        packet = Packet(
            packet_id=self._next_packet_id, station_id=station_id, arrival_time=at
        )
        self._next_packet_id += 1
        self._pending_arrivals[station_id].append(packet)
        self._total_backlog += 1
        self.trace.on_backlog_change(at, self._total_backlog)
        probes = self.probes
        if probes is not None and probes.arrival:
            event = ArrivalEvent(
                packet_id=packet.packet_id,
                station_id=station_id,
                at=at,
                backlog=self._total_backlog,
            )
            for callback in probes.arrival:
                callback(event)
        return packet

    def _pump_arrivals(self, upto: Time) -> None:
        """Pull all arrivals with time <= ``upto`` from the source."""
        if self.arrival_source is None:
            return
        for at, station_id in self.arrival_source.arrivals_until(self, upto):
            exact = as_time(at)
            if exact > upto:
                raise SimulationError(
                    f"arrival source produced a future arrival {exact} > {upto}"
                )
            if station_id not in self.stations:
                raise SimulationError(f"arrival for unknown station {station_id}")
            self._inject(station_id, exact)

    def _deliver_pending(self, runtime: StationRuntime, upto: Time) -> None:
        """Move arrivals with time <= ``upto`` into the station's queue.

        Called at the station's own slot boundary: the paper makes
        injected packets visible to the algorithm between consecutive
        slots.
        """
        pending = self._pending_arrivals[runtime.station_id]
        if not pending:
            return
        still_pending: List[Packet] = []
        for packet in pending:
            if packet.arrival_time <= upto:
                runtime.queue.push(packet)
            else:
                still_pending.append(packet)
        self._pending_arrivals[runtime.station_id] = still_pending

    # ------------------------------------------------------------------
    # Slot machinery
    # ------------------------------------------------------------------

    def _validate_action(self, runtime: StationRuntime, action: Action) -> None:
        if not action.is_transmit:
            return
        if action.carries_packet:
            if not runtime.queue:
                raise ProtocolError(
                    f"station {runtime.station_id}: "
                    f"{type(runtime.algorithm).__name__} transmitted a packet "
                    "from an empty queue"
                )
        elif not runtime.algorithm.uses_control_messages:
            raise ProtocolError(
                f"station {runtime.station_id}: "
                f"{type(runtime.algorithm).__name__} sent a control message "
                "but declares uses_control_messages=False"
            )

    def _begin_slot(self, runtime: StationRuntime, start: Time, action: Action) -> None:
        """Open the next slot: fix its adversarial length, start any transmission."""
        self._validate_action(runtime, action)
        # Commit the station's intent before consulting the adversary:
        # the model's online adversary observes actions when fixing slot
        # lengths, so ``runtime.action`` must already describe the slot
        # being opened (slot_start/end still describe the previous one).
        runtime.action = action
        profiler = self.profiler
        if profiler is None:
            raw_length = self.slot_adversary.next_slot_length(
                self, runtime.station_id, runtime.slot_index + 1
            )
        else:
            began = perf_counter()
            raw_length = self.slot_adversary.next_slot_length(
                self, runtime.station_id, runtime.slot_index + 1
            )
            profiler.add("adversary", perf_counter() - began)
        length = check_slot_length(raw_length, self.max_slot_length)
        self.open_slot(runtime, start, length)

    def open_slot(self, runtime: StationRuntime, start: Time, length: Time) -> None:
        """Fix the pending slot's length and schedule its end event.

        Split out of :meth:`_begin_slot` so that look-ahead adversaries
        (see :mod:`repro.timing.lookahead`) can clone a simulator that
        is mid-decision and complete the probed slot with a candidate
        length of their choosing.
        """
        runtime.slot_index += 1
        runtime.slot_start = start
        runtime.slot_end = start + length
        runtime.aboard_packet = None
        action = runtime.action
        if action is not None and action.is_transmit:
            aboard = runtime.queue.head() if action.carries_packet else None
            runtime.aboard_packet = aboard
            self.channel.begin_transmission(
                runtime.station_id, runtime.slot_interval, aboard
            )
        heapq.heappush(self._event_heap, (runtime.slot_end, runtime.station_id))
        probes = self.probes
        if probes is not None and probes.slot_begin and action is not None:
            event = SlotBeginEvent(
                station_id=runtime.station_id,
                slot_index=runtime.slot_index,
                start=start,
                length=length,
                action=action,
            )
            for callback in probes.slot_begin:
                callback(event)

    def _start(self) -> None:
        """Open every station's first slot at time 0."""
        self._started = True
        self._pump_arrivals(Fraction(0))
        for sid in self.station_ids:
            runtime = self.stations[sid]
            self._deliver_pending(runtime, Fraction(0))
            ctx = SlotContext(
                feedback=None, queue_size=len(runtime.queue), slot_index=0
            )
            action = self._timed_algorithm_step(runtime.algorithm.first_action, ctx)
            self._begin_slot(runtime, Fraction(0), action)

    def _timed_algorithm_step(self, step: Callable[[SlotContext], Action], ctx: SlotContext) -> Action:
        """Run one automaton step, attributing its wall time when profiling."""
        profiler = self.profiler
        if profiler is None:
            return step(ctx)
        began = perf_counter()
        action = step(ctx)
        profiler.add("algorithm", perf_counter() - began)
        return action

    def _compute_feedback(self, runtime: StationRuntime) -> Feedback:
        slot = runtime.slot_interval
        success = self.channel.successful_ending_within(slot)
        if success is not None:
            return Feedback.ACK
        if self.channel.feedback_has_activity(slot):
            return Feedback.BUSY
        return Feedback.SILENCE

    def _process_event(self) -> None:
        end_time, sid = heapq.heappop(self._event_heap)
        runtime = self.stations[sid]
        if end_time != runtime.slot_end:
            raise SimulationError(
                f"event heap desync for station {sid}: {end_time} != {runtime.slot_end}"
            )
        self.now = end_time
        self._pump_arrivals(end_time)
        profiler = self.profiler
        if profiler is None:
            feedback = self._compute_feedback(runtime)
        else:
            began = perf_counter()
            feedback = self._compute_feedback(runtime)
            profiler.add("channel", perf_counter() - began)
        probes = self.probes
        if probes is not None and probes.feedback:
            event = FeedbackEvent(
                station_id=sid,
                slot_index=runtime.slot_index,
                at=end_time,
                feedback=feedback,
            )
            for callback in probes.feedback:
                callback(event)

        delivered = False
        if (
            feedback is Feedback.ACK
            and runtime.action is not None
            and runtime.action.is_transmit
            and runtime.aboard_packet is not None
        ):
            # A transmitting station's ACK can only certify its own
            # transmission (any other success would have overlapped it).
            packet = runtime.queue.pop_delivered()
            if packet is not runtime.aboard_packet:
                raise SimulationError(
                    f"station {sid}: queue head changed under a transmission"
                )
            packet.mark_delivered(at=end_time, cost=runtime.slot_interval.duration)
            self._delivered_packets.append(packet)
            self._total_backlog -= 1
            self.trace.on_backlog_change(end_time, self._total_backlog)
            delivered = True
            if probes is not None and probes.delivery:
                event = DeliveryEvent(
                    packet_id=packet.packet_id,
                    station_id=sid,
                    at=end_time,
                    latency=packet.latency,
                    cost=packet.cost,
                    backlog=self._total_backlog,
                )
                for callback in probes.delivery:
                    callback(event)

        self._deliver_pending(runtime, end_time)
        runtime.slots_elapsed += 1

        record_action = runtime.action
        record_interval = runtime.slot_interval
        carried = runtime.aboard_packet

        if probes is not None and probes.slot_end and record_action is not None:
            event = SlotEndEvent(
                station_id=sid,
                slot_index=runtime.slot_index,
                interval=record_interval,
                action=record_action,
                feedback=feedback,
                queue_size=len(runtime.queue),
                delivered=delivered,
                backlog=self._total_backlog,
                carried_packet_id=carried.packet_id if carried else None,
            )
            for callback in probes.slot_end:
                callback(event)

        ctx = SlotContext(
            feedback=feedback,
            queue_size=len(runtime.queue),
            slot_index=runtime.slot_index + 1,
        )
        next_action = self._timed_algorithm_step(runtime.algorithm.on_slot_end, ctx)
        self._begin_slot(runtime, end_time, next_action)

        if self.trace.record_slots and record_action is not None:
            self.trace.on_slot(
                SlotRecord(
                    station_id=sid,
                    slot_index=runtime.slot_index - 1,
                    interval=record_interval,
                    action=record_action,
                    feedback=feedback,
                    queue_size_after=len(runtime.queue),
                    carried_packet_id=carried.packet_id if carried else None,
                    delivered=delivered,
                )
            )

        self.events_processed += 1
        if (
            not self.keep_channel_history
            and self.events_processed % _PRUNE_EVERY == 0
        ):
            low_water = min(rt.slot_start for rt in self.stations.values())
            self.channel.prune_before(low_water)

    # ------------------------------------------------------------------
    # Run loops
    # ------------------------------------------------------------------

    def run(
        self,
        until_time: Optional[TimeLike] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[["Simulator"], bool]] = None,
    ) -> "Simulator":
        """Advance the simulation until a stopping condition triggers.

        ``until_time`` stops once the next event would exceed the given
        time (so all slots *ending* by that time are processed).
        ``max_events`` bounds the number of slot-end events.
        ``stop_when`` is evaluated after every processed event.
        Returns ``self`` for chaining.
        """
        if until_time is None and max_events is None and stop_when is None:
            raise ConfigurationError(
                "run() needs at least one stopping condition"
            )
        limit_time = as_time(until_time) if until_time is not None else None
        if not self._started:
            self._start()
            if stop_when is not None and stop_when(self):
                return self
        while True:
            if max_events is not None and self.events_processed >= max_events:
                return self
            if not self._event_heap:
                raise SimulationError("event heap empty — stations always reschedule")
            if limit_time is not None and self._event_heap[0][0] > limit_time:
                self.now = limit_time
                return self
            self._process_event()
            if stop_when is not None and stop_when(self):
                return self

    def run_until_success(
        self, max_events: int = 10_000_000
    ) -> Optional[Time]:
        """Run until the first successful transmission ends; return that time.

        The workhorse of SST experiments.  Returns ``None`` if
        ``max_events`` elapsed with no success (the SST algorithm failed
        or the adversary prevented progress for that long).
        """

        def succeeded(sim: "Simulator") -> bool:
            return sim.channel.count_successes_up_to(sim.now) > 0

        self.run(max_events=max_events, stop_when=succeeded)
        if not succeeded(self):
            return None
        ends = [
            t.interval.end
            for t in self.channel.live_records
            if t.successful and t.interval.end <= self.now
        ]
        if ends:
            return min(ends)
        return self.channel.first_success_end

    def slots_elapsed(self, station_id: int) -> int:
        """Completed slots of one station (the paper's cost measure for SST)."""
        return self.stations[station_id].slots_elapsed

    def max_slots_elapsed(self) -> int:
        """Maximum completed-slot count over stations (Theorem 1's measure)."""
        return max(rt.slots_elapsed for rt in self.stations.values())
