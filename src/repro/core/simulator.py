"""Event-driven simulator for the partially asynchronous MAC.

The simulator owns the four moving parts of the model in Section II:

* one :class:`~repro.core.station.StationAlgorithm` per station, seeing
  only per-slot feedback and its own queue length;
* the :class:`~repro.core.channel.Channel`, which resolves real-time
  transmission overlap exactly;
* a *slot adversary* deciding the length of every slot (within
  ``[1, R]``) at the moment the slot begins, with full knowledge of the
  global state (see :mod:`repro.timing.adversary`);
* an *arrival source* injecting packets at adversary-chosen instants
  (see :mod:`repro.arrivals`).

Events are slot boundaries, processed in ``(time, station_id)`` order.
All timestamps are exact rationals, so executions are bit-for-bit
deterministic and reproducible.

Internally the simulator runs on a per-run *timebase*: when the slot
adversary and arrival source both declare that every time they produce
lies on a lattice ``k / D`` (see
:meth:`~repro.core.timebase.declared_lattice_denominator`), all internal
times — heap keys, slot boundaries, channel intervals — are plain
``int`` ticks, converted back to exact Fractions only at the
observation boundary (trace, probes, packets, public accessors).  The
observable execution is bit-for-bit identical either way; components
that cannot declare a lattice (adaptive/look-ahead adversaries, the
paper's mirror and collision-forcing constructions) simply fall back to
the Fraction path for the whole run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from math import lcm
from time import perf_counter
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs.probes import (
    ArrivalEvent,
    DeliveryEvent,
    FeedbackEvent,
    ProbeBus,
    SlotBeginEvent,
    SlotEndEvent,
)
from .channel import Channel
from .errors import ConfigurationError, ProtocolError, SimulationError
from .feedback import Feedback
from .packet import Packet, PacketQueue
from .station import Action, SlotContext, StationAlgorithm
from .timebase import (
    FRACTION_TIMEBASE,
    MAX_LATTICE_DENOMINATOR,
    FractionTimebase,
    Interval,
    OffLatticeError,
    TickLattice,
    Time,
    TimeLike,
    Timebase,
    as_time,
    declared_lattice_denominator,
)
from .trace import SlotRecord, Trace

#: How many events between channel prunes (amortizes the O(history) scan).
_PRUNE_EVERY = 512

#: Sentinel threshold for "the arrival source can never fire again".
#: Compares greater than every internal time (int ticks or Fraction).
_NEVER = float("inf")


@dataclass(slots=True)
class StationRuntime:
    """Mutable per-station bookkeeping owned by the simulator.

    ``slot_start`` / ``slot_end`` / ``slot_interval`` are in the run's
    internal timebase units (identical to public time under the default
    Fraction timebase; integer ticks under a lattice).
    """

    station_id: int
    algorithm: StationAlgorithm
    queue: PacketQueue
    slot_index: int = -1
    slot_start: Time = Fraction(0)
    slot_end: Time = Fraction(0)
    slot_interval: Optional[Interval] = None
    action: Optional[Action] = None
    aboard_packet: Optional[Packet] = None
    slots_elapsed: int = 0


class Simulator:
    """Deterministic discrete-event simulation of one execution.

    Args:
        algorithms: The station automata.  Either a sequence (stations
            get ids ``1..n`` in order, matching the paper's ID space
            ``[n]``) or a mapping from explicit ids to algorithms.
        slot_adversary: Object with ``next_slot_length(sim, station_id,
            slot_index) -> TimeLike``; every returned length is
            validated against ``[1, R]``.
        max_slot_length: The model bound ``R`` (known to algorithms —
            they were constructed with it; the simulator only enforces
            it against the adversary).
        arrival_source: Optional packet injector; ``None`` means no
            arrivals (the SST setting, where algorithms that transmit
            packets should be given initial packets via
            ``initial_packets``).
        initial_packets: Number of packets pre-loaded into every queue
            at time 0 (before the first action is chosen).
        trace: Optional :class:`~repro.core.trace.Trace` sink.
        keep_channel_history: Disable channel pruning so every
            transmission record survives the run — required by post-hoc
            analyses that walk the success record (phase segmentation,
            figure rendering).  Leave off for long stability runs.
        probes: Optional :class:`~repro.obs.probes.ProbeBus`.  The
            simulator fires ``slot_begin`` / ``slot_end`` / ``feedback``
            / ``arrival`` / ``delivery`` events on it (and the channel
            fires ``collision``); with no bus — or a bus nobody
            subscribed to — the per-slot cost is a single attribute
            check per probe point.
        profiler: Optional :class:`~repro.obs.profiling.PhaseProfiler`;
            when present, wall time of adversary calls, channel feedback
            resolution and algorithm steps is attributed per phase.
        timebase: Internal time representation.  ``"auto"`` (default)
            runs on an integer tick lattice when the adversary and
            source declare one, else on exact Fractions; ``"fraction"``
            forces the Fraction path; ``"lattice"`` demands the fast
            path and raises :class:`ConfigurationError` naming the
            component that prevents it.  A
            :class:`~repro.core.timebase.TickLattice` or
            :class:`~repro.core.timebase.FractionTimebase` instance is
            used as given.  Observable results are bit-for-bit
            identical across timebases.
        engine: Inner-loop implementation.  ``"auto"`` (default) uses
            the NumPy whole-fleet kernel (:mod:`repro.core.batch`) when
            the run is batch-eligible — on the tick lattice, no
            per-event observers, vector programs registered for the
            slot adversary and the (homogeneous) station algorithm
            class — and the per-object event loop otherwise.
            :attr:`engine_detail` records how the choice fell: the
            matched vector programs on promotion, the named blocker on
            demotion.  ``"batch"``
            demands the kernel and raises :class:`ConfigurationError`
            naming the blocker; ``"object"`` forces the per-object
            loop.  Observable results are bit-for-bit identical across
            engines.
    """

    def __init__(
        self,
        algorithms: Union[Sequence[StationAlgorithm], Mapping[int, StationAlgorithm]],
        slot_adversary,
        max_slot_length: TimeLike,
        arrival_source=None,
        initial_packets: int = 0,
        trace: Optional[Trace] = None,
        keep_channel_history: bool = False,
        probes: Optional[ProbeBus] = None,
        profiler=None,
        timebase: Union[str, Timebase] = "auto",
        engine: str = "auto",
    ) -> None:
        self.keep_channel_history = keep_channel_history
        if isinstance(algorithms, Mapping):
            items = sorted(algorithms.items())
        else:
            items = list(enumerate(algorithms, start=1))
        if not items:
            raise ConfigurationError("at least one station is required")
        ids = [sid for sid, _ in items]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate station ids: {ids}")

        self.max_slot_length = as_time(max_slot_length)
        if self.max_slot_length < 1:
            raise ConfigurationError(
                f"R must be at least 1, got {self.max_slot_length}"
            )
        self.slot_adversary = slot_adversary
        self.arrival_source = arrival_source
        self.probes = probes
        self.profiler = profiler
        self._timebase = self._resolve_timebase(timebase)
        self._max_slot_internal = self._timebase.to_internal(self.max_slot_length)
        self.channel = Channel(
            max_transmission_duration=self._max_slot_internal,
            probes=probes,
            timebase=self._timebase,
        )
        self.trace = trace if trace is not None else Trace()

        self.stations: Dict[int, StationRuntime] = {
            sid: StationRuntime(
                station_id=sid, algorithm=algo, queue=PacketQueue(station_id=sid)
            )
            for sid, algo in items
        }
        self._station_ids: Tuple[int, ...] = tuple(ids)
        # Polling-skip fast path: sources exposing ``next_arrival_hint``
        # promise no arrival strictly before the hinted instant, letting
        # the event loop skip ``arrivals_until`` entirely until then.
        self._arrival_hint = getattr(arrival_source, "next_arrival_hint", None)
        self._arrivals_not_before = (
            _NEVER if arrival_source is None else self._timebase.zero
        )
        self._now_internal = self._timebase.zero
        self._now_exact: Optional[Time] = None
        self.events_processed = 0
        self._event_heap: List[Tuple[object, int]] = []
        self._pending_arrivals: Dict[int, List[Tuple[object, Packet]]] = {
            sid: [] for sid in ids
        }
        self._next_packet_id = 0
        self._total_backlog = 0
        self._delivered_packets: List[Packet] = []
        self._started = False

        if initial_packets:
            zero = self._timebase.zero
            for sid in ids:
                for _ in range(initial_packets):
                    self._inject(sid, zero)

        # Engine resolution happens last: eligibility inspects the
        # fully-constructed simulator (timebase, trace, fleet).
        self._engine_requested = engine
        self._engine, self._engine_detail = self._resolve_engine(engine)
        self._batch_kernel = None

    # ------------------------------------------------------------------
    # Timebase selection
    # ------------------------------------------------------------------

    def _resolve_timebase(self, requested: Union[str, Timebase]) -> Timebase:
        # ``_timebase_detail`` records why the run is NOT on a lattice
        # (None when it is); engine auto-detection folds it into its
        # own demotion reason.
        self._timebase_detail: Optional[str] = None
        if isinstance(requested, (FractionTimebase, TickLattice)):
            if not requested.is_lattice:
                self._timebase_detail = "a FractionTimebase instance was supplied"
            return requested
        if requested == "fraction":
            self._timebase_detail = "timebase='fraction' was requested"
            return FRACTION_TIMEBASE
        if requested not in ("auto", "lattice"):
            raise ConfigurationError(
                "timebase must be 'auto', 'lattice', 'fraction' or a "
                f"timebase instance, got {requested!r}"
            )
        lattice, why_not = self._detect_lattice()
        if lattice is not None:
            return lattice
        if requested == "lattice":
            raise ConfigurationError(
                f"timebase='lattice' requested but {why_not}"
            )
        self._timebase_detail = why_not
        return FRACTION_TIMEBASE

    def _detect_lattice(self):
        """Try to build a per-run tick lattice from component declarations.

        Returns ``(TickLattice, None)`` on success or ``(None, reason)``
        when some component prevents the fast path.
        """
        adversary_den = declared_lattice_denominator(self.slot_adversary)
        if adversary_den is None:
            return None, (
                f"slot adversary {type(self.slot_adversary).__name__} "
                "does not declare a time lattice"
            )
        source_den = 1
        if self.arrival_source is not None:
            source_den = declared_lattice_denominator(self.arrival_source)
            if source_den is None:
                return None, (
                    f"arrival source {type(self.arrival_source).__name__} "
                    "does not declare a time lattice"
                )
        denominator = lcm(
            adversary_den, source_den, self.max_slot_length.denominator
        )
        if denominator > MAX_LATTICE_DENOMINATOR:
            return None, (
                f"combined lattice denominator {denominator} exceeds "
                f"{MAX_LATTICE_DENOMINATOR}"
            )
        return TickLattice(denominator), None

    # ------------------------------------------------------------------
    # Engine selection
    # ------------------------------------------------------------------

    def _resolve_engine(self, requested: str):
        """Pick the inner loop; return ``(engine, detail)``.

        ``detail`` names the demotion blocker when ``"auto"`` falls back
        to the object path, and the promotion path (which vector
        programs matched) when the batch kernel is selected.
        """
        if requested == "object":
            return "object", None
        if requested not in ("auto", "batch"):
            raise ConfigurationError(
                "engine must be 'auto', 'batch' or 'object', "
                f"got {requested!r}"
            )
        from .batch import batch_blocker, promotion_detail

        blocker = batch_blocker(self)
        if blocker is None:
            return "batch", promotion_detail(self)
        if requested == "batch":
            raise ConfigurationError(f"engine='batch' requested but {blocker}")
        return "object", blocker

    # ------------------------------------------------------------------
    # Public accessors (also the adversaries' observation surface)
    # ------------------------------------------------------------------

    @property
    def timebase(self) -> Timebase:
        """The run's internal time representation (read-only)."""
        return self._timebase

    @property
    def engine(self) -> str:
        """The resolved inner loop, ``"batch"`` or ``"object"``."""
        return self._engine

    @property
    def engine_requested(self) -> str:
        """The ``engine=`` argument the simulator was constructed with."""
        return self._engine_requested

    @property
    def engine_detail(self) -> Optional[str]:
        """How the engine resolved: the demotion blocker when ``"auto"``
        fell back to the object path, the promotion path (matched vector
        programs) when the batch kernel was selected, ``None`` when the
        object loop was forced."""
        return self._engine_detail

    @property
    def engine_described(self) -> str:
        """The resolved engine with its family: ``"object"``,
        ``"batch(adaptive)"`` or ``"batch(nonadaptive)"`` — recorded in
        run-history extras so adaptive-batch runs stay distinguishable."""
        if self._engine != "batch":
            return self._engine
        from .batch import engine_family

        return engine_family(self)

    @property
    def now(self) -> Time:
        """Current simulation time, always an exact public Fraction."""
        if self._now_exact is not None:
            return self._now_exact
        return self._timebase.to_public(self._now_internal)

    @property
    def station_ids(self) -> Tuple[int, ...]:
        """All station ids, ascending (cached tuple)."""
        return self._station_ids

    @property
    def n_stations(self) -> int:
        return len(self.stations)

    def queue_size(self, station_id: int) -> int:
        """Current queue length of one station (pending arrivals excluded)."""
        return len(self.stations[station_id].queue)

    @property
    def total_backlog(self) -> int:
        """Packets injected but not yet delivered, across all stations.

        Includes packets that arrived but are not yet visible to their
        station (arrival instants between slot boundaries) — exactly the
        paper's "packets that were already injected but have not yet
        been transmitted successfully".
        """
        return self._total_backlog

    @property
    def delivered_packets(self) -> List[Packet]:
        """Every packet delivered so far, in delivery order."""
        return self._delivered_packets

    def algorithm(self, station_id: int) -> StationAlgorithm:
        return self.stations[station_id].algorithm

    # ------------------------------------------------------------------
    # Packet injection
    # ------------------------------------------------------------------

    def _inject(self, station_id: int, at) -> Packet:
        """Create a packet and hold it pending until the next slot boundary.

        ``at`` is in internal units; the packet's public ``arrival_time``
        is the exact Fraction.
        """
        at_public = self._timebase.to_public(at)
        packet = Packet(
            packet_id=self._next_packet_id,
            station_id=station_id,
            arrival_time=at_public,
        )
        self._next_packet_id += 1
        self._pending_arrivals[station_id].append((at, packet))
        self._total_backlog += 1
        self.trace.on_backlog_change(at_public, self._total_backlog)
        probes = self.probes
        if probes is not None and probes.arrival:
            event = ArrivalEvent(
                packet_id=packet.packet_id,
                station_id=station_id,
                at=at_public,
                backlog=self._total_backlog,
            )
            for callback in probes.arrival:
                callback(event)
        return packet

    def _pump_arrivals(self, upto) -> List[int]:
        """Pull all arrivals with time <= ``upto`` (internal units).

        The source speaks public time: it receives the exact Fraction
        bound and its returned instants are converted back onto the
        internal timebase.  When the source hints at its next injection
        instant, events strictly before the hint skip the poll: for
        integer ticks ``upto < ceil(hint * D)`` iff ``upto/D < hint``,
        so the skip is exact.

        Returns the station ids injected into (with multiplicity), so
        the batch kernel can track which pending lists became nonempty.
        """
        injected: List[int] = []
        if upto < self._arrivals_not_before:
            return injected
        if self.arrival_source is None:
            return injected
        timebase = self._timebase
        upto_public = timebase.to_public(upto)
        for at, station_id in self.arrival_source.arrivals_until(self, upto_public):
            exact = as_time(at)
            if exact > upto_public:
                raise SimulationError(
                    f"arrival source produced a future arrival {exact} > {upto_public}"
                )
            if station_id not in self.stations:
                raise SimulationError(f"arrival for unknown station {station_id}")
            try:
                internal = timebase.to_internal(exact)
            except OffLatticeError as err:
                raise SimulationError(
                    f"arrival at {exact} is off the run's declared "
                    f"1/{timebase.denominator} time lattice; fix the arrival "
                    "source's lattice_denominator() declaration or construct "
                    "the Simulator with timebase='fraction'"
                ) from err
            self._inject(station_id, internal)
            injected.append(station_id)
        hint_fn = self._arrival_hint
        if hint_fn is not None:
            hint = hint_fn()
            self._arrivals_not_before = (
                _NEVER if hint is None else timebase.ceil_internal(hint)
            )
        return injected

    def _deliver_pending(self, runtime: StationRuntime, upto) -> None:
        """Move arrivals with time <= ``upto`` into the station's queue.

        Called at the station's own slot boundary: the paper makes
        injected packets visible to the algorithm between consecutive
        slots.
        """
        pending = self._pending_arrivals[runtime.station_id]
        if not pending:
            return
        still_pending: List[Tuple[object, Packet]] = []
        for at, packet in pending:
            if at <= upto:
                runtime.queue.push(packet)
            else:
                still_pending.append((at, packet))
        self._pending_arrivals[runtime.station_id] = still_pending

    # ------------------------------------------------------------------
    # Slot machinery
    # ------------------------------------------------------------------

    def _validate_action(self, runtime: StationRuntime, action: Action) -> None:
        if not action.is_transmit:
            return
        if action.carries_packet:
            if not runtime.queue:
                raise ProtocolError(
                    f"station {runtime.station_id}: "
                    f"{type(runtime.algorithm).__name__} transmitted a packet "
                    "from an empty queue"
                )
        elif not runtime.algorithm.uses_control_messages:
            raise ProtocolError(
                f"station {runtime.station_id}: "
                f"{type(runtime.algorithm).__name__} sent a control message "
                "but declares uses_control_messages=False"
            )

    def _begin_slot(self, runtime: StationRuntime, start, action: Action) -> None:
        """Open the next slot: fix its adversarial length, start any transmission."""
        if action.is_transmit:
            self._validate_action(runtime, action)
        # Commit the station's intent before consulting the adversary:
        # the model's online adversary observes actions when fixing slot
        # lengths, so ``runtime.action`` must already describe the slot
        # being opened (slot_start/end still describe the previous one).
        runtime.action = action
        profiler = self.profiler
        if profiler is None:
            raw_length = self.slot_adversary.next_slot_length(
                self, runtime.station_id, runtime.slot_index + 1
            )
        else:
            began = perf_counter()
            raw_length = self.slot_adversary.next_slot_length(
                self, runtime.station_id, runtime.slot_index + 1
            )
            profiler.add("adversary", perf_counter() - began)
        try:
            length = self._timebase.check_slot_length(
                raw_length, self._max_slot_internal
            )
        except OffLatticeError as err:
            raise SimulationError(
                f"slot adversary {type(self.slot_adversary).__name__} produced "
                f"slot length {as_time(raw_length)} off the run's declared "
                f"1/{self._timebase.denominator} time lattice; fix its "
                "lattice_denominator() declaration or construct the Simulator "
                "with timebase='fraction'"
            ) from err
        self.open_slot(runtime, start, length)

    def open_slot(self, runtime: StationRuntime, start, length) -> None:
        """Fix the pending slot's length and schedule its end event.

        Split out of :meth:`_begin_slot` so that look-ahead adversaries
        (see :mod:`repro.timing.lookahead`) can clone a simulator that
        is mid-decision and complete the probed slot with a candidate
        length of their choosing.  ``start`` and ``length`` are in the
        run's internal timebase units; look-ahead adversaries never
        declare a lattice, so for them internal units are plain public
        Fractions.
        """
        runtime.slot_index += 1
        runtime.slot_start = start
        end = start + length
        runtime.slot_end = end
        interval = Interval(start, end)
        runtime.slot_interval = interval
        runtime.aboard_packet = None
        action = runtime.action
        if action is not None and action.is_transmit:
            aboard = runtime.queue.head() if action.carries_packet else None
            runtime.aboard_packet = aboard
            self.channel.begin_transmission(runtime.station_id, interval, aboard)
        heapq.heappush(self._event_heap, (end, runtime.station_id))
        probes = self.probes
        if probes is not None and probes.slot_begin and action is not None:
            timebase = self._timebase
            event = SlotBeginEvent(
                station_id=runtime.station_id,
                slot_index=runtime.slot_index,
                start=timebase.to_public(start),
                length=timebase.to_public(length),
                action=action,
            )
            for callback in probes.slot_begin:
                callback(event)

    def _start(self) -> None:
        """Open every station's first slot at time 0."""
        self._started = True
        zero = self._timebase.zero
        self._pump_arrivals(zero)
        for sid in self._station_ids:
            runtime = self.stations[sid]
            self._deliver_pending(runtime, zero)
            ctx = SlotContext(
                feedback=None, queue_size=len(runtime.queue), slot_index=0
            )
            if self.profiler is None:
                action = runtime.algorithm.first_action(ctx)
            else:
                action = self._timed_algorithm_step(
                    runtime.algorithm.first_action, ctx
                )
            self._begin_slot(runtime, zero, action)

    def _timed_algorithm_step(self, step: Callable[[SlotContext], Action], ctx: SlotContext) -> Action:
        """Run one automaton step, attributing its wall time when profiling."""
        profiler = self.profiler
        if profiler is None:
            return step(ctx)
        began = perf_counter()
        action = step(ctx)
        profiler.add("algorithm", perf_counter() - began)
        return action

    def _compute_feedback(self, runtime: StationRuntime) -> Feedback:
        return self.channel.feedback_for(runtime.slot_interval)

    def _process_event(self) -> None:
        end_time, sid = heapq.heappop(self._event_heap)
        runtime = self.stations[sid]
        if end_time != runtime.slot_end:
            raise SimulationError(
                f"event heap desync for station {sid}: {end_time} != {runtime.slot_end}"
            )
        self._now_internal = end_time
        self._now_exact = None
        # Inlined polling-skip check (``_pump_arrivals`` re-checks, but
        # skipping the call entirely is measurable at event rate).
        if end_time >= self._arrivals_not_before:
            self._pump_arrivals(end_time)
        profiler = self.profiler
        if profiler is None:
            feedback = self._compute_feedback(runtime)
        else:
            began = perf_counter()
            feedback = self._compute_feedback(runtime)
            profiler.add("channel", perf_counter() - began)
        probes = self.probes
        timebase = self._timebase
        if probes is not None and probes.feedback:
            event = FeedbackEvent(
                station_id=sid,
                slot_index=runtime.slot_index,
                at=timebase.to_public(end_time),
                feedback=feedback,
            )
            for callback in probes.feedback:
                callback(event)

        delivered = False
        if (
            feedback is Feedback.ACK
            and runtime.action is not None
            and runtime.action.is_transmit
            and runtime.aboard_packet is not None
        ):
            # A transmitting station's ACK can only certify its own
            # transmission (any other success would have overlapped it).
            packet = runtime.queue.pop_delivered()
            if packet is not runtime.aboard_packet:
                raise SimulationError(
                    f"station {sid}: queue head changed under a transmission"
                )
            end_public = timebase.to_public(end_time)
            packet.mark_delivered(
                at=end_public,
                cost=timebase.to_public(runtime.slot_interval.duration),
            )
            self._delivered_packets.append(packet)
            self._total_backlog -= 1
            self.trace.on_backlog_change(end_public, self._total_backlog)
            delivered = True
            if probes is not None and probes.delivery:
                event = DeliveryEvent(
                    packet_id=packet.packet_id,
                    station_id=sid,
                    at=end_public,
                    latency=packet.latency,
                    cost=packet.cost,
                    backlog=self._total_backlog,
                )
                for callback in probes.delivery:
                    callback(event)

        self._deliver_pending(runtime, end_time)
        runtime.slots_elapsed += 1

        record_action = runtime.action
        record_interval = runtime.slot_interval
        carried = runtime.aboard_packet

        if probes is not None and probes.slot_end and record_action is not None:
            event = SlotEndEvent(
                station_id=sid,
                slot_index=runtime.slot_index,
                interval=timebase.interval_public(record_interval),
                action=record_action,
                feedback=feedback,
                queue_size=len(runtime.queue),
                delivered=delivered,
                backlog=self._total_backlog,
                carried_packet_id=carried.packet_id if carried else None,
            )
            for callback in probes.slot_end:
                callback(event)

        ctx = SlotContext(
            feedback=feedback,
            queue_size=len(runtime.queue),
            slot_index=runtime.slot_index + 1,
        )
        if profiler is None:
            next_action = runtime.algorithm.on_slot_end(ctx)
        else:
            next_action = self._timed_algorithm_step(
                runtime.algorithm.on_slot_end, ctx
            )
        self._begin_slot(runtime, end_time, next_action)

        if self.trace.record_slots and record_action is not None:
            self.trace.on_slot(
                SlotRecord(
                    station_id=sid,
                    slot_index=runtime.slot_index - 1,
                    interval=timebase.interval_public(record_interval),
                    action=record_action,
                    feedback=feedback,
                    queue_size_after=len(runtime.queue),
                    carried_packet_id=carried.packet_id if carried else None,
                    delivered=delivered,
                )
            )

        self.events_processed += 1
        if (
            not self.keep_channel_history
            and self.events_processed % _PRUNE_EVERY == 0
        ):
            low_water = min(rt.slot_start for rt in self.stations.values())
            self.channel._prune_internal(low_water)

    # ------------------------------------------------------------------
    # Run loops
    # ------------------------------------------------------------------

    def run(
        self,
        until_time: Optional[TimeLike] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[["Simulator"], bool]] = None,
    ) -> "Simulator":
        """Advance the simulation until a stopping condition triggers.

        ``until_time`` stops once the next event would exceed the given
        time (so all slots *ending* by that time are processed).
        ``max_events`` bounds the number of slot-end events.
        ``stop_when`` is evaluated after every processed event (so it
        forces the per-object loop: on a batch-engine simulator an
        ``"auto"``-resolved run silently falls back, a forced
        ``engine="batch"`` run raises).
        Returns ``self`` for chaining.
        """
        if until_time is None and max_events is None and stop_when is None:
            raise ConfigurationError(
                "run() needs at least one stopping condition"
            )
        if (
            stop_when is not None
            and self._engine == "batch"
            and self._engine_requested == "batch"
        ):
            raise ConfigurationError(
                "stop_when is evaluated per event and requires the object "
                "engine; construct the Simulator with engine='auto' or "
                "engine='object'"
            )
        limit_time = as_time(until_time) if until_time is not None else None
        limit_internal = (
            self._timebase.floor_internal(limit_time)
            if limit_time is not None
            else None
        )
        if not self._started:
            self._start()
            if stop_when is not None and stop_when(self):
                return self
        if self._engine == "batch" and stop_when is None:
            self._batch_run(
                limit_internal, limit_time, max_events, check_success=False
            )
            return self
        while True:
            if max_events is not None and self.events_processed >= max_events:
                return self
            if not self._event_heap:
                raise SimulationError("event heap empty — stations always reschedule")
            if limit_internal is not None and self._event_heap[0][0] > limit_internal:
                # For integer ticks e and rational limit L, e > floor(L*D)
                # iff e/D > L, so the stopping test is exact even when the
                # limit itself is off the lattice.
                self._now_internal = limit_internal
                self._now_exact = limit_time
                return self
            self._process_event()
            if stop_when is not None and stop_when(self):
                return self

    def run_until_success(
        self, max_events: int = 10_000_000
    ) -> Optional[Time]:
        """Run until the first successful transmission ends; return that time.

        The workhorse of SST experiments.  Returns ``None`` if
        ``max_events`` elapsed with no success (the SST algorithm failed
        or the adversary prevented progress for that long).  The stop
        check uses the channel's incremental finalized-success tracker,
        so the per-event cost is O(log history) rather than a scan of
        the whole transmission list.
        """
        channel = self.channel
        channel.start_success_tracking()

        if self._engine == "batch":
            if not self._started:
                self._start()
            self._batch_run(None, None, max_events, check_success=True)
        else:

            def succeeded(sim: "Simulator") -> bool:
                return channel.finalized_successes(sim._now_internal) > 0

            self.run(max_events=max_events, stop_when=succeeded)
        if channel.finalized_successes(self._now_internal) == 0:
            return None
        return channel.first_finalized_success_end

    def _batch_run(
        self, limit_internal, limit_time, max_events, check_success: bool
    ) -> None:
        """Hand the run to the vectorized kernel (see repro.core.batch).

        The kernel snapshots canonical state into arrays on entry and
        writes it back on exit, so object-engine steps may freely
        interleave with kernel runs on the same simulator.
        """
        kernel = self._batch_kernel
        if kernel is None:
            from .batch import BatchKernel

            kernel = self._batch_kernel = BatchKernel(self)
        kernel.run(limit_internal, limit_time, max_events, check_success)

    def slots_elapsed(self, station_id: int) -> int:
        """Completed slots of one station (the paper's cost measure for SST)."""
        return self.stations[station_id].slots_elapsed

    def max_slots_elapsed(self) -> int:
        """Maximum completed-slot count over stations (Theorem 1's measure)."""
        return max(rt.slots_elapsed for rt in self.stations.values())
