"""Channel feedback values delivered to a station at each slot end.

The model (Section II of the paper) gives every station three-valued
feedback at the end of each of **its own** slots:

* :data:`Feedback.ACK` — a *successful* transmission ended inside the
  slot.  Both the transmitter and every listener receive this.
* :data:`Feedback.SILENCE` — no transmission (successful or not)
  overlapped the slot at all.
* :data:`Feedback.BUSY` — at least one transmission overlapped the slot
  but no successful transmission ended in it.  The station cannot tell
  whether the activity was a single transmission, a collision, or how
  much of the slot it covered (footnote 7: this is *channel sensing*,
  strictly weaker than collision detection).

This is the **entire** information interface between the channel and an
algorithm; station algorithms in this library receive nothing else.
"""

from __future__ import annotations

import enum


class Feedback(enum.Enum):
    """Three-valued channel feedback (ack / silence / busy)."""

    SILENCE = "silence"
    BUSY = "busy"
    ACK = "ack"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_activity(self) -> bool:
        """True for BUSY or ACK — i.e., the channel was not silent.

        Several automata in the paper branch only on "did I hear
        anything" (e.g., AO-ARRoW's long-silence counter resets on any
        activity), so this predicate is provided once here.
        """
        return self is not Feedback.SILENCE
