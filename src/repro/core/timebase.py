"""Exact rational time for the partially asynchronous channel.

The paper's constructions are *exact-arithmetic* constructions:

* The mirror-execution lower bound (Theorem 2) aligns blocks of slots so
  that their start times coincide **exactly** across stations.
* The collision-forcing adversary (Theorem 4) chooses slot lengths
  ``X, Y`` in ``[1, R]`` satisfying ``(S + alpha) * X == (S + beta) * Y``
  so that two transmissions start at the **same** instant.

Floating point cannot express either construction reliably, so every
timestamp, duration and slot length in this library is a
:class:`fractions.Fraction`.  This module centralises conversion helpers
and the half-open :class:`Interval` type used for slots and transmissions.

Exactness does not require paying rational arithmetic on the hot path,
though.  Almost every scenario draws its slot lengths and arrival
instants from a small common denominator ``D`` — all times are lattice
points ``k / D``.  :class:`TickLattice` exploits that: the simulator can
represent every internal time as the plain ``int`` ``k`` (ticks), so
heap keys, interval overlap tests and slot-length checks all run on
machine integers, and values are converted back to canonical
:class:`~fractions.Fraction` objects only at the observation boundary
(traces, probes, public accessors).  Because the conversion is exact in
both directions, results are bit-for-bit identical to the
:class:`FractionTimebase` path.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Union

from .errors import ConfigurationError

#: The time type used throughout the library.  Always an exact rational.
Time = Fraction

#: Values accepted wherever a time or duration is expected.
TimeLike = Union[int, str, float, Fraction]

ZERO = Fraction(0)
ONE = Fraction(1)


def as_time(value: TimeLike) -> Fraction:
    """Convert ``value`` to an exact :class:`~fractions.Fraction` time.

    Integers, strings (``"3/2"``) and Fractions convert exactly.  Floats
    are converted through their ``repr`` so that ``as_time(1.5)`` yields
    ``3/2`` (the decimal the caller wrote) rather than the binary float's
    enormous exact expansion.

    >>> as_time(2)
    Fraction(2, 1)
    >>> as_time("7/4")
    Fraction(7, 4)
    >>> as_time(1.5)
    Fraction(3, 2)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject it early
        raise ConfigurationError(f"cannot interpret {value!r} as a time")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(repr(value))
    raise ConfigurationError(f"cannot interpret {value!r} as a time")


def check_slot_length(length: TimeLike, max_length: TimeLike) -> Fraction:
    """Validate an adversary-chosen slot length against the model.

    The model of Section II requires every slot length to lie in
    ``[1, R]``.  Returns the exact length, or raises
    :class:`ConfigurationError` if the adversary stepped outside its
    power.
    """
    exact = as_time(length)
    upper = as_time(max_length)
    if not ONE <= exact <= upper:
        raise ConfigurationError(
            f"slot length {exact} outside the legal range [1, {upper}]"
        )
    return exact


class Interval:
    """A half-open time interval ``[start, end)``.

    Slots and transmissions are both intervals.  The half-open convention
    means two back-to-back slots share a boundary point without
    overlapping, matching footnote 5 of the paper (the base station's
    time is continuous and only genuine overlap destroys a transmission).

    A hand-written ``__slots__`` class rather than a dataclass: one is
    built per slot on the event loop's hot path, and the dataclass
    ``__init__``/``__post_init__``/frozen-``__setattr__`` chain costs
    several function calls per construction.  Endpoints are exact
    Fractions in public time and plain ints under a tick lattice.
    """

    __slots__ = ("start", "end")

    def __init__(self, start, end) -> None:
        if end <= start:
            raise ConfigurationError(
                f"interval end {end} must exceed start {start}"
            )
        self.start = start
        self.end = end

    def __eq__(self, other) -> bool:
        if isinstance(other, Interval):
            return self.start == other.start and self.end == other.end
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval(start={self.start!r}, end={self.end!r})"

    @property
    def duration(self) -> Fraction:
        """Length of the interval."""
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two half-open intervals share interior points.

        Touching endpoints (``self.end == other.start``) do **not**
        overlap: a transmission ending exactly when another begins leaves
        both successful.
        """
        return self.start < other.end and other.start < self.end

    def contains_time(self, moment: Fraction) -> bool:
        """True when ``moment`` lies in ``[start, end)``."""
        return self.start <= moment < self.end

    def ends_within(self, other: "Interval") -> bool:
        """True when this interval's end lies in ``(other.start, other.end]``.

        This is the paper's "a transmission *ended in* the slot"
        predicate used to decide acknowledgment feedback: a transmission
        finishing exactly at the slot boundary is credited to the slot
        that just closed.
        """
        return other.start < self.end <= other.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"


def make_interval(start: TimeLike, end: TimeLike) -> Interval:
    """Build an :class:`Interval` from any time-like endpoints."""
    return Interval(as_time(start), as_time(end))


# ----------------------------------------------------------------------
# Timebase adapters: how the simulator represents time *internally*
# ----------------------------------------------------------------------

#: Largest per-run lattice denominator the auto-detector will accept.
#: Beyond this the tick integers get large enough that the speed
#: advantage erodes, so detection falls back to the Fraction path.
MAX_LATTICE_DENOMINATOR = 1_000_000


class OffLatticeError(ConfigurationError):
    """A time value does not lie on the declared ``1/D`` tick lattice."""


class FractionTimebase:
    """Identity adapter: internal times *are* public Fractions.

    This is the always-correct default.  Every conversion is the
    identity (modulo :func:`as_time` normalisation), so code written
    against the adapter protocol behaves exactly like the historical
    all-Fraction simulator.
    """

    is_lattice = False
    denominator: Optional[int] = None
    zero = ZERO

    def describe(self) -> str:
        return "fraction"

    def to_internal(self, value: TimeLike) -> Fraction:
        """Public time -> internal time (identity)."""
        return as_time(value)

    def floor_internal(self, value: TimeLike) -> Fraction:
        """Largest internal time ``<=`` the given public time (identity)."""
        return as_time(value)

    def ceil_internal(self, value: TimeLike) -> Fraction:
        """Smallest internal time ``>=`` the given public time (identity)."""
        return as_time(value)

    def to_public(self, value: Fraction) -> Fraction:
        """Internal time -> public exact Fraction (identity)."""
        return value

    def interval_public(self, interval: Interval) -> Interval:
        """Internal-unit interval -> public-unit interval (identity)."""
        return interval

    def check_slot_length(self, length: TimeLike, max_internal: Fraction) -> Fraction:
        """Validate an adversary-chosen slot length; returns internal units."""
        return check_slot_length(length, max_internal)


#: Shared identity adapter (stateless, safe to reuse across simulators).
FRACTION_TIMEBASE = FractionTimebase()


class TickLattice:
    """Scaled-integer timebase: internal time ``k`` means ``k / D``.

    All internal arithmetic (heap keys, interval endpoints, durations)
    runs on plain Python ints.  Conversions are exact in both
    directions: :meth:`to_internal` *refuses* values off the lattice
    (raising :class:`OffLatticeError`) instead of rounding, and
    :meth:`to_public` returns the canonical ``Fraction(k, D)``.

    :meth:`floor_internal` maps an *arbitrary* rational ``t`` to
    ``floor(t * D)``.  For the half-open comparisons the engine makes
    against internal times this is exact: an internal instant ``e``
    (integer ticks) satisfies ``e/D <= t`` iff ``e <= floor(t * D)``,
    and ``e/D > t`` iff ``e > floor(t * D)``.
    """

    is_lattice = True
    zero = 0

    __slots__ = ("denominator", "_memo_ticks", "_memo_time", "_length_memo")

    def __init__(self, denominator: int) -> None:
        if (
            not isinstance(denominator, int)
            or isinstance(denominator, bool)
            or denominator < 1
        ):
            raise ConfigurationError(
                f"lattice denominator must be a positive int, got {denominator!r}"
            )
        self.denominator = denominator
        # One-entry conversion memo: boundary code often converts the
        # same instant several times in a row (trace + probes + packet).
        self._memo_ticks: Optional[int] = None
        self._memo_time = ZERO
        # Slot lengths repeat from tiny per-adversary sets; cache their
        # tick conversion (Fraction keys only — exact hash semantics).
        self._length_memo: dict = {}

    def describe(self) -> str:
        return f"lattice(1/{self.denominator})"

    def to_internal(self, value: TimeLike) -> int:
        """Public time -> integer ticks; exact or :class:`OffLatticeError`."""
        exact = as_time(value)
        ticks, remainder = divmod(exact.numerator * self.denominator, exact.denominator)
        if remainder:
            raise OffLatticeError(
                f"time {exact} is not a multiple of 1/{self.denominator}"
            )
        return ticks

    def floor_internal(self, value: TimeLike) -> int:
        """``floor(value * D)`` — the largest tick instant ``<= value``."""
        exact = as_time(value)
        return (exact.numerator * self.denominator) // exact.denominator

    def ceil_internal(self, value: TimeLike) -> int:
        """``ceil(value * D)`` — the smallest tick instant ``>= value``."""
        exact = as_time(value)
        return -((-exact.numerator * self.denominator) // exact.denominator)

    def to_public(self, value: int) -> Fraction:
        """Integer ticks -> canonical exact Fraction ``value / D``."""
        if value == self._memo_ticks:
            return self._memo_time
        result = Fraction(value, self.denominator)
        self._memo_ticks = value
        self._memo_time = result
        return result

    def interval_public(self, interval: Interval) -> Interval:
        """Tick-unit interval -> public Fraction-unit interval."""
        return Interval(
            Fraction(interval.start, self.denominator),
            Fraction(interval.end, self.denominator),
        )

    def check_slot_length(self, length: TimeLike, max_internal: int) -> int:
        """Validate an adversary-chosen slot length; returns integer ticks.

        Mirrors :func:`check_slot_length` (same error message, with
        public values) but runs on integers.  A length off the lattice
        raises :class:`OffLatticeError` — the caller decides whether
        that is a declaration bug or grounds for a Fraction fallback.
        """
        if type(length) is int:
            ticks = length * self.denominator
        elif type(length) is Fraction:
            ticks = self._length_memo.get(length)
            if ticks is None:
                ticks, remainder = divmod(
                    length.numerator * self.denominator, length.denominator
                )
                if remainder:
                    raise OffLatticeError(
                        f"slot length {length} is off the "
                        f"1/{self.denominator} time lattice"
                    )
                self._length_memo[length] = ticks
        else:
            exact = as_time(length)
            ticks, remainder = divmod(
                exact.numerator * self.denominator, exact.denominator
            )
            if remainder:
                raise OffLatticeError(
                    f"slot length {exact} is off the 1/{self.denominator} time lattice"
                )
        if not self.denominator <= ticks <= max_internal:
            raise ConfigurationError(
                f"slot length {self.to_public(ticks)} outside the legal range "
                f"[1, {self.to_public(max_internal)}]"
            )
        return ticks


#: Either adapter; the simulator stores one per run.
Timebase = Union[FractionTimebase, TickLattice]


def declared_lattice_denominator(component) -> Optional[int]:
    """Query a component's time-lattice declaration (duck-typed).

    Slot adversaries and arrival sources opt into the fast timebase by
    exposing ``lattice_denominator() -> Optional[int]``: "every time
    value I produce is a multiple of ``1/D``".  Components without the
    method — or returning ``None`` — make the run fall back to the
    Fraction path.  Returns the declared ``D`` or ``None``.
    """
    probe = getattr(component, "lattice_denominator", None)
    if probe is None:
        return None
    declared = probe() if callable(probe) else probe
    if declared is None:
        return None
    if not isinstance(declared, int) or isinstance(declared, bool) or declared < 1:
        raise ConfigurationError(
            f"{type(component).__name__}.lattice_denominator() must return a "
            f"positive int or None, got {declared!r}"
        )
    return declared
