"""Exact rational time for the partially asynchronous channel.

The paper's constructions are *exact-arithmetic* constructions:

* The mirror-execution lower bound (Theorem 2) aligns blocks of slots so
  that their start times coincide **exactly** across stations.
* The collision-forcing adversary (Theorem 4) chooses slot lengths
  ``X, Y`` in ``[1, R]`` satisfying ``(S + alpha) * X == (S + beta) * Y``
  so that two transmissions start at the **same** instant.

Floating point cannot express either construction reliably, so every
timestamp, duration and slot length in this library is a
:class:`fractions.Fraction`.  This module centralises conversion helpers
and the half-open :class:`Interval` type used for slots and transmissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from .errors import ConfigurationError

#: The time type used throughout the library.  Always an exact rational.
Time = Fraction

#: Values accepted wherever a time or duration is expected.
TimeLike = Union[int, str, float, Fraction]

ZERO = Fraction(0)
ONE = Fraction(1)


def as_time(value: TimeLike) -> Fraction:
    """Convert ``value`` to an exact :class:`~fractions.Fraction` time.

    Integers, strings (``"3/2"``) and Fractions convert exactly.  Floats
    are converted through their ``repr`` so that ``as_time(1.5)`` yields
    ``3/2`` (the decimal the caller wrote) rather than the binary float's
    enormous exact expansion.

    >>> as_time(2)
    Fraction(2, 1)
    >>> as_time("7/4")
    Fraction(7, 4)
    >>> as_time(1.5)
    Fraction(3, 2)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject it early
        raise ConfigurationError(f"cannot interpret {value!r} as a time")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(repr(value))
    raise ConfigurationError(f"cannot interpret {value!r} as a time")


def check_slot_length(length: TimeLike, max_length: TimeLike) -> Fraction:
    """Validate an adversary-chosen slot length against the model.

    The model of Section II requires every slot length to lie in
    ``[1, R]``.  Returns the exact length, or raises
    :class:`ConfigurationError` if the adversary stepped outside its
    power.
    """
    exact = as_time(length)
    upper = as_time(max_length)
    if not ONE <= exact <= upper:
        raise ConfigurationError(
            f"slot length {exact} outside the legal range [1, {upper}]"
        )
    return exact


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open time interval ``[start, end)``.

    Slots and transmissions are both intervals.  The half-open convention
    means two back-to-back slots share a boundary point without
    overlapping, matching footnote 5 of the paper (the base station's
    time is continuous and only genuine overlap destroys a transmission).
    """

    start: Fraction
    end: Fraction

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"interval end {self.end} must exceed start {self.start}"
            )

    @property
    def duration(self) -> Fraction:
        """Length of the interval."""
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two half-open intervals share interior points.

        Touching endpoints (``self.end == other.start``) do **not**
        overlap: a transmission ending exactly when another begins leaves
        both successful.
        """
        return self.start < other.end and other.start < self.end

    def contains_time(self, moment: Fraction) -> bool:
        """True when ``moment`` lies in ``[start, end)``."""
        return self.start <= moment < self.end

    def ends_within(self, other: "Interval") -> bool:
        """True when this interval's end lies in ``(other.start, other.end]``.

        This is the paper's "a transmission *ended in* the slot"
        predicate used to decide acknowledgment feedback: a transmission
        finishing exactly at the slot boundary is credited to the slot
        that just closed.
        """
        return other.start < self.end <= other.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"


def make_interval(start: TimeLike, end: TimeLike) -> Interval:
    """Build an :class:`Interval` from any time-like endpoints."""
    return Interval(as_time(start), as_time(end))
