"""Exception hierarchy for the asyncmac reproduction.

All library-raised exceptions derive from :class:`AsyncMacError` so callers
can catch every library failure with a single ``except`` clause while still
being able to distinguish model violations (bugs in a station algorithm)
from configuration mistakes (bad adversary parameters).
"""

from __future__ import annotations


class AsyncMacError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(AsyncMacError):
    """A simulation, adversary or workload was built with invalid parameters.

    Examples: a slot length outside ``[1, R]``, a negative injection rate,
    or two stations sharing an ID.
    """


class ProtocolError(AsyncMacError):
    """A station algorithm violated the channel model.

    Raised, for instance, when an algorithm that is not allowed to send
    control messages asks to transmit while its packet queue is empty, or
    when an automaton returns an action from a terminated state.
    """


class SimulationError(AsyncMacError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the simulator itself (or memory
    corruption of its event queue), never a property of the simulated
    algorithms, and is therefore worth reporting upstream.
    """


class AdmissibilityError(AsyncMacError):
    """A packet arrival pattern exceeded its leaky-bucket budget.

    Raised by the admissibility checker when the total *cost* of packets
    injected inside some time window ``[t1, t2)`` exceeds
    ``rho * (t2 - t1) + b`` (Definition 1 of the paper).
    """
