"""Vectorized whole-fleet kernel — the ``engine="batch"`` fast path.

The per-object event loop in :mod:`repro.core.simulator` costs a few
microseconds of Python per slot per station; at n = 10^4..10^6 stations
that Python overhead dominates the run.  This module provides an
alternative *inner loop* over the very same canonical state: all slots
ending at one lattice tick are processed as a single NumPy batch.

Design contract (the parity-oracle contract, see docs/vectorization.md):

* The kernel mutates only the simulator's canonical objects — the real
  :class:`~repro.core.channel.Channel`, the real
  :class:`~repro.core.packet.PacketQueue` per station, the real
  :class:`~repro.core.trace.Trace` — through the same calls, in the
  same order, as the object path.  Whole-fleet per-slot state (queue
  depths, automaton phase, slot boundaries) is mirrored into NumPy
  arrays on entry (:meth:`_BatchKernel._load`) and written back on exit
  (:meth:`_BatchKernel._store`), so object- and batch-engine ``run()``
  calls can be freely interleaved on one simulator.
* Results are **bit-identical** to the object engine.  The enabling
  observation is same-tick causality: a transmission starting at tick
  ``t`` can never affect the feedback of a slot ending at ``t``
  (overlap requires ``start < end``; an acknowledgment requires the
  success to end at or before ``t``, and every stored record ends
  strictly after it starts).  Hence the feedback of every slot ending
  at ``t`` is computable up front, and processing the tick's stations
  in ascending-id order reproduces the event order exactly — any
  *prefix* of that order is also event-order exact, which is how
  ``max_events`` and ``run_until_success`` stop mid-tick losslessly.
* RNG-bearing components (:class:`~repro.algorithms.aloha.SlottedAloha`
  per-station generators, :class:`~repro.timing.adversary.RandomUniform`)
  keep their canonical ``random.Random`` objects; draws happen as
  scalar calls in exactly the object path's order.

Eligibility is decided once, at ``Simulator`` construction, by
:func:`batch_blocker`: a run is batch-eligible when it is on the integer
tick lattice, has no per-event observers (probe bus, profiler, per-slot
trace records), its slot adversary and its homogeneous station
algorithm class both have registered vector programs below, and its
arrival source (if any) exposes the exact ``next_arrival_hint``
protocol.  Anything else demotes to the object path with a named
reason, mirroring how ``timebase="auto"`` demotes off-lattice runs.

One knowingly-accepted divergence: schedule programs validate their
declared slot-length tables at kernel entry, so a malformed length deep
in a :class:`~repro.timing.adversary.TableDriven` table raises at run
start rather than at the offending slot.  The exception type and
message are the canonical ones; only the amount of work done before
raising differs, and error paths are outside the parity contract.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    np = None

from .errors import ConfigurationError, ProtocolError, SimulationError
from .station import (
    LISTEN,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
    AlwaysListen,
    AlwaysTransmit,
)
from .timebase import Interval, as_time
from .simulator import _PRUNE_EVERY

#: Action codes used inside the kernel (``int8``).
_A_LISTEN, _A_TX_PKT, _A_TX_CTRL = 0, 1, 2
_ACTIONS = (LISTEN, TRANSMIT_PACKET, TRANSMIT_CONTROL)

#: Feedback codes used inside the kernel (``int8``).
_F_SILENCE, _F_BUSY, _F_ACK = 0, 1, 2

#: Station-algorithm class -> AlgorithmProgram subclass.  Dispatch is by
#: *exact* type: a subclass may override anything, so it must register
#: its own program (or demote to the object path).
BATCH_ALGORITHMS: Dict[type, type] = {}

#: Slot-adversary class -> ScheduleProgram subclass (exact type, ditto).
BATCH_SCHEDULES: Dict[type, type] = {}


def vectorizes(algorithm_cls: type):
    """Class decorator registering a vector program for one algorithm class."""

    def register(program_cls: type) -> type:
        BATCH_ALGORITHMS[algorithm_cls] = program_cls
        return program_cls

    return register


def schedules(adversary_cls: type):
    """Class decorator registering a vector program for one slot adversary."""

    def register(program_cls: type) -> type:
        BATCH_SCHEDULES[adversary_cls] = program_cls
        return program_cls

    return register


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------


def batch_blocker(sim) -> Optional[str]:
    """Why this simulator cannot run on the batch engine, or ``None``.

    Called once at ``Simulator`` construction; the returned reason is
    surfaced through ``Simulator.engine_detail`` (and raised verbatim
    when ``engine="batch"`` was forced).
    """
    if np is None:
        return "NumPy is not available"
    if not sim.timebase.is_lattice:
        detail = getattr(sim, "_timebase_detail", None)
        if detail:
            return f"the run is on the exact Fraction timebase ({detail})"
        return "the run is on the exact Fraction timebase"
    if sim.probes is not None:
        return "a ProbeBus is attached (per-event probes are object-path only)"
    if sim.profiler is not None:
        return "a PhaseProfiler is attached (per-phase timing is object-path only)"
    if sim.trace.record_slots:
        return "per-slot trace recording (record_slots) is object-path only"
    adversary_cls = type(sim.slot_adversary)
    if adversary_cls not in BATCH_SCHEDULES:
        return (
            f"slot adversary {adversary_cls.__name__} has no vectorized "
            "schedule program"
        )
    algorithm_classes = {type(rt.algorithm) for rt in sim.stations.values()}
    if len(algorithm_classes) > 1:
        names = ", ".join(sorted(cls.__name__ for cls in algorithm_classes))
        return f"mixed station algorithm classes ({names}) are object-path only"
    algorithm_cls = next(iter(algorithm_classes))
    program_cls = BATCH_ALGORITHMS.get(algorithm_cls)
    if program_cls is None:
        return (
            f"station algorithm {algorithm_cls.__name__} has no vectorized "
            "program"
        )
    fleet = [sim.stations[sid].algorithm for sid in sim.station_ids]
    reason = program_cls.check(fleet)
    if reason is not None:
        return reason
    source = sim.arrival_source
    if source is not None and getattr(source, "next_arrival_hint", None) is None:
        return (
            f"arrival source {type(source).__name__} exposes no "
            "next_arrival_hint (adaptive sources are object-path only)"
        )
    return None


def _promoted_program_cls(sim) -> type:
    """The algorithm program class a batch-eligible ``sim`` resolved to."""
    algorithm = sim.stations[next(iter(sim.station_ids))].algorithm
    return BATCH_ALGORITHMS[type(algorithm)]


def promotion_detail(sim) -> str:
    """Which vector programs a batch-eligible run matched.

    Surfaced through ``Simulator.engine_detail`` on promotion (the
    demotion counterpart is :func:`batch_blocker`'s reason) and printed
    by ``repro run --verbose-engine``.
    """
    algorithm = sim.stations[next(iter(sim.station_ids))].algorithm
    program_cls = BATCH_ALGORITHMS[type(algorithm)]
    schedule_cls = BATCH_SCHEDULES[type(sim.slot_adversary)]
    flavor = (
        "adaptive masked-update" if program_cls.adaptive else "non-adaptive"
    )
    return (
        f"promoted: {type(algorithm).__name__} -> {program_cls.__name__} "
        f"({flavor}), {type(sim.slot_adversary).__name__} -> "
        f"{schedule_cls.__name__}"
    )


def engine_family(sim) -> str:
    """``batch(adaptive)`` or ``batch(nonadaptive)`` for an eligible run."""
    if _promoted_program_cls(sim).adaptive:
        return "batch(adaptive)"
    return "batch(nonadaptive)"


# ----------------------------------------------------------------------
# Program base classes
# ----------------------------------------------------------------------


class AlgorithmProgram:
    """Vector mirror of one :class:`StationAlgorithm` class across the fleet.

    Lifecycle per kernel entry: :meth:`load` snapshots every canonical
    algorithm object's state into arrays, :meth:`step` advances the
    members of each tick batch, :meth:`store` writes the state back so
    the canonical objects are again the single source of truth.

    ``step`` receives the batch members as fleet indices ``m`` (sorted
    ascending — equal to ascending station-id order), their feedback
    codes, their *post-delivery* queue lengths and the slot index the
    object path would hand to ``on_slot_end`` via ``SlotContext``; it
    returns one action code per member.
    """

    #: Whether this program models an adaptive per-event automaton via
    #: masked sub-steps (see :mod:`repro.core.batch_adaptive`) rather
    #: than a single non-adaptive decision function.  Surfaced through
    #: ``Simulator.engine_described`` as ``batch(adaptive)`` vs
    #: ``batch(nonadaptive)``.
    adaptive = False

    def __init__(self, kernel: "_BatchKernel") -> None:
        self.kernel = kernel
        self.algos = kernel.algos

    @classmethod
    def check(cls, fleet: Sequence[object]) -> Optional[str]:
        """Extra per-class eligibility hook; a reason string demotes."""
        return None

    def load(self) -> None:
        raise NotImplementedError

    def step(self, m, fb, q, new_index):
        raise NotImplementedError

    def store(self) -> None:
        raise NotImplementedError


class ScheduleProgram:
    """Vector mirror of one :class:`SlotAdversary` class.

    ``lengths`` returns integer tick lengths for the batch members'
    *next* slots; every value a program can produce is validated against
    ``[1, R]`` (with the canonical error) in :meth:`load`, so the hot
    path needs no per-slot checks.
    """

    def __init__(self, kernel: "_BatchKernel", adversary) -> None:
        self.kernel = kernel
        self.adversary = adversary

    def _ticks(self, public_length) -> int:
        """Convert one declared public length to validated ticks."""
        return int(
            self.kernel.tb.check_slot_length(public_length, self.kernel.max_dur)
        )

    def load(self) -> None:
        raise NotImplementedError

    def lengths(self, m, new_index):
        raise NotImplementedError


# ----------------------------------------------------------------------
# Algorithm programs
# ----------------------------------------------------------------------


@vectorizes(AlwaysListen)
class AlwaysListenProgram(AlgorithmProgram):
    def load(self) -> None:
        pass

    def step(self, m, fb, q, new_index):
        return np.zeros(len(m), dtype=np.int8)

    def store(self) -> None:
        pass


@vectorizes(AlwaysTransmit)
class AlwaysTransmitProgram(AlgorithmProgram):
    def load(self) -> None:
        pass

    def step(self, m, fb, q, new_index):
        return np.where(q > 0, _A_TX_PKT, _A_TX_CTRL).astype(np.int8)

    def store(self) -> None:
        pass


class SlottedAlohaProgram(AlgorithmProgram):
    """Stats and the was-transmitting flag vectorize; the per-station
    Bernoulli draws stay scalar calls on each station's own
    ``random.Random`` (drawn only when the queue is non-empty, exactly
    as ``SlottedAloha._decide`` does), so RNG streams remain canonical.
    """

    def load(self) -> None:
        algos = self.algos
        self.was = np.array([a._was_transmitting for a in algos], dtype=bool)
        self.attempts = np.array(
            [a.stats.attempts for a in algos], dtype=np.int64
        )
        self.deliveries = np.array(
            [a.stats.deliveries for a in algos], dtype=np.int64
        )

    def step(self, m, fb, q, new_index):
        self.deliveries[m] += self.was[m] & (fb == _F_ACK)
        acts = np.zeros(len(m), dtype=np.int8)
        transmitting = np.zeros(len(m), dtype=bool)
        algos = self.algos
        for j in np.nonzero(q > 0)[0]:
            algo = algos[int(m[j])]
            if algo._rng.random() < algo.transmit_probability:
                acts[j] = _A_TX_PKT
                transmitting[j] = True
        self.attempts[m] += transmitting
        self.was[m] = transmitting
        return acts

    def store(self) -> None:
        for i, algo in enumerate(self.algos):
            algo._was_transmitting = bool(self.was[i])
            algo.stats.attempts = int(self.attempts[i])
            algo.stats.deliveries = int(self.deliveries[i])


class NaiveTDMAProgram(AlgorithmProgram):
    def load(self) -> None:
        self.n = np.array([a.n_stations for a in self.algos], dtype=np.int64)

    def step(self, m, fb, q, new_index):
        mine = new_index % self.n[m] == self.kernel.sids[m] - 1
        return np.where(mine & (q > 0), _A_TX_PKT, _A_LISTEN).astype(np.int8)

    def store(self) -> None:
        pass


class RRWProgram(AlgorithmProgram):
    def load(self) -> None:
        algos = self.algos
        self.turn = np.array([a.turn for a in algos], dtype=np.int64)
        self.transmitting = np.array(
            [a.transmitting for a in algos], dtype=bool
        )
        self.n = np.array([a.n_stations for a in algos], dtype=np.int64)
        self.turns_taken = np.array(
            [a.stats.turns_taken for a in algos], dtype=np.int64
        )
        self.packets_sent = np.array(
            [a.stats.packets_sent for a in algos], dtype=np.int64
        )
        self.retries = np.array([a.stats.retries for a in algos], dtype=np.int64)

    def step(self, m, fb, q, new_index):
        holding = self.transmitting[m]
        silent = fb == _F_SILENCE
        acked = fb == _F_ACK
        if bool(np.any(holding & silent)):
            raise ProtocolError(
                "silence feedback on a transmitting slot — broken channel model"
            )
        burst_more = holding & acked & (q > 0)
        retry = holding & (fb == _F_BUSY)
        self.packets_sent[m] += holding & acked
        self.retries[m] += retry

        idle = ~holding
        turn = self.turn[m]
        turn = np.where(idle & silent, turn % self.n[m] + 1, turn)
        # _holder_action for idle stations only: a holder finishing its
        # burst (ack, empty queue) listens without re-checking the turn.
        take = idle & (turn == self.kernel.sids[m]) & (q > 0)
        self.turns_taken[m] += take

        transmitting = burst_more | retry | take
        self.turn[m] = turn
        self.transmitting[m] = transmitting
        return np.where(transmitting, _A_TX_PKT, _A_LISTEN).astype(np.int8)

    def store(self) -> None:
        for i, algo in enumerate(self.algos):
            algo.turn = int(self.turn[i])
            algo.transmitting = bool(self.transmitting[i])
            algo.stats.turns_taken = int(self.turns_taken[i])
            algo.stats.packets_sent = int(self.packets_sent[i])
            algo.stats.retries = int(self.retries[i])


_MBTF_STATES = ("wait", "transmit_pending", "transmit")


class MBTFLikeProgram(AlgorithmProgram):
    def load(self) -> None:
        algos = self.algos
        index = {name: code for code, name in enumerate(_MBTF_STATES)}
        self.state = np.array([index[a.state] for a in algos], dtype=np.int8)
        self.turn = np.array([a.turn for a in algos], dtype=np.int64)
        self.heard = np.array([a.heard_activity for a in algos], dtype=bool)
        self.noise = np.array([a._noise_turn for a in algos], dtype=bool)
        self.n = np.array([a.n_stations for a in algos], dtype=np.int64)
        self.turns_taken = np.array(
            [a.stats.turns_taken for a in algos], dtype=np.int64
        )
        self.packets_sent = np.array(
            [a.stats.packets_sent for a in algos], dtype=np.int64
        )
        self.empty_signals = np.array(
            [a.stats.empty_signals_sent for a in algos], dtype=np.int64
        )
        self.retries = np.array([a.stats.retries for a in algos], dtype=np.int64)

    def step(self, m, fb, q, new_index):
        state = self.state[m]
        heard = self.heard[m]
        noise = self.noise[m]
        turn = self.turn[m]
        silent = fb == _F_SILENCE
        busy = fb == _F_BUSY
        acked = fb == _F_ACK

        transmit = state == 2
        if bool(np.any(transmit & silent)):
            raise ProtocolError(
                "silence feedback on a transmitting slot — broken channel model"
            )
        acts = np.zeros(len(m), dtype=np.int8)

        retry = transmit & busy
        self.retries[m] += retry
        acts[retry] = np.where(noise[retry], _A_TX_CTRL, _A_TX_PKT)

        done = transmit & acked
        self.empty_signals[m] += done & noise
        self.packets_sent[m] += done & ~noise
        burst_more = done & ~noise & (q > 0)
        acts[burst_more] = _A_TX_PKT
        finish = done & ~burst_more  # fall silent; own burst counts as activity

        pending = state == 1  # transmit_pending: begin regardless of feedback
        self.turns_taken[m] += pending
        begin_pkt = pending & (q > 0)
        begin_ctrl = pending & (q == 0)
        acts[begin_pkt] = _A_TX_PKT
        acts[begin_ctrl] = _A_TX_CTRL

        waiting = state == 0
        hear = waiting & (busy | acked)
        advance = waiting & silent & heard

        new_state = state.copy()
        new_heard = heard.copy()
        new_noise = noise.copy()
        new_turn = turn.copy()
        new_state[finish] = 0
        new_heard[finish] = True
        new_state[pending] = 2
        new_noise[begin_pkt] = False
        new_noise[begin_ctrl] = True
        new_heard[hear] = True
        new_turn[advance] = turn[advance] % self.n[m][advance] + 1
        new_heard[advance] = False
        my_turn = advance & (new_turn == self.kernel.sids[m])
        new_state[my_turn] = 1

        self.state[m] = new_state
        self.heard[m] = new_heard
        self.noise[m] = new_noise
        self.turn[m] = new_turn
        return acts

    def store(self) -> None:
        for i, algo in enumerate(self.algos):
            algo.state = _MBTF_STATES[int(self.state[i])]
            algo.turn = int(self.turn[i])
            algo.heard_activity = bool(self.heard[i])
            algo._noise_turn = bool(self.noise[i])
            algo.stats.turns_taken = int(self.turns_taken[i])
            algo.stats.packets_sent = int(self.packets_sent[i])
            algo.stats.empty_signals_sent = int(self.empty_signals[i])
            algo.stats.retries = int(self.retries[i])


_KSEL_STATES = ("election", "observe", "finished")
_ABS_STATES = ("wait_silence", "listen_threshold", "transmitted")


class KSelectionProgram(AlgorithmProgram):
    """k-selection: the outer observe/re-enter machine and the inner ABS
    core both become int8 state arrays; the asymmetric listening
    thresholds are precomputed per member.  Members in ``election``
    state always correspond to a live ``AbsCore`` with ``outcome is
    None`` (the wrapper nulls the core on every exit), so :meth:`store`
    can reconstruct cores from the arrays alone.
    """

    @classmethod
    def check(cls, fleet) -> Optional[str]:
        for algo in fleet:
            core = algo.core
            if core is not None and (
                core.threshold0_override is not None
                or core.threshold1_override is not None
            ):
                return (
                    "KSelection with ABS threshold overrides is "
                    "object-path only"
                )
        return None

    def load(self) -> None:
        from ..analysis.bounds import (
            abs_listen_threshold_bit0,
            abs_listen_threshold_bit1,
        )

        algos = self.algos
        kindex = {name: code for code, name in enumerate(_KSEL_STATES)}
        aindex = {name: code for code, name in enumerate(_ABS_STATES)}
        n = len(algos)
        self.ks = np.array([kindex[a.state] for a in algos], dtype=np.int8)
        self.wins = np.array([a.wins_observed for a in algos], dtype=np.int64)
        self.k = np.array([a.k for a in algos], dtype=np.int64)
        self.rank = np.array(
            [-1 if a.rank is None else a.rank for a in algos], dtype=np.int64
        )
        self.saw_ack = np.array([a.saw_ack for a in algos], dtype=bool)
        self.abs_state = np.zeros(n, dtype=np.int8)
        self.phase = np.zeros(n, dtype=np.int64)
        self.silent = np.zeros(n, dtype=np.int64)
        self.threshold = np.zeros(n, dtype=np.int64)
        self.slots_used = np.zeros(n, dtype=np.int64)
        self.t0 = np.zeros(n, dtype=np.int64)
        self.t1 = np.zeros(n, dtype=np.int64)
        for i, algo in enumerate(algos):
            core = algo.core
            if core is not None:
                self.abs_state[i] = aindex[core.state]
                self.phase[i] = core.phase
                self.silent[i] = core.silent_heard
                self.threshold[i] = core.threshold
                self.slots_used[i] = core.slots_used
                self.t0[i] = core._threshold0
                self.t1[i] = core._threshold1
            else:
                upper = as_time(algo.max_slot_length)
                self.t0[i] = abs_listen_threshold_bit0(upper)
                self.t1[i] = abs_listen_threshold_bit1(upper)

    def step(self, m, fb, q, new_index):
        ks = self.ks[m]
        ast = self.abs_state[m]
        phase = self.phase[m]
        silent = self.silent[m]
        threshold = self.threshold[m]
        used = self.slots_used[m]
        wins = self.wins[m]
        rank = self.rank[m]
        saw = self.saw_ack[m]
        sids = self.kernel.sids[m]
        sil = fb == _F_SILENCE
        busy = fb == _F_BUSY
        acked = fb == _F_ACK

        electing = ks == 0
        used = used + electing  # AbsCore.step: slots_used += 1
        a0 = electing & (ast == 0)
        a1 = electing & (ast == 1)
        a2 = electing & (ast == 2)
        if bool(np.any(a2 & sil)):
            raise ProtocolError(
                "channel reported silence for a slot this station "
                "transmitted in — broken channel model"
            )
        observing = ks == 1

        # Every win counted this step, in wrapper terms: elimination by
        # ack (boxes (1)/(3)/(4)), winning (box (5)), or an observing
        # station hearing the round's first ack.
        w_ack = a0 & acked
        l_ack = a1 & acked
        x_ack = a2 & acked
        ob_ack = observing & acked & ~saw
        win = w_ack | l_ack | x_ack | ob_ack
        wins = wins + win
        rank = np.where(x_ack, wins, rank)  # rank = wins_observed + 1
        finished = win & (wins >= self.k[m])

        new_ks = ks.copy()
        new_saw = saw.copy()
        new_ks[finished] = 2
        to_observe_ack = (w_ack | l_ack) & ~finished
        to_observe_quiet = (a1 & busy) | (x_ack & ~finished)
        new_ks[to_observe_ack | to_observe_quiet] = 1
        new_saw[to_observe_ack] = True
        new_saw[to_observe_quiet] = False
        new_saw[ob_ack & ~finished] = True

        # ABS inner transitions (non-terminal ones).
        arm = a0 & sil  # box (1) -> boxes (3)/(4)
        bit = (sids >> phase) & 1
        threshold = np.where(
            arm, np.where(bit == 1, self.t1[m], self.t0[m]), threshold
        )
        silent_n = np.where(arm, 0, silent)
        ast_n = np.where(arm, 1, ast)
        count = a1 & sil
        silent_n = silent_n + count
        fire = count & (silent_n >= threshold)  # box (5): transmit
        ast_n = np.where(fire, 2, ast_n)
        next_phase = a2 & busy  # collision: next bit, back to box (1)
        phase = phase + next_phase
        ast_n = np.where(next_phase, 0, ast_n)

        # Observe: the round-ending silence; unranked stations re-enter
        # with a *fresh* core.
        round_over = observing & sil & saw
        new_saw[round_over] = False
        reenter = round_over & (rank < 0)
        new_ks[reenter] = 0
        ast_n = np.where(reenter, 0, ast_n)
        phase = np.where(reenter, 0, phase)
        silent_n = np.where(reenter, 0, silent_n)
        used = np.where(reenter, 0, used)

        acts = np.zeros(len(m), dtype=np.int8)
        acts[fire] = _A_TX_CTRL  # KSelection cores never carry packets

        self.ks[m] = new_ks
        self.abs_state[m] = ast_n
        self.phase[m] = phase
        self.silent[m] = silent_n
        self.threshold[m] = threshold
        self.slots_used[m] = used
        self.wins[m] = wins
        self.rank[m] = rank
        self.saw_ack[m] = new_saw
        return acts

    def store(self) -> None:
        from ..algorithms.abs_leader import AbsCore

        for i, algo in enumerate(self.algos):
            algo.state = _KSEL_STATES[int(self.ks[i])]
            algo.wins_observed = int(self.wins[i])
            rank = int(self.rank[i])
            algo.rank = None if rank < 0 else rank
            algo.saw_ack = bool(self.saw_ack[i])
            if self.ks[i] == 0:
                core = algo.core
                if core is None:
                    core = AbsCore(
                        station_id=algo.station_id,
                        max_slot_length=algo.max_slot_length,
                    )
                    algo.core = core
                core.state = _ABS_STATES[int(self.abs_state[i])]
                core.phase = int(self.phase[i])
                core.silent_heard = int(self.silent[i])
                core.threshold = int(self.threshold[i])
                core.slots_used = int(self.slots_used[i])
            else:
                algo.core = None


def _register_builtin_algorithms() -> None:
    """Bind programs to algorithm classes, tolerating partial installs."""
    from ..algorithms.abs_leader import ABSLeaderElection
    from ..algorithms.aloha import SlottedAloha
    from ..algorithms.ao_arrow import AOArrow
    from ..algorithms.ca_arrow import CAArrow
    from ..algorithms.ca_arrow_ft import FaultTolerantCAArrow
    from ..algorithms.k_selection import KSelection
    from ..algorithms.mbtf import MBTFLike
    from ..algorithms.round_robin import RRW, NaiveTDMA
    from .batch_adaptive import (
        ABSLeaderElectionProgram,
        AOArrowProgram,
        CAArrowProgram,
        FaultTolerantCAArrowProgram,
    )

    BATCH_ALGORITHMS[SlottedAloha] = SlottedAlohaProgram
    BATCH_ALGORITHMS[NaiveTDMA] = NaiveTDMAProgram
    BATCH_ALGORITHMS[RRW] = RRWProgram
    BATCH_ALGORITHMS[MBTFLike] = MBTFLikeProgram
    BATCH_ALGORITHMS[KSelection] = KSelectionProgram
    BATCH_ALGORITHMS[ABSLeaderElection] = ABSLeaderElectionProgram
    BATCH_ALGORITHMS[AOArrow] = AOArrowProgram
    BATCH_ALGORITHMS[CAArrow] = CAArrowProgram
    BATCH_ALGORITHMS[FaultTolerantCAArrow] = FaultTolerantCAArrowProgram


# ----------------------------------------------------------------------
# Schedule programs
# ----------------------------------------------------------------------


class _ConstantSchedule(ScheduleProgram):
    """Shared body for adversaries producing one fixed length everywhere."""

    def _constant_length(self):
        raise NotImplementedError

    def load(self) -> None:
        self.ticks = self._ticks(self._constant_length())

    def lengths(self, m, new_index):
        return np.full(len(m), self.ticks, dtype=np.int64)


class SynchronousProgram(_ConstantSchedule):
    def _constant_length(self):
        from fractions import Fraction

        return Fraction(1)


class FixedLengthProgram(_ConstantSchedule):
    def _constant_length(self):
        return self.adversary.length


class PerStationFixedProgram(ScheduleProgram):
    def load(self) -> None:
        table = self.adversary.lengths
        ticks = np.empty(len(self.kernel.sids_list), dtype=np.int64)
        for i, sid in enumerate(self.kernel.sids_list):
            if sid not in table:
                raise ConfigurationError(
                    f"PerStationFixed has no length for station {sid}"
                )
            ticks[i] = self._ticks(table[sid])
        self.ticks = ticks

    def lengths(self, m, new_index):
        return self.ticks[m]


class _PatternSchedule(ScheduleProgram):
    """Shared body for per-station cyclic patterns: a padded 2-D tick
    table plus per-station pattern lengths, indexed by slot number."""

    def _pattern_for(self, sid: int):
        raise NotImplementedError

    def load(self) -> None:
        sids = self.kernel.sids_list
        patterns = [self._pattern_for(sid) for sid in sids]
        self.plen = np.array([len(p) for p in patterns], dtype=np.int64)
        width = int(self.plen.max())
        table = np.zeros((len(sids), width), dtype=np.int64)
        for i, pattern in enumerate(patterns):
            table[i, : len(pattern)] = [self._ticks(x) for x in pattern]
        self.table = table

    def lengths(self, m, new_index):
        return self.table[m, new_index % self.plen[m]]


class CyclicPatternProgram(_PatternSchedule):
    def _pattern_for(self, sid: int):
        patterns = self.adversary.patterns
        if sid not in patterns:
            raise ConfigurationError(
                f"CyclicPattern has no pattern for station {sid}"
            )
        return patterns[sid]


class WorstCaseCyclicProgram(_PatternSchedule):
    def _pattern_for(self, sid: int):
        adversary = self.adversary
        return adversary.odd_pattern if sid % 2 else adversary.even_pattern


class TableDrivenProgram(ScheduleProgram):
    def load(self) -> None:
        table = self.adversary.table
        self.default_ticks = self._ticks(self.adversary.default)
        self.rows: List[tuple] = []
        self.row_len = np.zeros(len(self.kernel.sids_list), dtype=np.int64)
        for i, sid in enumerate(self.kernel.sids_list):
            row = tuple(self._ticks(x) for x in table.get(sid, ()))
            self.rows.append(row)
            self.row_len[i] = len(row)

    def lengths(self, m, new_index):
        out = np.full(len(m), self.default_ticks, dtype=np.int64)
        inside = new_index < self.row_len[m]
        for j in np.nonzero(inside)[0]:
            out[j] = self.rows[int(m[j])][int(new_index[j])]
        return out


class RandomUniformProgram(ScheduleProgram):
    """Draws stay scalar calls on the adversary's own ``random.Random``,
    one per member in ascending station-id order — the object path's
    exact draw order within a tick."""

    def load(self) -> None:
        adversary = self.adversary
        lattice_d = self.kernel.tb.denominator
        self.steps = adversary._steps
        # 1 + k/den in ticks: D + k * (D // den); D is an lcm multiple
        # of den by lattice construction, so the division is exact.
        self.base = lattice_d
        self.per_step = lattice_d // adversary._denominator

    def lengths(self, m, new_index):
        rng = self.adversary._rng
        steps = self.steps
        out = np.empty(len(m), dtype=np.int64)
        for j in range(len(m)):
            out[j] = self.base + rng.randint(0, steps) * self.per_step
        return out


def _register_builtin_schedules() -> None:
    from ..timing.adversary import (
        CyclicPattern,
        FixedLength,
        PerStationFixed,
        RandomUniform,
        Synchronous,
        TableDriven,
        WorstCaseCyclic,
    )

    BATCH_SCHEDULES[Synchronous] = SynchronousProgram
    BATCH_SCHEDULES[FixedLength] = FixedLengthProgram
    BATCH_SCHEDULES[PerStationFixed] = PerStationFixedProgram
    BATCH_SCHEDULES[CyclicPattern] = CyclicPatternProgram
    BATCH_SCHEDULES[WorstCaseCyclic] = WorstCaseCyclicProgram
    BATCH_SCHEDULES[TableDriven] = TableDrivenProgram
    BATCH_SCHEDULES[RandomUniform] = RandomUniformProgram


_register_builtin_algorithms()
_register_builtin_schedules()


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


class BatchKernel:
    """One simulator's array state + the per-tick batched event loop.

    Constructed once per simulator (``Simulator._batch_kernel``); every
    ``run`` call re-snapshots canonical state, so object-engine steps
    may happen between kernel runs.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.tb = sim.timebase
        self.max_dur = sim._max_slot_internal
        self.sids_list: List[int] = list(sim.station_ids)
        self.sids = np.array(self.sids_list, dtype=np.int64)
        self.algos = [sim.stations[sid].algorithm for sid in self.sids_list]
        self.queues = [sim.stations[sid].queue for sid in self.sids_list]
        algorithm_cls = type(self.algos[0])
        self.program: AlgorithmProgram = BATCH_ALGORITHMS[algorithm_cls](self)
        self.schedule: ScheduleProgram = BATCH_SCHEDULES[
            type(sim.slot_adversary)
        ](self, sim.slot_adversary)

    # -- canonical <-> array sync ------------------------------------

    def _load(self) -> None:
        sim = self.sim
        runtimes = [sim.stations[sid] for sid in self.sids_list]
        self.slot_index = np.array(
            [rt.slot_index for rt in runtimes], dtype=np.int64
        )
        self.slot_start = np.array(
            [rt.slot_start for rt in runtimes], dtype=np.int64
        )
        self.slot_end = np.array(
            [rt.slot_end for rt in runtimes], dtype=np.int64
        )
        self.slots_elapsed = np.array(
            [rt.slots_elapsed for rt in runtimes], dtype=np.int64
        )
        self.action_code = np.array(
            [
                _A_LISTEN
                if not rt.action.is_transmit
                else (_A_TX_PKT if rt.action.carries_packet else _A_TX_CTRL)
                for rt in runtimes
            ],
            dtype=np.int8,
        )
        self.qlen = np.array([len(q) for q in self.queues], dtype=np.int64)
        self._pending_nonempty = {
            sid for sid, pending in sim._pending_arrivals.items() if pending
        }
        # Frontier: one entry per distinct end tick, holding ascending
        # fleet-index arrays.  Replaces the per-station (end, sid) heap
        # while the kernel runs; _store rebuilds the canonical heap.
        order = np.argsort(self.slot_end, kind="stable")
        sorted_ends = self.slot_end[order]
        ticks, first = np.unique(sorted_ends, return_index=True)
        self._groups: Dict[int, List] = {}
        self._tick_heap: List[int] = []
        for tick, piece in zip(ticks, np.split(order, first[1:])):
            self._push(int(tick), piece)
        self.program.load()
        self.schedule.load()

    def _store(self) -> None:
        sim = self.sim
        for i, sid in enumerate(self.sids_list):
            rt = sim.stations[sid]
            start = int(self.slot_start[i])
            end = int(self.slot_end[i])
            rt.slot_index = int(self.slot_index[i])
            rt.slot_start = start
            rt.slot_end = end
            rt.slot_interval = Interval(start, end)
            code = int(self.action_code[i])
            rt.action = _ACTIONS[code]
            rt.aboard_packet = (
                self.queues[i].head() if code == _A_TX_PKT else None
            )
            rt.slots_elapsed = int(self.slots_elapsed[i])
        heap = [
            (int(self.slot_end[i]), sid)
            for i, sid in enumerate(self.sids_list)
        ]
        heapq.heapify(heap)
        sim._event_heap = heap
        self.program.store()

    def _push(self, tick: int, members) -> None:
        group = self._groups.get(tick)
        if group is None:
            self._groups[tick] = [members]
            heapq.heappush(self._tick_heap, tick)
        else:
            group.append(members)

    # -- the loop -----------------------------------------------------

    def run(
        self,
        limit_internal: Optional[int],
        limit_time,
        max_events: Optional[int],
        check_success: bool,
    ) -> None:
        sim = self.sim
        self._load()
        try:
            while True:
                if (
                    max_events is not None
                    and sim.events_processed >= max_events
                ):
                    return
                if not self._tick_heap:
                    raise SimulationError(
                        "event heap empty — stations always reschedule"
                    )
                tick = self._tick_heap[0]
                if limit_internal is not None and tick > limit_internal:
                    sim._now_internal = limit_internal
                    sim._now_exact = limit_time
                    return
                heapq.heappop(self._tick_heap)
                pieces = self._groups.pop(tick)
                if len(pieces) == 1:
                    members = pieces[0]
                else:
                    members = np.sort(np.concatenate(pieces))
                stop_after = False
                if check_success and sim.channel.finalized_successes(tick) > 0:
                    # The object loop stops after exactly one event at
                    # the first tick with a finalized success; a length-1
                    # prefix in ascending-id order is that same event.
                    if len(members) > 1:
                        self._push(tick, members[1:])
                    members = members[:1]
                    stop_after = True
                if max_events is not None:
                    room = max_events - sim.events_processed
                    if len(members) > room:
                        self._push(tick, members[room:])
                        members = members[:room]
                self._process_tick(tick, members)
                if stop_after:
                    return
        finally:
            self._store()

    def _process_tick(self, tick: int, m) -> None:
        sim = self.sim
        tb = self.tb
        sim._now_internal = tick
        sim._now_exact = None
        if tick >= sim._arrivals_not_before:
            injected = sim._pump_arrivals(tick)
            if injected:
                self._pending_nonempty.update(injected)

        fb, acked = self._feedback(m, tick)
        codes = self.action_code[m]

        deliver = acked & (codes == _A_TX_PKT)
        if bool(np.any(deliver)):
            tick_public = tb.to_public(tick)
            trace = sim.trace
            for raw in m[deliver]:
                i = int(raw)
                packet = self.queues[i].pop_delivered()
                packet.mark_delivered(
                    at=tick_public,
                    cost=tb.to_public(tick - int(self.slot_start[i])),
                )
                sim._delivered_packets.append(packet)
                sim._total_backlog -= 1
                trace.on_backlog_change(tick_public, sim._total_backlog)
                self.qlen[i] -= 1

        if self._pending_nonempty:
            # Arrivals become visible at the owner's own slot boundary.
            # Every pending packet has arrival tick <= now (the pump ran
            # with upto=now), so members drain their whole pending list.
            member_sids = self.sids[m]
            drained = []
            for sid in self._pending_nonempty:
                pos = int(np.searchsorted(member_sids, sid))
                if pos < len(member_sids) and member_sids[pos] == sid:
                    i = int(m[pos])
                    pending = sim._pending_arrivals[sid]
                    queue = self.queues[i]
                    for _at, packet in pending:
                        queue.push(packet)
                    self.qlen[i] += len(pending)
                    pending.clear()
                    drained.append(sid)
            for sid in drained:
                self._pending_nonempty.discard(sid)

        self.slots_elapsed[m] += 1
        new_index = self.slot_index[m] + 1
        q = self.qlen[m]
        acts = self.program.step(m, fb, q, new_index)

        bad = (acts == _A_TX_PKT) & (q == 0)
        if bool(np.any(bad)):
            i = int(m[int(np.argmax(bad))])
            raise ProtocolError(
                f"station {self.sids_list[i]}: "
                f"{type(self.algos[i]).__name__} transmitted a packet "
                "from an empty queue"
            )

        lengths = self.schedule.lengths(m, new_index)
        ends = tick + lengths
        prune_k = 0
        if not sim.keep_channel_history:
            after = sim.events_processed + len(m)
            last_boundary = after - after % _PRUNE_EVERY
            if last_boundary > sim.events_processed:
                prune_k = last_boundary - sim.events_processed
                old_member_starts = self.slot_start[m].copy()
        self.slot_index[m] = new_index
        self.slot_start[m] = tick
        self.slot_end[m] = ends
        self.action_code[m] = acts

        transmitting = acts != _A_LISTEN
        if bool(np.any(transmitting)):
            channel = sim.channel
            tx_members = m[transmitting]
            tx_ends = ends[transmitting]
            tx_codes = acts[transmitting]
            for j in range(len(tx_members)):
                i = int(tx_members[j])
                aboard = (
                    self.queues[i].head()
                    if tx_codes[j] == _A_TX_PKT
                    else None
                )
                channel.begin_transmission(
                    self.sids_list[i],
                    Interval(tick, int(tx_ends[j])),
                    aboard,
                )

        sim.events_processed += len(m)
        if prune_k:
            # The object loop prunes while processing the member that
            # lands on a _PRUNE_EVERY boundary, when only the first
            # ``prune_k`` members of this group have opened their next
            # slot.  Records added by later members all end after
            # ``tick`` >= low-water, so one prune with that boundary's
            # snapshot retains the identical record set.
            starts = self.slot_start.copy()
            starts[m[prune_k:]] = old_member_starts[prune_k:]
            sim.channel._prune_internal(int(starts.min()))

        order = np.argsort(ends, kind="stable")
        sorted_ends = ends[order]
        sorted_members = m[order]
        ticks, first = np.unique(sorted_ends, return_index=True)
        for end, piece in zip(ticks, np.split(sorted_members, first[1:])):
            self._push(int(end), piece)

    def _feedback(self, m, tick: int):
        """Feedback codes for every member slot ending at ``tick``.

        Mirrors ``Channel.feedback_for`` over the whole batch: one
        reverse scan of the record list, stopping once records can no
        longer reach even the earliest member slot.
        """
        starts = self.slot_start[m]
        acked = np.zeros(len(m), dtype=bool)
        busy = np.zeros(len(m), dtype=bool)
        busy_all = False
        horizon = int(starts.min()) - self.max_dur
        for record in reversed(self.sim.channel._transmissions):
            interval = record.interval
            start = interval.start
            if start <= horizon:
                break
            end = interval.end
            if end <= tick:
                hit = starts < end
                if not record.overlapped:
                    acked |= hit
                busy |= hit
            elif start < tick:
                # Still in flight at tick: overlaps every member slot.
                busy_all = True
        if busy_all:
            fb = np.where(acked, _F_ACK, _F_BUSY).astype(np.int8)
        else:
            fb = np.where(
                acked, _F_ACK, np.where(busy, _F_BUSY, _F_SILENCE)
            ).astype(np.int8)
        return fb, acked
