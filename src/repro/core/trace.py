"""Execution traces: per-slot records and backlog trajectories.

Two consumers drive the design:

* The figure-reproduction benches (Fig. 2 schedule diagram, Fig. 4
  phase timeline) need the full per-slot story of short executions —
  who listened/transmitted when, with what feedback.
* The stability benches (Theorems 3 and 6) run millions of slots and
  only need the *backlog trajectory* (total queued packets over time)
  plus its running maximum, so full slot records can be disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

from .errors import ConfigurationError
from .feedback import Feedback
from .station import Action
from .timebase import Interval, Time, TimeLike, as_time


@dataclass(frozen=True, slots=True)
class SlotRecord:
    """Everything that happened in one slot of one station.

    ``queue_size_after`` is the queue length right after the slot's
    feedback was processed (deliveries popped, arrivals appended) — the
    value the algorithm saw when choosing its next action.
    """

    station_id: int
    slot_index: int
    interval: Interval
    action: Action
    feedback: Feedback
    queue_size_after: int
    carried_packet_id: Optional[int] = None
    delivered: bool = False


@dataclass(slots=True)
class BacklogSample:
    """Total system backlog (packets waiting in all queues) at a moment."""

    time: Time
    total_packets: int


@dataclass(slots=True)
class Trace:
    """Recording sink attached to a :class:`~repro.core.simulator.Simulator`.

    Attributes:
        record_slots: Keep full :class:`SlotRecord` history.  Off by
            default; long stability runs would otherwise hold millions
            of records.
        backlog_stride: Record a backlog sample every ``stride`` backlog
            changes (1 = every change).  The running maximum is always
            exact regardless of stride.
    """

    record_slots: bool = False
    backlog_stride: int = 1
    slots: List[SlotRecord] = field(default_factory=list)
    backlog: List[BacklogSample] = field(default_factory=list)
    max_backlog: int = 0
    #: Count of backlog-change events seen so far; drives the stride
    #: sampling in :meth:`on_backlog_change` (``max_backlog`` stays
    #: exact no matter how many samples the stride swallows).
    _backlog_events: int = 0

    def __post_init__(self) -> None:
        if self.backlog_stride < 1:
            raise ConfigurationError(
                f"backlog_stride must be >= 1, got {self.backlog_stride} "
                "(a stride of 0 would silently never sample)"
            )

    def on_slot(self, record: SlotRecord) -> None:
        """Store one slot record (if slot recording is enabled)."""
        if self.record_slots:
            self.slots.append(record)

    def on_backlog_change(self, time: Time, total_packets: int) -> None:
        """Track a change in the total number of queued packets."""
        if total_packets > self.max_backlog:
            self.max_backlog = total_packets
        self._backlog_events += 1
        if self._backlog_events % self.backlog_stride == 0:
            self.backlog.append(BacklogSample(time=time, total_packets=total_packets))

    def max_backlog_cost(self, max_slot_length: TimeLike) -> Fraction:
        """Exact running maximum of the backlog *cost upper bound*.

        Every queued packet costs at most one maximal slot, so
        ``max_backlog * R`` upper-bounds the queued cost at the worst
        moment — the quantity comparable against the paper's ``L``
        bounds (Theorems 3 and 6).
        """
        return self.max_backlog * as_time(max_slot_length)

    # ------------------------------------------------------------------
    # Queries used by analyses and figure renderers
    # ------------------------------------------------------------------

    def slots_of(self, station_id: int) -> List[SlotRecord]:
        """All recorded slots of one station, in order."""
        return [s for s in self.slots if s.station_id == station_id]

    def transmissions(self) -> List[SlotRecord]:
        """All recorded transmit slots across stations."""
        return [s for s in self.slots if s.action.is_transmit]

    def acked_slots(self) -> List[SlotRecord]:
        """All recorded slots whose feedback was an acknowledgment."""
        return [s for s in self.slots if s.feedback is Feedback.ACK]

    def horizon(self) -> Fraction:
        """Latest recorded slot end (0 if nothing recorded)."""
        if not self.slots:
            return Fraction(0)
        return max(s.interval.end for s in self.slots)

    def backlog_series(self) -> List[Tuple[Fraction, int]]:
        """The backlog trajectory as plain (time, packets) pairs."""
        return [(sample.time, sample.total_packets) for sample in self.backlog]
