"""Station algorithm interface: deterministic, cloneable slot automata.

Every algorithm in the paper (ABS, AO-ARRoW, CA-ARRoW, the synchronous
baselines) is presented as an automaton whose only inputs are

* the channel feedback at the end of each of the station's own slots, and
* the station's own queue length (arrivals become visible at slot
  boundaries — the paper performs all local operations "in-between two
  consecutive slots").

This module pins that interface down.  Two design rules matter for the
rest of the library:

1. **Determinism + explicit state.**  An algorithm object must behave as
   a pure function of its explicit attributes.  The adversarial
   constructions of Theorems 2 and 4 *require* this: the adversary
   deep-copies stations and simulates them forward under hypothetical
   feedback to choose its next move.  Randomized algorithms (slotted
   Aloha) carry their own seeded :class:`random.Random` as state, which
   deep-copies reproducibly.

2. **No hidden channels.**  Algorithms never see slot lengths, global
   time, other stations' state, or packet contents — only
   :class:`SlotContext`.  This enforces the model of Section II at the
   type level.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Optional

from .errors import ProtocolError
from .feedback import Feedback


class ActionKind(enum.Enum):
    """What a station does with its next slot."""

    LISTEN = "listen"
    TRANSMIT = "transmit"


@dataclass(frozen=True, slots=True)
class Action:
    """A station's decision for its upcoming slot.

    Attributes:
        kind: Listen or transmit.
        carries_packet: For a transmit action, whether the head packet of
            the queue rides the transmission.  ``False`` denotes a
            *control message* ("empty signal" in the paper's Section VI)
            and is only legal for algorithms whose
            :attr:`StationAlgorithm.uses_control_messages` is true.
    """

    kind: ActionKind
    carries_packet: bool = False
    #: Precomputed ``kind is TRANSMIT`` — read on the event loop's hot
    #: path for every slot, so a derived field beats a property.
    is_transmit: bool = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "is_transmit", self.kind is ActionKind.TRANSMIT)


#: Shared singletons for the three meaningful actions.
LISTEN = Action(ActionKind.LISTEN)
TRANSMIT_PACKET = Action(ActionKind.TRANSMIT, carries_packet=True)
TRANSMIT_CONTROL = Action(ActionKind.TRANSMIT, carries_packet=False)


class SlotContext:
    """Everything a station knows at one of its slot boundaries.

    A hand-written ``__slots__`` class (one is built per processed slot,
    so construction cost is hot-path cost).

    Attributes:
        feedback: Channel feedback for the slot that just ended, or
            ``None`` for the very first decision (no slot ended yet).
        queue_size: Number of packets currently waiting at this station,
            including any that arrived during the slot that just ended.
        slot_index: Ordinal of the slot that is about to begin (0 for the
            first slot).  This is the station's own count — a local step
            counter, **not** a clock; the model explicitly allows
            counting one's own slots while forbidding measuring them.
    """

    __slots__ = ("feedback", "queue_size", "slot_index")

    def __init__(
        self,
        feedback: Optional[Feedback],
        queue_size: int,
        slot_index: int,
    ) -> None:
        self.feedback = feedback
        self.queue_size = queue_size
        self.slot_index = slot_index

    def __eq__(self, other) -> bool:
        if isinstance(other, SlotContext):
            return (
                self.feedback == other.feedback
                and self.queue_size == other.queue_size
                and self.slot_index == other.slot_index
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlotContext(feedback={self.feedback!r}, "
            f"queue_size={self.queue_size!r}, slot_index={self.slot_index!r})"
        )


class StationAlgorithm:
    """Base class for all channel-access automata.

    Subclasses implement :meth:`first_action` and :meth:`on_slot_end`
    and must keep *all* mutable state in instance attributes so that
    :meth:`clone` produces an independent, behaviourally identical copy.
    """

    #: Whether the algorithm may transmit without a queued packet
    #: (control messages / "empty signals").  Checked by the simulator.
    uses_control_messages: bool = False

    #: Declared design goal of never producing a collision.  The
    #: simulator does not trust this flag — benchmarks assert it against
    #: the channel's collision log.
    collision_free_by_design: bool = False

    def first_action(self, ctx: SlotContext) -> Action:
        """Decide the action for the station's first slot (time 0)."""
        raise NotImplementedError

    def on_slot_end(self, ctx: SlotContext) -> Action:
        """Consume feedback for the slot that ended; choose the next action."""
        raise NotImplementedError

    def clone(self) -> "StationAlgorithm":
        """Independent deep copy (used by adversaries for look-ahead)."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------
    # Optional terminal-state protocol (used by SST / leader election).
    # ------------------------------------------------------------------

    @property
    def is_done(self) -> bool:
        """True when the automaton reached a terminal state.

        A done station listens forever; the simulator may use this to
        stop a run early.  Dynamic-arrival algorithms never terminate and
        keep the default ``False``.
        """
        return False

    def _require_feedback(self, ctx: SlotContext) -> Feedback:
        """Helper: extract feedback, rejecting a first-slot context."""
        if ctx.feedback is None:
            raise ProtocolError(
                f"{type(self).__name__}.on_slot_end called without feedback"
            )
        return ctx.feedback


class AlwaysListen(StationAlgorithm):
    """Trivial algorithm that never transmits.

    Useful as a passive observer in tests and as the terminal behaviour
    of eliminated SST stations.
    """

    def first_action(self, ctx: SlotContext) -> Action:
        return LISTEN

    def on_slot_end(self, ctx: SlotContext) -> Action:
        return LISTEN


class AlwaysTransmit(StationAlgorithm):
    """Trivial algorithm that transmits a control signal every slot.

    Used in channel-model tests (it jams everyone) and in adversarial
    scenarios.  Declares control-message capability because it transmits
    regardless of queue contents.
    """

    uses_control_messages = True

    def first_action(self, ctx: SlotContext) -> Action:
        return TRANSMIT_CONTROL if ctx.queue_size == 0 else TRANSMIT_PACKET

    def on_slot_end(self, ctx: SlotContext) -> Action:
        return TRANSMIT_CONTROL if ctx.queue_size == 0 else TRANSMIT_PACKET
