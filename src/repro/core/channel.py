"""Continuous-time shared channel with exact overlap resolution.

The channel is the paper's "base station" (Section II): it receives a
transmission successfully **iff no other transmission overlaps it in
real time**, and produces per-slot feedback for each station:

* ``ACK``     — a successful transmission ended inside the slot,
* ``SILENCE`` — nothing overlapped the slot,
* ``BUSY``    — activity overlapped the slot but no success ended in it.

Correctness of the feedback computation relies on event causality: the
simulator records every transmission at the moment its slot *starts*,
and only asks for feedback of slots ending at time ``t`` once every slot
starting before ``t`` has been recorded.  A transmission that ended at
``e <= t`` can only be overlapped by transmissions starting before
``e``, so its success is fully determined at time ``t``.

Time units: the channel stores intervals in the simulator's *internal*
timebase (exact Fractions by default, integer ticks under a
:class:`~repro.core.timebase.TickLattice`).  Methods taking a *public*
time (``count_successes_up_to``, ``prune_before``, ``drain_all``)
convert at the boundary via ``floor_internal`` — exact for the
comparisons they make, because every stored endpoint is a lattice
point.  Public accessors (``stats``, ``first_success_end``,
``live_records``) convert back to Fractions, so observers never see
ticks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

from ..obs.probes import CollisionEvent
from .errors import SimulationError
from .feedback import Feedback
from .packet import Packet
from .timebase import FRACTION_TIMEBASE, Interval, Time, Timebase, as_time


@dataclass(slots=True)
class Transmission:
    """One station's transmission occupying one of its slots.

    ``overlapped`` is maintained incrementally as later transmissions
    are recorded; a transmission is *successful* iff it is never
    overlapped.  Because any overlapping transmission must start before
    this one ends, the flag is final as soon as simulation time reaches
    ``interval.end``.
    """

    station_id: int
    interval: Interval
    packet: Optional[Packet]
    overlapped: bool = False

    @property
    def successful(self) -> bool:
        """True when no other transmission overlapped this one."""
        return not self.overlapped

    @property
    def is_control(self) -> bool:
        """True for control messages / empty signals (no packet aboard)."""
        return self.packet is None


@dataclass(slots=True)
class ChannelStats:
    """Aggregate channel counters, exact even after old records are pruned.

    ``collisions`` counts *transmissions that were overlapped* (each
    such transmission counted once), so a pairwise collision adds 2 and
    a k-way pile-up adds k.  A collision-free execution has
    ``collisions == 0`` — the invariant CA-ARRoW must satisfy.
    """

    transmissions: int = 0
    successes: int = 0
    collisions: int = 0
    control_transmissions: int = 0
    busy_time: Fraction = field(default_factory=lambda: Fraction(0))
    #: Total duration of *successful* transmissions (finalized records).
    #: ``horizon - success_time`` is the paper's wasted time (Def. 2).
    success_time: Fraction = field(default_factory=lambda: Fraction(0))


class Channel:
    """The shared medium: transmission registry + feedback oracle.

    The recent-transmission list is kept sorted by start time.
    :meth:`prune_before` lets the simulator discard transmissions that
    can no longer influence any future slot, keeping long stability runs
    bounded in memory while the :class:`ChannelStats` counters stay
    exact (successes are folded into the stats as records are pruned).
    """

    def __init__(
        self,
        max_transmission_duration=None,
        probes=None,
        timebase: Optional[Timebase] = None,
    ) -> None:
        self._timebase: Timebase = (
            timebase if timebase is not None else FRACTION_TIMEBASE
        )
        self._transmissions: List[Transmission] = []
        self._pruned_success_count = 0
        self._stats = ChannelStats()
        #: Optional :class:`~repro.obs.probes.ProbeBus`; the channel
        #: fires one ``collision`` event per transmission that becomes
        #: overlapped (same counting as ``stats.collisions``).
        self.probes = probes
        # Duration accumulators and the first-success watermark live in
        # internal units; public properties convert on read.
        self._busy_internal = self._timebase.zero
        self._success_internal = self._timebase.zero
        self._first_success_internal = None
        #: When set (the simulator passes R, in internal units), scans
        #: over the start-sorted record list stop early: a transmission
        #: starting more than this long before an interval cannot reach
        #: into it.
        self._max_duration = max_transmission_duration
        # Incremental finalized-success tracking (opt-in): an
        # end-ordered heap of records whose success flag is final once
        # simulation time reaches their end.  Keeps per-event success
        # polling O(log history) instead of O(history).
        self._tracking = False
        self._track_heap: List[Tuple[object, int, Transmission]] = []
        self._track_seq = 0
        self._track_count = 0
        self._track_first_end = None
        # Incremental collision detection.  Starts are non-decreasing
        # (begin_transmission's contract), so "overlaps a new interval"
        # reduces to "ends strictly after the new start".  Un-overlapped
        # records sit on an end-ordered heap: entries ending at or
        # before a new start can never collide again and are popped for
        # good; everything still on the heap collides with the new
        # record.  Overlapped records never need marking again, so for
        # them one running maximum end answers "does the new record
        # overlap any of those".  Together: amortised O(log history)
        # per transmission where a window rescan is O(window) — the
        # difference between linear and quadratic inside the n-way
        # same-instant collisions of a large election phase.
        self._clean_open: List[Tuple[object, int, Transmission]] = []
        self._clean_seq = 0
        self._dirty_end_max = None

    @property
    def stats(self) -> ChannelStats:
        """Aggregate counters; durations materialised as exact Fractions."""
        stats = self._stats
        stats.busy_time = self._timebase.to_public(self._busy_internal)
        stats.success_time = self._timebase.to_public(self._success_internal)
        return stats

    @property
    def first_success_end(self) -> Optional[Time]:
        """End time of the first successful transmission finalized so far.

        For runs that prune in time order this is exact.
        """
        if self._first_success_internal is None:
            return None
        return self._timebase.to_public(self._first_success_internal)

    def _relevant_reversed(self, threshold_start):
        """Records that might intersect anything at/after ``threshold_start``.

        Iterates newest-first and stops once starts fall far enough in
        the past that the duration bound rules out any overlap.
        """
        if self._max_duration is None:
            yield from reversed(self._transmissions)
            return
        horizon = threshold_start - self._max_duration
        for record in reversed(self._transmissions):
            if record.interval.start <= horizon:
                return
            yield record

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def begin_transmission(
        self,
        station_id: int,
        interval: Interval,
        packet: Optional[Packet],
    ) -> Transmission:
        """Record a transmission occupying ``interval``.

        Must be called in non-decreasing order of ``interval.start``;
        the simulator guarantees this because transmissions begin at
        slot starts and events are processed in time order.
        """
        if (
            self._transmissions
            and interval.start < self._transmissions[-1].interval.start
        ):
            raise SimulationError(
                "transmissions must be recorded in start-time order: "
                f"{interval.start} after {self._transmissions[-1].interval.start}"
            )
        record = Transmission(station_id=station_id, interval=interval, packet=packet)
        stats = self._stats
        start = interval.start
        clean = self._clean_open
        while clean and clean[0][0] <= start:
            heapq.heappop(clean)  # ended by now: finalized successes
        if self._dirty_end_max is not None and self._dirty_end_max > start:
            record.overlapped = True
            stats.collisions += 1
            self._probe_collision(record)
        if clean:
            # Every survivor overlaps the new record; drain the heap
            # (they all become overlapped) newest-first, matching the
            # historical reverse scan.
            colliders = [heapq.heappop(clean) for _ in range(len(clean))]
            colliders.sort(key=lambda entry: entry[1], reverse=True)
            for _end, _seq, other in colliders:
                other.overlapped = True
                stats.collisions += 1
                self._probe_collision(other)
                if not record.overlapped:
                    record.overlapped = True
                    stats.collisions += 1
                    self._probe_collision(record)
                other_end = other.interval.end
                if self._dirty_end_max is None or other_end > self._dirty_end_max:
                    self._dirty_end_max = other_end
        if record.overlapped:
            if self._dirty_end_max is None or interval.end > self._dirty_end_max:
                self._dirty_end_max = interval.end
        else:
            self._clean_seq += 1
            heapq.heappush(clean, (interval.end, self._clean_seq, record))
        self._transmissions.append(record)
        stats.transmissions += 1
        self._busy_internal += interval.duration
        if packet is None:
            stats.control_transmissions += 1
        if self._tracking:
            self._track_seq += 1
            heapq.heappush(
                self._track_heap, (interval.end, self._track_seq, record)
            )
        return record

    def _probe_collision(self, transmission: Transmission) -> None:
        """Fire one ``collision`` probe event for a newly overlapped record."""
        probes = self.probes
        if probes is not None and probes.collision:
            event = CollisionEvent(
                station_id=transmission.station_id,
                interval=self._timebase.interval_public(transmission.interval),
                is_control=transmission.is_control,
            )
            for callback in probes.collision:
                callback(event)

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------

    def feedback_for(self, slot: Interval) -> Feedback:
        """Per-slot feedback resolved in a single bounded scan.

        Equivalent to ``ACK`` if :meth:`successful_ending_within` finds a
        record, else ``BUSY`` if :meth:`feedback_has_activity`, else
        ``SILENCE`` — but walks the recent history once instead of
        twice.  This is the event loop's hot path; the overlap and
        ends-within predicates are inlined on purpose.
        """
        start = slot.start
        end = slot.end
        horizon = (
            None if self._max_duration is None else start - self._max_duration
        )
        activity = False
        for t in reversed(self._transmissions):
            t_interval = t.interval
            t_start = t_interval.start
            if horizon is not None and t_start <= horizon:
                break
            t_end = t_interval.end
            if not t.overlapped and start < t_end <= end:
                # A success ending inside the slot: ACK dominates BUSY.
                return Feedback.ACK
            if t_start < end and start < t_end:
                activity = True
        return Feedback.BUSY if activity else Feedback.SILENCE

    def feedback_has_activity(self, slot: Interval) -> bool:
        """True when any transmission overlaps ``slot``."""
        return any(
            t.interval.overlaps(slot) for t in self._relevant_reversed(slot.start)
        )

    def successful_ending_within(self, slot: Interval) -> Optional[Transmission]:
        """A successful transmission ending in ``(slot.start, slot.end]``, if any.

        Multiple back-to-back successes can end inside one long
        listening slot; the paper's feedback is still a single
        acknowledgment.  We return the latest-ending one; callers that
        need every success use :meth:`successes_ending_within`.
        """
        best: Optional[Transmission] = None
        for t in self._relevant_reversed(slot.start):
            if t.successful and t.interval.ends_within(slot):
                if best is None or t.interval.end > best.interval.end:
                    best = t
        return best

    def successes_ending_within(self, slot: Interval) -> List[Transmission]:
        """All successful transmissions ending in ``(slot.start, slot.end]``.

        Uses the duration-bounded reverse scan (a transmission starting
        more than one maximum duration before the slot cannot end inside
        it); results stay in chronological (start) order.
        """
        found = [
            t
            for t in self._relevant_reversed(slot.start)
            if t.successful and t.interval.ends_within(slot)
        ]
        found.reverse()
        return found

    def count_successes_up_to(self, moment: Time) -> int:
        """Number of successful transmissions ended by ``moment`` (inclusive).

        ``moment`` is a public time; the comparison against internal
        record endpoints is exact (see module docstring).
        """
        mark = self._timebase.floor_internal(as_time(moment))
        live = sum(
            1
            for t in self._transmissions
            if not t.overlapped and t.interval.end <= mark
        )
        return self._pruned_success_count + live

    # ------------------------------------------------------------------
    # Incremental success finalization (the SST fast path)
    # ------------------------------------------------------------------

    def start_success_tracking(self) -> None:
        """Begin maintaining the finalized-success counter incrementally.

        Seeds the counter from successes already pruned into stats and
        indexes the live records on an end-ordered heap; from here on
        :meth:`begin_transmission` keeps the heap current.  Idempotent.
        """
        if self._tracking:
            return
        self._tracking = True
        self._track_count = self._pruned_success_count
        self._track_first_end = self._first_success_internal
        heap = [
            (t.interval.end, index, t)
            for index, t in enumerate(self._transmissions)
        ]
        heapq.heapify(heap)
        self._track_heap = heap
        self._track_seq = len(heap)

    def finalized_successes(self, moment) -> int:
        """Successes with ``end <= moment`` (``moment`` in internal units).

        Requires :meth:`start_success_tracking`.  Amortised O(log
        history) per call: each record is popped exactly once, when
        simulation time first reaches its end — the instant its success
        flag becomes final (any overlapper must start before the end,
        and is recorded by then).  ``moment`` must be non-decreasing
        across calls, which the simulator's event order guarantees.
        """
        heap = self._track_heap
        while heap and heap[0][0] <= moment:
            end, _seq, record = heapq.heappop(heap)
            if not record.overlapped:
                self._track_count += 1
                if self._track_first_end is None or end < self._track_first_end:
                    self._track_first_end = end
        return self._track_count

    @property
    def first_finalized_success_end(self) -> Optional[Time]:
        """End of the earliest success seen by the tracker (public time)."""
        if self._track_first_end is None:
            return None
        return self._timebase.to_public(self._track_first_end)

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------

    def prune_before(self, low_water_mark: Time) -> None:
        """Drop transmission records that ended at or before the mark.

        ``low_water_mark`` is a public time; it must not exceed the
        earliest start of any still-open slot (a slot's feedback looks
        only at transmissions ending strictly after its own start).
        Success counts for pruned records are folded into
        :class:`ChannelStats`.
        """
        self._prune_internal(self._timebase.floor_internal(as_time(low_water_mark)))

    def _prune_internal(self, low_water_mark) -> None:
        """:meth:`prune_before` with the mark already in internal units."""
        keep: List[Transmission] = []
        for t in self._transmissions:
            if t.interval.end <= low_water_mark:
                if not t.overlapped:
                    self._pruned_success_count += 1
                    self._stats.successes += 1
                    self._success_internal += t.interval.duration
                    if (
                        self._first_success_internal is None
                        or t.interval.end < self._first_success_internal
                    ):
                        self._first_success_internal = t.interval.end
            else:
                keep.append(t)
        self._transmissions = keep

    def drain_all(self, end_of_time: Time) -> None:
        """Finalize every record (simulation over); updates stats fully."""
        self.prune_before(as_time(end_of_time) + 1)

    @property
    def live_records(self) -> List[Transmission]:
        """Transmission records not yet pruned (the recent history window).

        Under a tick-lattice timebase the returned records are copies
        with intervals converted to public Fractions; under the default
        Fraction timebase they are the channel's own records, as before.
        """
        if not self._timebase.is_lattice:
            return list(self._transmissions)
        interval_public = self._timebase.interval_public
        return [
            Transmission(
                station_id=t.station_id,
                interval=interval_public(t.interval),
                packet=t.packet,
                overlapped=t.overlapped,
            )
            for t in self._transmissions
        ]

    @property
    def total_successes_finalized(self) -> int:
        """Successes folded into stats so far (pruned records only)."""
        return self._pruned_success_count
