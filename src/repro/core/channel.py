"""Continuous-time shared channel with exact overlap resolution.

The channel is the paper's "base station" (Section II): it receives a
transmission successfully **iff no other transmission overlaps it in
real time**, and produces per-slot feedback for each station:

* ``ACK``     — a successful transmission ended inside the slot,
* ``SILENCE`` — nothing overlapped the slot,
* ``BUSY``    — activity overlapped the slot but no success ended in it.

Correctness of the feedback computation relies on event causality: the
simulator records every transmission at the moment its slot *starts*,
and only asks for feedback of slots ending at time ``t`` once every slot
starting before ``t`` has been recorded.  A transmission that ended at
``e <= t`` can only be overlapped by transmissions starting before
``e``, so its success is fully determined at time ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional

from ..obs.probes import CollisionEvent
from .errors import SimulationError
from .packet import Packet
from .timebase import Interval, Time


@dataclass(slots=True)
class Transmission:
    """One station's transmission occupying one of its slots.

    ``overlapped`` is maintained incrementally as later transmissions
    are recorded; a transmission is *successful* iff it is never
    overlapped.  Because any overlapping transmission must start before
    this one ends, the flag is final as soon as simulation time reaches
    ``interval.end``.
    """

    station_id: int
    interval: Interval
    packet: Optional[Packet]
    overlapped: bool = False

    @property
    def successful(self) -> bool:
        """True when no other transmission overlapped this one."""
        return not self.overlapped

    @property
    def is_control(self) -> bool:
        """True for control messages / empty signals (no packet aboard)."""
        return self.packet is None


@dataclass(slots=True)
class ChannelStats:
    """Aggregate channel counters, exact even after old records are pruned.

    ``collisions`` counts *transmissions that were overlapped* (each
    such transmission counted once), so a pairwise collision adds 2 and
    a k-way pile-up adds k.  A collision-free execution has
    ``collisions == 0`` — the invariant CA-ARRoW must satisfy.
    """

    transmissions: int = 0
    successes: int = 0
    collisions: int = 0
    control_transmissions: int = 0
    busy_time: Fraction = field(default_factory=lambda: Fraction(0))
    #: Total duration of *successful* transmissions (finalized records).
    #: ``horizon - success_time`` is the paper's wasted time (Def. 2).
    success_time: Fraction = field(default_factory=lambda: Fraction(0))


class Channel:
    """The shared medium: transmission registry + feedback oracle.

    The recent-transmission list is kept sorted by start time.
    :meth:`prune_before` lets the simulator discard transmissions that
    can no longer influence any future slot, keeping long stability runs
    bounded in memory while the :class:`ChannelStats` counters stay
    exact (successes are folded into the stats as records are pruned).
    """

    def __init__(
        self,
        max_transmission_duration: Optional[Fraction] = None,
        probes=None,
    ) -> None:
        self._transmissions: List[Transmission] = []
        self._pruned_success_count = 0
        self.stats = ChannelStats()
        #: Optional :class:`~repro.obs.probes.ProbeBus`; the channel
        #: fires one ``collision`` event per transmission that becomes
        #: overlapped (same counting as ``stats.collisions``).
        self.probes = probes
        #: End time of the first successful transmission observed so
        #: far.  For runs that prune in time order this is exact.
        self.first_success_end: Optional[Time] = None
        #: When set (the simulator passes R), scans over the start-
        #: sorted record list stop early: a transmission starting more
        #: than this long before an interval cannot reach into it.
        self._max_duration = max_transmission_duration

    def _relevant_reversed(self, threshold_start: Fraction):
        """Records that might intersect anything at/after ``threshold_start``.

        Iterates newest-first and stops once starts fall far enough in
        the past that the duration bound rules out any overlap.
        """
        if self._max_duration is None:
            yield from reversed(self._transmissions)
            return
        horizon = threshold_start - self._max_duration
        for record in reversed(self._transmissions):
            if record.interval.start <= horizon:
                return
            yield record

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def begin_transmission(
        self,
        station_id: int,
        interval: Interval,
        packet: Optional[Packet],
    ) -> Transmission:
        """Record a transmission occupying ``interval``.

        Must be called in non-decreasing order of ``interval.start``;
        the simulator guarantees this because transmissions begin at
        slot starts and events are processed in time order.
        """
        if (
            self._transmissions
            and interval.start < self._transmissions[-1].interval.start
        ):
            raise SimulationError(
                "transmissions must be recorded in start-time order: "
                f"{interval.start} after {self._transmissions[-1].interval.start}"
            )
        record = Transmission(station_id=station_id, interval=interval, packet=packet)
        for other in self._relevant_reversed(interval.start):
            if other.interval.overlaps(interval):
                if not other.overlapped:
                    other.overlapped = True
                    self.stats.collisions += 1
                    self._probe_collision(other)
                if not record.overlapped:
                    record.overlapped = True
                    self.stats.collisions += 1
                    self._probe_collision(record)
        self._transmissions.append(record)
        self.stats.transmissions += 1
        self.stats.busy_time += interval.duration
        if packet is None:
            self.stats.control_transmissions += 1
        return record

    def _probe_collision(self, transmission: Transmission) -> None:
        """Fire one ``collision`` probe event for a newly overlapped record."""
        probes = self.probes
        if probes is not None and probes.collision:
            event = CollisionEvent(
                station_id=transmission.station_id,
                interval=transmission.interval,
                is_control=transmission.is_control,
            )
            for callback in probes.collision:
                callback(event)

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------

    def feedback_has_activity(self, slot: Interval) -> bool:
        """True when any transmission overlaps ``slot``."""
        return any(
            t.interval.overlaps(slot) for t in self._relevant_reversed(slot.start)
        )

    def successful_ending_within(self, slot: Interval) -> Optional[Transmission]:
        """A successful transmission ending in ``(slot.start, slot.end]``, if any.

        Multiple back-to-back successes can end inside one long
        listening slot; the paper's feedback is still a single
        acknowledgment.  We return the latest-ending one; callers that
        need every success use :meth:`successes_ending_within`.
        """
        best: Optional[Transmission] = None
        for t in self._relevant_reversed(slot.start):
            if t.successful and t.interval.ends_within(slot):
                if best is None or t.interval.end > best.interval.end:
                    best = t
        return best

    def successes_ending_within(self, slot: Interval) -> List[Transmission]:
        """All successful transmissions ending in ``(slot.start, slot.end]``."""
        return [
            t
            for t in self._transmissions
            if t.successful and t.interval.ends_within(slot)
        ]

    def count_successes_up_to(self, moment: Time) -> int:
        """Number of successful transmissions ended by ``moment`` (inclusive)."""
        live = sum(
            1
            for t in self._transmissions
            if t.successful and t.interval.end <= moment
        )
        return self._pruned_success_count + live

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------

    def prune_before(self, low_water_mark: Time) -> None:
        """Drop transmission records that ended at or before the mark.

        ``low_water_mark`` must not exceed the earliest start of any
        still-open slot (a slot's feedback looks only at transmissions
        ending strictly after its own start).  Success counts for pruned
        records are folded into :class:`ChannelStats`.
        """
        keep: List[Transmission] = []
        for t in self._transmissions:
            if t.interval.end <= low_water_mark:
                if t.successful:
                    self._pruned_success_count += 1
                    self.stats.successes += 1
                    self.stats.success_time += t.interval.duration
                    if (
                        self.first_success_end is None
                        or t.interval.end < self.first_success_end
                    ):
                        self.first_success_end = t.interval.end
            else:
                keep.append(t)
        self._transmissions = keep

    def drain_all(self, end_of_time: Time) -> None:
        """Finalize every record (simulation over); updates stats fully."""
        self.prune_before(end_of_time + 1)

    @property
    def live_records(self) -> List[Transmission]:
        """Transmission records not yet pruned (the recent history window)."""
        return list(self._transmissions)

    @property
    def total_successes_finalized(self) -> int:
        """Successes folded into stats so far (pruned records only)."""
        return self._pruned_success_count
