"""Vector programs for the adaptive families — ABS and the ARRoWs.

The programs in :mod:`repro.core.batch` cover algorithms whose per-slot
decision is a single expression over current state (Aloha draw, turn
comparison, threshold count).  The adaptive families — ABS leader
election, AO-ARRoW, CA-ARRoW and the fault-tolerant CA-ARRoW — are
per-event *automata*: one ``on_slot_end`` call may traverse several
transitions (an ABS win immediately enters the drain state and
transmits; an observe-state round boundary immediately begins a fresh
election).  They vectorize under a masked-update / fixed-point
formulation:

* Every automaton field becomes a parallel array (``int8`` state codes,
  ``int64`` counters, ``bool`` flags).  Inner machines nest the same
  way: AO-ARRoW's per-election :class:`~repro.algorithms.abs_leader.
  AbsCore` is five more arrays, valid exactly for the members whose
  outer state is ``election``.
* One tick decomposes into a bounded chain of *masked sub-steps*, all
  computed from the tick-start state snapshot: feedback classification,
  then one disjoint mask per source state, then the follow-on
  transitions (win → drain entry, round boundary → fresh election)
  applied as further masked updates in object-transition order.  Each
  member starts the tick in exactly one state, so the source masks are
  disjoint and the chain needs no conflict resolution; re-running the
  chain on the post-state changes nothing, i.e. the per-tick update is
  the fixed point of its own masked system after one bounded pass.
* Event-order effects stay bit-exact for free: within a tick the object
  loop steps stations in ascending-id order, but no station's
  transition reads another station's *new* state (feedback was fixed
  when the slots ended), so the masked formulation commutes with the
  object order member-for-member — including any mid-tick prefix cut
  by ``max_events`` or ``run_until_success``.

The only scalar escape hatch is the fault-tolerant skip ladder: its
``(A_k, B_k)`` thresholds grow ~``R^2`` per level and overflow int64
near depth 30, and conflict-mode claims stagger by ``(2R)^(id-1)``, so
threshold comparisons there use exact Python integers.  The hot path is
protected by a vectorized gate on ``A_1`` (every ladder action needs at
least ``A_1`` consecutive silent slots, which a crash-free run never
accumulates), so the scalar loop runs only for members actually
climbing the ladder.

Error paths (:class:`~repro.core.errors.ProtocolError` on impossible
feedback) raise the canonical messages but, as everywhere in the batch
engine, the amount of work done before raising may differ from the
object loop; error paths are outside the parity contract.
"""

from __future__ import annotations

from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    np = None

from .errors import ProtocolError
from .batch import (
    _ABS_STATES,
    _A_TX_CTRL,
    _A_TX_PKT,
    _F_ACK,
    _F_BUSY,
    _F_SILENCE,
    AlgorithmProgram,
)

#: ``silent_run`` gate clamp for the fault-tolerant skip ladder.  No run
#: can accumulate 2^62 consecutive silent slots, so clamping ``A_1`` here
#: keeps the vectorized gate in int64 without changing reachable
#: behaviour (the scalar path re-checks against the exact integers).
_LADDER_GATE_MAX = 1 << 62

_ABS_SILENCE_ERROR = (
    "channel reported silence for a slot this station "
    "transmitted in — broken channel model"
)
_TX_SILENCE_ERROR = (
    "silence feedback on a transmitting slot — broken channel model"
)


class ABSLeaderElectionProgram(AlgorithmProgram):
    """Standalone ABS: the wrapper holds one :class:`AbsCore` forever
    (terminated stations listen without stepping the core), so the
    program is the core's five fields plus the outcome as arrays."""

    adaptive = True

    @classmethod
    def check(cls, fleet) -> Optional[str]:
        for algo in fleet:
            core = algo.core
            if (
                core.threshold0_override is not None
                or core.threshold1_override is not None
            ):
                return (
                    "ABS with listening-threshold overrides is "
                    "object-path only"
                )
        return None

    def load(self) -> None:
        algos = self.algos
        aindex = {name: code for code, name in enumerate(_ABS_STATES)}
        outdex = {None: 0, "won": 1, "eliminated": 2}
        cores = [a.core for a in algos]
        self.ast = np.array([aindex[c.state] for c in cores], dtype=np.int8)
        self.outcome = np.array(
            [outdex[c.outcome] for c in cores], dtype=np.int8
        )
        self.by_ack = np.array([c.eliminated_by_ack for c in cores], dtype=bool)
        self.phase = np.array([c.phase for c in cores], dtype=np.int64)
        self.silent = np.array([c.silent_heard for c in cores], dtype=np.int64)
        self.threshold = np.array([c.threshold for c in cores], dtype=np.int64)
        self.used = np.array([c.slots_used for c in cores], dtype=np.int64)
        self.t0 = np.array([c._threshold0 for c in cores], dtype=np.int64)
        self.t1 = np.array([c._threshold1 for c in cores], dtype=np.int64)
        self.carries = np.array([c.carries_packet for c in cores], dtype=bool)

    def step(self, m, fb, q, new_index):
        ast = self.ast[m]
        outcome = self.outcome[m]
        phase = self.phase[m]
        silent = self.silent[m]
        threshold = self.threshold[m]
        sids = self.kernel.sids[m]
        sil = fb == _F_SILENCE
        busy = fb == _F_BUSY
        acked = fb == _F_ACK

        live = outcome == 0
        self.used[m] += live  # AbsCore.step: slots_used += 1
        a0 = live & (ast == 0)
        a1 = live & (ast == 1)
        a2 = live & (ast == 2)
        if bool(np.any(a2 & sil)):
            raise ProtocolError(_ABS_SILENCE_ERROR)

        elim_ack = (a0 | a1) & acked
        elim_busy = a1 & busy
        won = a2 & acked

        new_out = outcome.copy()
        new_by_ack = self.by_ack[m].copy()
        new_out[elim_ack] = 2
        new_by_ack[elim_ack] = True
        new_out[elim_busy] = 2
        new_by_ack[elim_busy] = False
        new_out[won] = 1

        arm = a0 & sil  # box (1) -> boxes (3)/(4)
        bit = (sids >> phase) & 1
        threshold = np.where(
            arm, np.where(bit == 1, self.t1[m], self.t0[m]), threshold
        )
        silent = np.where(arm, 0, silent)
        ast_n = np.where(arm, 1, ast)
        count = a1 & sil
        silent = silent + count
        fire = count & (silent >= threshold)  # box (5): transmit
        ast_n = np.where(fire, 2, ast_n)
        next_phase = a2 & busy  # collision: next bit, back to box (1)
        phase = phase + next_phase
        ast_n = np.where(next_phase, 0, ast_n)

        acts = np.zeros(len(m), dtype=np.int8)
        carries = self.carries[m]
        acts[fire & carries] = _A_TX_PKT
        acts[fire & ~carries] = _A_TX_CTRL

        self.ast[m] = ast_n
        self.outcome[m] = new_out
        self.by_ack[m] = new_by_ack
        self.phase[m] = phase
        self.silent[m] = silent
        self.threshold[m] = threshold
        return acts

    def store(self) -> None:
        outcomes = (None, "won", "eliminated")
        for i, algo in enumerate(self.algos):
            core = algo.core
            core.state = _ABS_STATES[int(self.ast[i])]
            core.outcome = outcomes[int(self.outcome[i])]
            core.eliminated_by_ack = bool(self.by_ack[i])
            core.phase = int(self.phase[i])
            core.silent_heard = int(self.silent[i])
            core.threshold = int(self.threshold[i])
            core.slots_used = int(self.used[i])


_AO_STATES = ("observe", "election", "drain", "sync_wait", "sync_tx")


class AOArrowProgram(AlgorithmProgram):
    """AO-ARRoW: the Fig. 5 outer machine plus a nested AbsCore per
    electing member.  Members in ``election`` state always hold a live
    core with ``outcome is None`` (the object automaton nulls the core
    on every exit), so :meth:`store` reconstructs cores from arrays."""

    adaptive = True

    @classmethod
    def check(cls, fleet) -> Optional[str]:
        for algo in fleet:
            core = algo.core
            if core is not None and (
                core.threshold0_override is not None
                or core.threshold1_override is not None
            ):
                return (
                    "AO-ARRoW with ABS threshold overrides is "
                    "object-path only"
                )
        return None

    def load(self) -> None:
        from ..analysis.bounds import (
            abs_listen_threshold_bit0,
            abs_listen_threshold_bit1,
        )

        algos = self.algos
        sindex = {name: code for code, name in enumerate(_AO_STATES)}
        aindex = {name: code for code, name in enumerate(_ABS_STATES)}
        n = len(algos)
        self.state = np.array([sindex[a.state] for a in algos], dtype=np.int8)
        self.wait = np.array([a.wait for a in algos], dtype=np.int64)
        self.silence = np.array([a.silence_run for a in algos], dtype=np.int64)
        self.saw = np.array([a.saw_ack for a in algos], dtype=bool)
        self.sync = np.array([a.sync_count for a in algos], dtype=np.int64)
        self.n = np.array([a.n_stations for a in algos], dtype=np.int64)
        self.sync_threshold = np.array(
            [a.sync_threshold for a in algos], dtype=np.int64
        )
        self.sync_extra = np.array(
            [a.sync_extra for a in algos], dtype=np.int64
        )
        self.t0 = np.array(
            [abs_listen_threshold_bit0(a.max_slot_length) for a in algos],
            dtype=np.int64,
        )
        self.t1 = np.array(
            [abs_listen_threshold_bit1(a.max_slot_length) for a in algos],
            dtype=np.int64,
        )
        self.ast = np.zeros(n, dtype=np.int8)
        self.aphase = np.zeros(n, dtype=np.int64)
        self.asil = np.zeros(n, dtype=np.int64)
        self.athr = np.zeros(n, dtype=np.int64)
        self.aused = np.zeros(n, dtype=np.int64)
        for i, algo in enumerate(algos):
            core = algo.core
            if core is not None:
                self.ast[i] = aindex[core.state]
                self.aphase[i] = core.phase
                self.asil[i] = core.silent_heard
                self.athr[i] = core.threshold
                self.aused[i] = core.slots_used
        stats = [a.stats for a in algos]
        self.entered = np.array(
            [s.elections_entered for s in stats], dtype=np.int64
        )
        self.won_count = np.array(
            [s.elections_won for s in stats], dtype=np.int64
        )
        self.drained = np.array(
            [s.packets_drained for s in stats], dtype=np.int64
        )
        self.sync_sent = np.array(
            [s.sync_signals_sent for s in stats], dtype=np.int64
        )
        self.rounds = np.array(
            [s.rounds_observed for s in stats], dtype=np.int64
        )
        self.drain_coll = np.array(
            [s.drain_collisions for s in stats], dtype=np.int64
        )

    def step(self, m, fb, q, new_index):
        st = self.state[m]
        wait = self.wait[m].copy()
        silence = self.silence[m].copy()
        saw = self.saw[m].copy()
        sync = self.sync[m].copy()
        ast = self.ast[m]
        aphase = self.aphase[m].copy()
        asil = self.asil[m].copy()
        athr = self.athr[m].copy()
        sids = self.kernel.sids[m]
        sil = fb == _F_SILENCE
        busy = fb == _F_BUSY
        acked = fb == _F_ACK
        act = ~sil
        has_q = q > 0

        acts = np.zeros(len(m), dtype=np.int8)
        new_st = st.copy()
        begin_el = np.zeros(len(m), dtype=bool)

        # --- election members: one AbsCore.step each -----------------
        el = st == 1
        self.aused[m] += el
        e0 = el & (ast == 0)
        e1 = el & (ast == 1)
        e2 = el & (ast == 2)
        if bool(np.any(e2 & sil)):
            raise ProtocolError(_ABS_SILENCE_ERROR)
        elim_ack = (e0 | e1) & acked
        elim_busy = e1 & busy
        arm = e0 & sil
        bit = (sids >> aphase) & 1
        athr = np.where(arm, np.where(bit == 1, self.t1[m], self.t0[m]), athr)
        asil = np.where(arm, 0, asil)
        ast_n = np.where(arm, 1, ast)
        count = e1 & sil
        asil = asil + count
        fire = count & (asil >= athr)
        ast_n = np.where(fire, 2, ast_n)
        acts[fire] = _A_TX_PKT  # AO-ARRoW cores carry packets
        collide = e2 & busy
        aphase = aphase + collide
        ast_n = np.where(collide, 0, ast_n)
        won = e2 & acked
        self.won_count[m] += won
        drain_enter = won & has_q
        new_st[drain_enter] = 2
        acts[drain_enter] = _A_TX_PKT
        finish_win = won & ~drain_enter

        # --- drain members -------------------------------------------
        dr = st == 2
        if bool(np.any(dr & sil)):
            raise ProtocolError(_TX_SILENCE_ERROR)
        dr_ack = dr & acked
        self.drained[m] += dr_ack
        dr_busy = dr & busy
        self.drain_coll[m] += dr_busy
        acts[dr_busy] = _A_TX_PKT
        dr_more = dr_ack & has_q
        acts[dr_more] = _A_TX_PKT
        dr_finish = dr_ack & ~dr_more

        # _finish_own_round: withhold, then observe with saw_ack=False.
        fin = finish_win | dr_finish
        wait[fin] = self.n[m][fin] - 1
        new_st[fin] = 0
        silence[fin] = 0
        saw[fin] = False
        # Eliminated: observe with saw_ack = eliminated-by-ack.
        elim = elim_ack | elim_busy
        new_st[elim] = 0
        silence[elim] = 0
        saw[elim] = elim_ack[elim]

        # --- sync_wait members ---------------------------------------
        sw = st == 3
        sw_act = sw & act  # another station's sync signal: rejoin
        begin_el |= sw_act
        sw_sil = sw & sil
        sync = sync + sw_sil
        to_tx = sw_sil & (sync >= self.sync_extra[m])
        new_st[to_tx] = 4
        acts[to_tx] = _A_TX_PKT

        # --- sync_tx members -----------------------------------------
        sx = st == 4
        if bool(np.any(sx & sil)):
            raise ProtocolError(_TX_SILENCE_ERROR)
        self.sync_sent[m] += sx
        sx_el = sx & has_q
        begin_el |= sx_el
        sx_ob = sx & ~has_q
        new_st[sx_ob] = 0
        silence[sx_ob] = 0
        saw[sx_ob] = False

        # --- observe members -----------------------------------------
        ob = st == 0
        # Activity after a crossed threshold is a sync signal (box (9)):
        # the comparison uses the pre-reset silence run.
        hot = ob & act & (silence >= self.sync_threshold[m])
        wait[hot] = 0
        silence[hot] = 0
        saw[hot] = False
        begin_el |= hot & has_q
        cold = ob & act & ~hot
        saw |= cold & acked
        silence[cold] = 0
        ob_sil = ob & sil
        bound = ob_sil & saw  # round boundary: ack then quiet
        silence = silence + ob_sil
        saw[bound] = False
        self.rounds[m] += bound
        dec = bound & (wait > 0)
        wait[dec] -= 1
        begin_el |= bound & has_q & (wait == 0)
        long_sil = ob_sil & ~bound & (silence >= self.sync_threshold[m])
        wait[long_sil] = 0
        to_sw = long_sil & has_q
        new_st[to_sw] = 3
        sync[to_sw] = 0

        # --- fresh elections (box (2)); action is core.start(): LISTEN.
        self.entered[m] += begin_el
        new_st[begin_el] = 1
        ast_n = np.where(begin_el, 0, ast_n)
        aphase[begin_el] = 0
        asil[begin_el] = 0
        athr[begin_el] = 0
        used = self.aused[m]
        used[begin_el] = 0
        self.aused[m] = used

        self.state[m] = new_st
        self.wait[m] = wait
        self.silence[m] = silence
        self.saw[m] = saw
        self.sync[m] = sync
        self.ast[m] = ast_n
        self.aphase[m] = aphase
        self.asil[m] = asil
        self.athr[m] = athr
        return acts

    def store(self) -> None:
        from ..algorithms.abs_leader import AbsCore

        for i, algo in enumerate(self.algos):
            algo.state = _AO_STATES[int(self.state[i])]
            algo.wait = int(self.wait[i])
            algo.silence_run = int(self.silence[i])
            algo.saw_ack = bool(self.saw[i])
            algo.sync_count = int(self.sync[i])
            if self.state[i] == 1:
                core = algo.core
                if core is None:
                    core = AbsCore(
                        station_id=algo.station_id,
                        max_slot_length=algo.max_slot_length,
                        carries_packet=True,
                    )
                    algo.core = core
                core.state = _ABS_STATES[int(self.ast[i])]
                core.phase = int(self.aphase[i])
                core.silent_heard = int(self.asil[i])
                core.threshold = int(self.athr[i])
                core.slots_used = int(self.aused[i])
            else:
                algo.core = None
            stats = algo.stats
            stats.elections_entered = int(self.entered[i])
            stats.elections_won = int(self.won_count[i])
            stats.packets_drained = int(self.drained[i])
            stats.sync_signals_sent = int(self.sync_sent[i])
            stats.rounds_observed = int(self.rounds[i])
            stats.drain_collisions = int(self.drain_coll[i])


_CA_STATES = ("wait_end", "gap", "transmitting")


class CAArrowProgram(AlgorithmProgram):
    """CA-ARRoW: the Fig. 6 turn ring as arrays; per-member ``gap_slots``
    supports the ablation override without demoting."""

    adaptive = True

    def load(self) -> None:
        algos = self.algos
        index = {name: code for code, name in enumerate(_CA_STATES)}
        self.state = np.array([index[a.state] for a in algos], dtype=np.int8)
        self.turn = np.array([a.turn for a in algos], dtype=np.int64)
        self.heard = np.array([a.heard_activity for a in algos], dtype=bool)
        self.gap_count = np.array([a.gap_count for a in algos], dtype=np.int64)
        self.noise = np.array([a._noise_turn for a in algos], dtype=bool)
        self.n = np.array([a.n_stations for a in algos], dtype=np.int64)
        self.gap_slots = np.array([a.gap_slots for a in algos], dtype=np.int64)
        stats = [a.stats for a in algos]
        self.turns_taken = np.array(
            [s.turns_taken for s in stats], dtype=np.int64
        )
        self.packets_sent = np.array(
            [s.packets_sent for s in stats], dtype=np.int64
        )
        self.empty_signals = np.array(
            [s.empty_signals_sent for s in stats], dtype=np.int64
        )
        self.unexpected_busy = np.array(
            [s.unexpected_busy for s in stats], dtype=np.int64
        )

    def step(self, m, fb, q, new_index):
        st = self.state[m]
        turn = self.turn[m].copy()
        heard = self.heard[m].copy()
        gap_count = self.gap_count[m].copy()
        noise = self.noise[m]
        sil = fb == _F_SILENCE
        busy = fb == _F_BUSY
        acked = fb == _F_ACK
        act = ~sil
        has_q = q > 0

        tx = st == 2
        if bool(np.any(tx & sil)):
            raise ProtocolError(_TX_SILENCE_ERROR)
        acts = np.zeros(len(m), dtype=np.int8)
        new_st = st.copy()
        new_noise = noise.copy()

        retry = tx & busy
        self.unexpected_busy[m] += retry
        acts[retry] = np.where(noise[retry], _A_TX_CTRL, _A_TX_PKT)
        done = tx & acked
        done_noise = done & noise
        self.empty_signals[m] += done_noise
        done_pkt = done & ~noise
        self.packets_sent[m] += done_pkt
        burst_more = done_pkt & has_q
        acts[burst_more] = _A_TX_PKT

        waiting = st == 0
        heard |= waiting & act
        in_gap = st == 1
        gap_count[in_gap & act] = 0

        advance = done_noise | (done_pkt & ~burst_more)
        advance |= waiting & sil & self.heard[m]
        turn[advance] = turn[advance] % self.n[m][advance] + 1
        heard[advance] = False
        to_gap = advance & (turn == self.kernel.sids[m])
        new_st[to_gap] = 1
        gap_count[to_gap] = 0
        new_st[advance & ~to_gap] = 0

        counting = in_gap & sil
        gap_count = gap_count + counting
        begin = counting & (gap_count >= self.gap_slots[m])
        self.turns_taken[m] += begin
        new_st[begin] = 2
        begin_pkt = begin & has_q
        begin_ctrl = begin & ~has_q
        new_noise[begin_pkt] = False
        new_noise[begin_ctrl] = True
        acts[begin_pkt] = _A_TX_PKT
        acts[begin_ctrl] = _A_TX_CTRL

        self.state[m] = new_st
        self.turn[m] = turn
        self.heard[m] = heard
        self.gap_count[m] = gap_count
        self.noise[m] = new_noise
        return acts

    def store(self) -> None:
        for i, algo in enumerate(self.algos):
            algo.state = _CA_STATES[int(self.state[i])]
            algo.turn = int(self.turn[i])
            algo.heard_activity = bool(self.heard[i])
            algo.gap_count = int(self.gap_count[i])
            algo._noise_turn = bool(self.noise[i])
            stats = algo.stats
            stats.turns_taken = int(self.turns_taken[i])
            stats.packets_sent = int(self.packets_sent[i])
            stats.empty_signals_sent = int(self.empty_signals[i])
            stats.unexpected_busy = int(self.unexpected_busy[i])


_FT_STATES = ("wait_end", "gap", "transmitting", "claim")


class FaultTolerantCAArrowProgram(AlgorithmProgram):
    """Fault-tolerant CA-ARRoW: the ring vectorizes like CA-ARRoW; the
    skip ladder stays scalar behind a vectorized ``A_1`` gate because
    its thresholds overflow int64 (geometric in ``R^2`` per level, and
    conflict-mode claims scale by ``(2R)^(id-1)``)."""

    adaptive = True

    def load(self) -> None:
        algos = self.algos
        index = {name: code for code, name in enumerate(_FT_STATES)}
        self.state = np.array([index[a.state] for a in algos], dtype=np.int8)
        self.turn = np.array([a.turn for a in algos], dtype=np.int64)
        self.heard = np.array([a.heard_activity for a in algos], dtype=bool)
        self.gap_count = np.array([a.gap_count for a in algos], dtype=np.int64)
        self.noise = np.array([a._noise_turn for a in algos], dtype=bool)
        self.silent = np.array([a.silent_run for a in algos], dtype=np.int64)
        self.skip = np.array([a.skip_count for a in algos], dtype=np.int64)
        self.conflict = np.array([a.conflict_mode for a in algos], dtype=bool)
        self.ladder_rounds = np.array(
            [a.ladder_rounds for a in algos], dtype=np.int64
        )
        self.claimflag = np.array(
            [a._current_activity_is_claim for a in algos], dtype=bool
        )
        self.n = np.array([a.n_stations for a in algos], dtype=np.int64)
        self.gap_slots = np.array([a.gap_slots for a in algos], dtype=np.int64)
        self.a1 = np.array(
            [min(a.ladder[0][0], _LADDER_GATE_MAX) for a in algos],
            dtype=np.int64,
        )
        stats = [a.stats for a in algos]
        self.turns_taken = np.array(
            [s.turns_taken for s in stats], dtype=np.int64
        )
        self.packets_sent = np.array(
            [s.packets_sent for s in stats], dtype=np.int64
        )
        self.empty_signals = np.array(
            [s.empty_signals_sent for s in stats], dtype=np.int64
        )
        self.skips = np.array([s.skips for s in stats], dtype=np.int64)
        self.recoveries = np.array(
            [s.recoveries_claimed for s in stats], dtype=np.int64
        )
        self.unexpected_busy = np.array(
            [s.unexpected_busy for s in stats], dtype=np.int64
        )

    def step(self, m, fb, q, new_index):
        st = self.state[m]
        turn = self.turn[m].copy()
        heard = self.heard[m].copy()
        gap_count = self.gap_count[m].copy()
        noise = self.noise[m]
        silent = self.silent[m].copy()
        skip = self.skip[m].copy()
        conflict = self.conflict[m].copy()
        lrounds = self.ladder_rounds[m].copy()
        claimflag = self.claimflag[m].copy()
        n = self.n[m]
        sids = self.kernel.sids[m]
        sil = fb == _F_SILENCE
        busy = fb == _F_BUSY
        acked = fb == _F_ACK
        act = ~sil
        has_q = q > 0

        tx = st == 2
        if bool(np.any(tx & sil)):
            raise ProtocolError(_TX_SILENCE_ERROR)
        acts = np.zeros(len(m), dtype=np.int8)
        new_st = st.copy()

        # --- transmitting members ------------------------------------
        tx_busy = tx & busy
        self.unexpected_busy[m] += tx_busy
        conflict[tx_busy] = True
        claimflag[tx_busy] = False
        new_st[tx_busy] = 0
        heard[tx_busy] = True
        tx_ack = tx & acked
        conflict[tx_ack] = False
        ack_noise = tx_ack & noise
        self.empty_signals[m] += ack_noise
        ack_pkt = tx_ack & ~noise
        self.packets_sent[m] += ack_pkt
        burst_more = ack_pkt & has_q
        acts[burst_more] = _A_TX_PKT
        silent[tx] = 0
        skip[tx] = 0

        # --- activity heard by non-transmitting members --------------
        ntx_act = ~tx & act
        # Classification uses the pre-reset silent run: a claim follows
        # a silence every station counted past A_1.
        claimy = ntx_act & (silent >= self.a1[m])
        lrounds = lrounds + claimy
        ring_reset = claimy & (lrounds >= n)
        lrounds[ring_reset] = 0
        turn[ring_reset] = 0
        conflict[ring_reset] = False
        claimflag[claimy] = True
        silent[ntx_act] = 0
        skip[ntx_act] = 0
        from_claim = ntx_act & (st == 3)
        new_st[from_claim] = 0
        act_gap = ntx_act & (st == 1)
        gap_count[act_gap] = 0
        heard[ntx_act & (st != 1)] = True

        # --- silence heard by non-transmitting members ---------------
        ntx_sil = ~tx & sil
        silent = silent + ntx_sil
        g_sil = ntx_sil & (st == 1)
        gap_count = gap_count + g_sil
        begin = g_sil & (gap_count >= self.gap_slots[m])
        silent[begin] = 0
        skip[begin] = 0
        self.turns_taken[m] += begin
        new_st[begin] = 2
        new_noise = noise.copy()
        begin_pkt = begin & has_q
        begin_ctrl = begin & ~has_q
        new_noise[begin_pkt] = False
        new_noise[begin_ctrl] = True
        acts[begin_pkt] = _A_TX_PKT
        acts[begin_ctrl] = _A_TX_CTRL
        w_end = ntx_sil & (st == 0) & self.heard[m]
        silent[w_end] = 1  # this silent slot starts the quiet period

        # _advance_turn_normal for finished turns and observed turn ends.
        advance = ack_noise | (ack_pkt & ~burst_more) | w_end
        adv_claim = advance & claimflag
        claimflag[adv_claim] = False
        lrounds[advance & ~adv_claim] = 0
        turn[advance] = turn[advance] % n[advance] + 1
        heard[advance] = False
        to_gap = advance & (turn == sids)
        new_st[to_gap] = 1
        gap_count[to_gap] = 0
        new_st[advance & ~to_gap] = 0

        # --- the skip ladder (scalar, exact integers) ----------------
        # Only wait_end-without-activity and claim members consult it,
        # and every ladder action needs silent_run >= A_1.
        rest = ntx_sil & ~g_sil & ~w_end
        hot = rest & (silent >= self.a1[m])
        if bool(np.any(hot)):
            from ..algorithms.ca_arrow_ft import _ceil

            for j in np.nonzero(hot)[0]:
                algo = self.algos[int(m[j])]
                run = int(silent[j])
                if st[j] == 3:  # claim: speak once B_k is reached
                    b_k = algo.ladder[int(skip[j]) - 1][1]
                    if conflict[j]:
                        b_k = _ceil(
                            b_k
                            * (2 * algo.max_slot_length)
                            ** (algo.station_id - 1)
                        )
                    if run >= b_k:
                        self.recoveries[m[j]] += 1
                        lrounds[j] += 1
                        if lrounds[j] >= n[j]:
                            lrounds[j] = 0
                            turn[j] = 0
                            conflict[j] = False
                        claimflag[j] = True
                        silent[j] = 0
                        skip[j] = 0
                        self.turns_taken[m[j]] += 1
                        new_st[j] = 2
                        if has_q[j]:
                            new_noise[j] = False
                            acts[j] = _A_TX_PKT
                        else:
                            new_noise[j] = True
                            acts[j] = _A_TX_CTRL
                else:  # wait_end without observed activity: skip ahead
                    if skip[j] >= len(algo.ladder):
                        continue  # ladder exhausted; stay quiet
                    a_k = algo.ladder[int(skip[j])][0]
                    if run >= a_k:
                        turn[j] = turn[j] % n[j] + 1
                        skip[j] += 1
                        self.skips[m[j]] += 1
                        heard[j] = False
                        new_st[j] = 3 if turn[j] == sids[j] else 0

        self.state[m] = new_st
        self.turn[m] = turn
        self.heard[m] = heard
        self.gap_count[m] = gap_count
        self.noise[m] = new_noise
        self.silent[m] = silent
        self.skip[m] = skip
        self.conflict[m] = conflict
        self.ladder_rounds[m] = lrounds
        self.claimflag[m] = claimflag
        return acts

    def store(self) -> None:
        for i, algo in enumerate(self.algos):
            algo.state = _FT_STATES[int(self.state[i])]
            algo.turn = int(self.turn[i])
            algo.heard_activity = bool(self.heard[i])
            algo.gap_count = int(self.gap_count[i])
            algo._noise_turn = bool(self.noise[i])
            algo.silent_run = int(self.silent[i])
            algo.skip_count = int(self.skip[i])
            algo.conflict_mode = bool(self.conflict[i])
            algo.ladder_rounds = int(self.ladder_rounds[i])
            algo._current_activity_is_claim = bool(self.claimflag[i])
            stats = algo.stats
            stats.turns_taken = int(self.turns_taken[i])
            stats.packets_sent = int(self.packets_sent[i])
            stats.empty_signals_sent = int(self.empty_signals[i])
            stats.skips = int(self.skips[i])
            stats.recoveries_claimed = int(self.recoveries[i])
            stats.unexpected_busy = int(self.unexpected_busy[i])
