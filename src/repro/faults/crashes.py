"""Fail-stop crash injection (Section VII's "impact of failures").

The paper leaves station failures as an open problem; this module
supplies the model the extension experiments use.  A crash is
*fail-stop in the radio sense*: from its crash point on, the station
never transmits again — on a content-opaque channel a dead station is
indistinguishable from a silent one, which is precisely what breaks
turn-based protocols (the live successor waits forever for a holder
that will never speak).

Crashes are specified in the station's own slot count (the adversary
may equivalently pick a real time; slot count keeps the wrapper a pure
automaton and the run replayable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import ConfigurationError
from ..core.station import LISTEN, Action, SlotContext, StationAlgorithm


class Crashable(StationAlgorithm):
    """Wrap any station algorithm with a fail-stop crash point.

    Until slot ``crash_at_slot`` the wrapper is transparent; from that
    slot on, the station only listens (its radio is dead — we model the
    receive side as dead too by discarding feedback, but since a dead
    station emits nothing, feeding it or not is unobservable to
    others).

    ``crash_at_slot=None`` never crashes, so a mixed fleet can be built
    uniformly.
    """

    def __init__(
        self, inner: StationAlgorithm, crash_at_slot: Optional[int]
    ) -> None:
        if crash_at_slot is not None and crash_at_slot < 0:
            raise ConfigurationError(
                f"crash slot must be >= 0, got {crash_at_slot}"
            )
        self.inner = inner
        self.crash_at_slot = crash_at_slot
        self.crashed = False
        # Capability flags mirror the inner algorithm so the simulator
        # enforces the same rules pre-crash.
        self.uses_control_messages = inner.uses_control_messages
        self.collision_free_by_design = inner.collision_free_by_design

    def _check_crash(self, ctx: SlotContext) -> bool:
        if (
            not self.crashed
            and self.crash_at_slot is not None
            and ctx.slot_index >= self.crash_at_slot
        ):
            self.crashed = True
        return self.crashed

    def first_action(self, ctx: SlotContext) -> Action:
        if self._check_crash(ctx):
            return LISTEN
        return self.inner.first_action(ctx)

    def on_slot_end(self, ctx: SlotContext) -> Action:
        if self.crashed:
            return LISTEN
        if self._check_crash(ctx):
            return LISTEN
        return self.inner.on_slot_end(ctx)

    @property
    def is_done(self) -> bool:
        return self.inner.is_done if not self.crashed else False


def crash_fleet(
    algorithms: Dict[int, StationAlgorithm],
    crash_slots: Dict[int, int],
) -> Dict[int, Crashable]:
    """Wrap a whole fleet; stations absent from ``crash_slots`` never die."""
    unknown = set(crash_slots) - set(algorithms)
    if unknown:
        raise ConfigurationError(f"crash schedule names unknown stations {unknown}")
    return {
        sid: Crashable(algo, crash_slots.get(sid))
        for sid, algo in algorithms.items()
    }
