"""Adversarial jamming stations (cf. the jamming MAC line of work [8]).

A jammer is just another station whose transmissions carry no packets
and whose goal is to destroy others' transmissions by overlapping
them.  Two budgeted disciplines are provided:

* :class:`PeriodicJammer` — jams ``burst`` consecutive slots out of
  every ``period`` (an oblivious duty-cycle jammer);
* :class:`ReactiveJammer` — listens, and jams for ``burst`` slots
  whenever it hears activity (a carrier-sensing jammer: it cannot hit
  the transmission it heard — that one already ended — but it tramples
  the withholding/drain slots that follow, which is exactly what hurts
  ARRoW-style protocols).

Both respect a total jam budget so experiments can sweep "fraction of
time jammed" against achieved throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.station import (
    LISTEN,
    TRANSMIT_CONTROL,
    Action,
    SlotContext,
    StationAlgorithm,
)


@dataclass(slots=True)
class JamStats:
    """Slots actually spent jamming."""

    jam_slots: int = 0


class PeriodicJammer(StationAlgorithm):
    """Jam ``burst`` slots at the start of every ``period`` slots."""

    uses_control_messages = True

    def __init__(self, burst: int, period: int, budget: int = 10**9) -> None:
        if burst < 1 or period < burst:
            raise ConfigurationError(
                f"need 1 <= burst <= period, got burst={burst} period={period}"
            )
        self.burst = burst
        self.period = period
        self.budget = budget
        self.stats = JamStats()

    def _decide(self, slot_index: int) -> Action:
        if self.stats.jam_slots >= self.budget:
            return LISTEN
        if slot_index % self.period < self.burst:
            self.stats.jam_slots += 1
            return TRANSMIT_CONTROL
        return LISTEN

    def first_action(self, ctx: SlotContext) -> Action:
        return self._decide(0)

    def on_slot_end(self, ctx: SlotContext) -> Action:
        return self._decide(ctx.slot_index)


class ReactiveJammer(StationAlgorithm):
    """Jam ``burst`` slots after each slot with observed activity."""

    uses_control_messages = True

    def __init__(self, burst: int, budget: int = 10**9, cooldown: int = 0) -> None:
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        if cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {cooldown}")
        self.burst = burst
        self.budget = budget
        self.cooldown = cooldown
        self._jam_remaining = 0
        self._cooldown_remaining = 0
        self.stats = JamStats()

    def first_action(self, ctx: SlotContext) -> Action:
        return LISTEN

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self._jam_remaining > 0 and self.stats.jam_slots < self.budget:
            self._jam_remaining -= 1
            self.stats.jam_slots += 1
            if self._jam_remaining == 0:
                self._cooldown_remaining = self.cooldown
            return TRANSMIT_CONTROL
        self._jam_remaining = 0
        if self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1
            return LISTEN
        if feedback.is_activity and self.stats.jam_slots < self.budget:
            self._jam_remaining = self.burst - 1
            self.stats.jam_slots += 1
            return TRANSMIT_CONTROL
        return LISTEN
