"""Fault injection: fail-stop crashes and adversarial jamming."""

from .crashes import Crashable, crash_fleet
from .jamming import JamStats, PeriodicJammer, ReactiveJammer

__all__ = [
    "Crashable",
    "JamStats",
    "PeriodicJammer",
    "ReactiveJammer",
    "crash_fleet",
]
