"""Adaptive look-ahead slot adversaries.

The model's adversary is *online and omniscient*: it fixes a slot's
length knowing the full system state, and because every station
algorithm is a deterministic cloneable automaton, it can simulate
futures before committing (see DESIGN.md §2).  Two adversaries here
realize that power at different price points:

* :class:`MaxOverlapAdversary` — a cheap heuristic: stretch every
  *transmitting* slot to reach just past other stations' upcoming slot
  boundaries (maximizing the chance of colliding with whatever they
  send next) and keep listening slots minimal.  No cloning.
* :class:`CloningGreedyAdversary` — the real thing: at every decision
  it deep-copies the simulator, completes the pending slot with each
  candidate length, runs the copy ``horizon_events`` ahead under a
  neutral fallback schedule, scores the outcome (collisions up,
  successes down, backlog up), and commits the worst-for-the-protocol
  candidate.  Expensive (a full system copy per candidate per slot) —
  meant for short adversarial-stress runs and for validating that the
  cheap heuristics are not missing big attacks.
"""

from __future__ import annotations

import copy
from fractions import Fraction
from typing import List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.timebase import TimeLike, as_time
from .adversary import FixedLength, SlotAdversary


class MaxOverlapAdversary(SlotAdversary):
    """Stretch transmissions across other stations' next boundaries.

    For a transmitting slot opening at time ``t``, pick the smallest
    length in ``[1, R]`` that covers the latest upcoming slot boundary
    of any other station (clamped to ``R``): if any of them transmits
    next, the transmissions overlap.  Listening slots get length 1 so
    the victim's decision points come thick and fast.
    """

    def __init__(self, max_length: TimeLike) -> None:
        self.max_length = as_time(max_length)

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        runtime = sim.stations[station_id]
        action = runtime.action
        if action is None or not action.is_transmit:
            return Fraction(1)
        start = sim.now
        latest_boundary = start
        for other_id, other in sim.stations.items():
            if other_id == station_id:
                continue
            if other.slot_end > latest_boundary:
                latest_boundary = other.slot_end
        reach = latest_boundary - start
        if reach < 1:
            return Fraction(1)
        return min(self.max_length, reach + Fraction(1, 4))

    def lattice_denominator(self) -> None:
        # The produced lengths depend on run-dependent boundary gaps
        # (``reach``), so no static denominator bound exists; this also
        # pins the run to the Fraction timebase, which the arithmetic
        # above (public ``sim.now`` mixed with runtime slot boundaries)
        # requires.
        return None


class CloningGreedyAdversary(SlotAdversary):
    """One-step greedy adversary with simulated look-ahead.

    Scoring of a probed future: ``collisions * collision_weight +
    backlog - successes * success_weight`` — higher is better for the
    adversary.  Candidates default to ``{1, (1+R)/2, R}``.

    The probe replaces the clone's adversary with a neutral
    :class:`FixedLength` fallback so probing never recurses.
    """

    def __init__(
        self,
        max_length: TimeLike,
        horizon_events: int = 48,
        candidates: Optional[Sequence[TimeLike]] = None,
        fallback_length: Optional[TimeLike] = None,
        collision_weight: int = 3,
        success_weight: int = 1,
    ) -> None:
        self.max_length = as_time(max_length)
        if horizon_events < 1:
            raise ConfigurationError("horizon_events must be >= 1")
        self.horizon_events = horizon_events
        if candidates is None:
            mid = (1 + self.max_length) / 2
            raw: List[Fraction] = [Fraction(1), mid, self.max_length]
        else:
            raw = [as_time(c) for c in candidates]
        deduplicated: List[Fraction] = []
        for candidate in raw:
            if not 1 <= candidate <= self.max_length:
                raise ConfigurationError(
                    f"candidate {candidate} outside [1, {self.max_length}]"
                )
            if candidate not in deduplicated:
                deduplicated.append(candidate)
        self.candidates = deduplicated
        self.fallback = as_time(
            fallback_length if fallback_length is not None else 1
        )
        self.collision_weight = collision_weight
        self.success_weight = success_weight
        #: Decisions taken (for introspection in tests/benches).
        self.decisions = 0

    def _score(self, sim, station_id: int, length: Fraction) -> tuple:
        clone = copy.deepcopy(sim)
        clone.slot_adversary = FixedLength(self.fallback)
        clone.open_slot(clone.stations[station_id], clone.now, length)
        try:
            clone.run(max_events=clone.events_processed + self.horizon_events)
        except Exception:  # a broken victim counts as maximal damage
            return (10**9, 0)
        stats = clone.channel.stats
        live_successes = clone.channel.count_successes_up_to(clone.now)
        score = (
            stats.collisions * self.collision_weight
            + clone.total_backlog
            - (stats.successes + live_successes) * self.success_weight
        )
        return (score, -length)  # tie-break toward short slots

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        if len(self.candidates) == 1:
            return self.candidates[0]
        self.decisions += 1
        best_candidate = self.candidates[0]
        best_score = None
        for candidate in self.candidates:
            score = self._score(sim, station_id, candidate)
            if best_score is None or score > best_score:
                best_score = score
                best_candidate = candidate
        return best_candidate

    def lattice_denominator(self) -> None:
        # Cloning look-ahead feeds ``clone.now`` (a public Fraction)
        # back into ``open_slot`` (internal units), which is only unit-
        # correct on the Fraction timebase — so never declare a lattice.
        return None
