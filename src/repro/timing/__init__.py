"""Slot-length adversaries for the partially asynchronous channel."""

from .lookahead import CloningGreedyAdversary, MaxOverlapAdversary
from .adversary import (
    Adaptive,
    CyclicPattern,
    FixedLength,
    PerStationFixed,
    RandomUniform,
    SlotAdversary,
    StretchTransmitters,
    Synchronous,
    TableDriven,
    worst_case_for,
)

__all__ = [
    "Adaptive",
    "CloningGreedyAdversary",
    "MaxOverlapAdversary",
    "CyclicPattern",
    "FixedLength",
    "PerStationFixed",
    "RandomUniform",
    "SlotAdversary",
    "StretchTransmitters",
    "Synchronous",
    "TableDriven",
    "worst_case_for",
]
