"""Slot-length adversaries: who decides how long every slot lasts.

Section II of the paper puts slot lengths under the control of an
*online adversary*: each slot of each station has a length in ``[1, r]``
for an execution-dependent ``r <= R``, and stations know only ``R``.
An adversary here is any object with

``next_slot_length(sim, station_id, slot_index) -> TimeLike``

invoked at the instant the slot begins, with the full simulator exposed
(the adversary is omniscient and adaptive).  Because every station
algorithm is a deterministic, cloneable automaton, an adversary that
wants end-of-slot adaptivity can simulate the system forward and decide
at slot start with identical power — this is exactly how the
lower-bound adversaries of :mod:`repro.lowerbounds` operate.

This module provides the reusable oblivious and adaptive adversaries
used by the stability experiments; the theorem-specific constructions
live next to their theorems.
"""

from __future__ import annotations

import random
from fractions import Fraction
from math import lcm
from typing import Callable, Dict, Mapping, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.timebase import Time, TimeLike, as_time


class SlotAdversary:
    """Base class (also usable as a type marker) for slot adversaries."""

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> TimeLike:
        raise NotImplementedError

    def lattice_denominator(self) -> Optional[int]:
        """Smallest ``D`` such that every produced length is a multiple
        of ``1/D``, or ``None`` when no such bound can be promised.

        Declaring a lattice lets the simulator run on the scaled-integer
        fast timebase (see :mod:`repro.core.timebase`).  The base class
        stays conservative: adaptive or hand-rolled adversaries must opt
        in explicitly.
        """
        return None


class Synchronous(SlotAdversary):
    """The classical fully synchronous channel: every slot has length 1.

    With this adversary the model degenerates to ``R = 1`` slotted time
    and the synchronous baselines (RRW, MBTF) are in their home setting.
    """

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        return Fraction(1)

    def lattice_denominator(self) -> int:
        return 1


class FixedLength(SlotAdversary):
    """Every slot of every station has the same fixed length.

    A degenerate but useful adversary: with length ``r`` it produces a
    synchronous execution on a slower clock, calibrating how algorithms
    pay for the *bound* R rather than the realized r.
    """

    def __init__(self, length: TimeLike) -> None:
        self.length = as_time(length)

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        return self.length

    def lattice_denominator(self) -> int:
        return self.length.denominator


class PerStationFixed(SlotAdversary):
    """Each station runs at its own constant slot length.

    This is the canonical "different clock speeds" adversary: station
    ``i`` has every slot of length ``lengths[i]``.  Relative drift
    between stations accumulates linearly, defeating algorithms that
    assume aligned slot grids (e.g. naive TDMA round robin).
    """

    def __init__(self, lengths: Mapping[int, TimeLike]) -> None:
        self.lengths: Dict[int, Fraction] = {
            sid: as_time(length) for sid, length in lengths.items()
        }

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        try:
            return self.lengths[station_id]
        except KeyError:
            raise ConfigurationError(
                f"PerStationFixed has no length for station {station_id}"
            ) from None

    def lattice_denominator(self) -> int:
        return lcm(*(length.denominator for length in self.lengths.values()))


class CyclicPattern(SlotAdversary):
    """Each station cycles through a fixed pattern of slot lengths.

    With different patterns per station this produces bounded but
    irregular misalignment — the bread-and-butter stress for the
    stability benches.
    """

    def __init__(self, patterns: Mapping[int, Sequence[TimeLike]]) -> None:
        self.patterns: Dict[int, Sequence[Fraction]] = {}
        for sid, pattern in patterns.items():
            if not pattern:
                raise ConfigurationError(f"empty slot pattern for station {sid}")
            self.patterns[sid] = tuple(as_time(x) for x in pattern)

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        try:
            pattern = self.patterns[station_id]
        except KeyError:
            raise ConfigurationError(
                f"CyclicPattern has no pattern for station {station_id}"
            ) from None
        return pattern[slot_index % len(pattern)]

    def lattice_denominator(self) -> int:
        return lcm(
            *(
                length.denominator
                for pattern in self.patterns.values()
                for length in pattern
            )
        )


class RandomUniform(SlotAdversary):
    """Independent random rational slot lengths in ``[1, R]``.

    Lengths are drawn as ``1 + k/denominator`` with ``k`` uniform, so
    they stay exact rationals with a bounded denominator (keeping the
    Fraction arithmetic fast over long runs).  Deterministic given the
    seed.
    """

    def __init__(self, max_length: TimeLike, seed: int, denominator: int = 8) -> None:
        self.max_length = as_time(max_length)
        if self.max_length < 1:
            raise ConfigurationError("max_length must be >= 1")
        if denominator < 1:
            raise ConfigurationError("denominator must be >= 1")
        self._rng = random.Random(seed)
        self._denominator = denominator
        span = self.max_length - 1
        self._steps = int(span * denominator)  # exact when span*den integral
        if Fraction(self._steps, denominator) != span:
            raise ConfigurationError(
                f"R - 1 = {span} is not a multiple of 1/{denominator}"
            )

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        k = self._rng.randint(0, self._steps)
        return 1 + Fraction(k, self._denominator)

    def lattice_denominator(self) -> int:
        return self._denominator


class TableDriven(SlotAdversary):
    """Explicit per-station, per-slot length table with a default tail.

    Used by the figure benches and the hand-constructed executions in
    tests (e.g. the Fig. 2 schedule): ``table[sid][j]`` is the length of
    slot ``j``; slots beyond the table get ``default``.
    """

    def __init__(
        self,
        table: Mapping[int, Sequence[TimeLike]],
        default: TimeLike = 1,
    ) -> None:
        self.table: Dict[int, Sequence[Fraction]] = {
            sid: tuple(as_time(x) for x in row) for sid, row in table.items()
        }
        self.default = as_time(default)

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        row = self.table.get(station_id, ())
        if slot_index < len(row):
            return row[slot_index]
        return self.default

    def lattice_denominator(self) -> int:
        return lcm(
            self.default.denominator,
            *(
                length.denominator
                for row in self.table.values()
                for length in row
            ),
        )


class Adaptive(SlotAdversary):
    """Wrap an arbitrary decision function as an adversary.

    ``decide(sim, station_id, slot_index)`` sees the live simulator —
    queue sizes, algorithm states, channel history — and returns a
    length.  The theorem adversaries build on this directly.

    By default an adaptive adversary declares no time lattice (the
    decision function is a black box), so runs fall back to the exact
    Fraction timebase.  Callers that *know* every produced length is a
    multiple of ``1/D`` can pass ``lattice_denominator=D`` to keep the
    fast path; a length off the promised lattice then fails the run
    loudly instead of silently losing exactness.
    """

    def __init__(
        self,
        decide: Callable[[object, int, int], TimeLike],
        lattice_denominator: Optional[int] = None,
    ) -> None:
        self._decide = decide
        self._lattice_denominator = lattice_denominator

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> TimeLike:
        return self._decide(sim, station_id, slot_index)

    def lattice_denominator(self) -> Optional[int]:
        return self._lattice_denominator


class StretchTransmitters(SlotAdversary):
    """Adaptive adversary that stretches transmitting slots, shrinks listens.

    A simple worst-case-flavoured adversary for stability stress: a
    station about to transmit gets a maximal slot (its packet costs the
    full ``R``), while listening slots are minimal (other stations churn
    through slots quickly, maximizing scheduling uncertainty).  The
    decision uses the action the station just committed for this slot,
    observable through the runtime.
    """

    def __init__(self, max_length: TimeLike) -> None:
        self.max_length = as_time(max_length)

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        runtime = sim.stations[station_id]
        # The simulator commits the station's action for the slot being
        # opened before consulting the adversary, so runtime.action is
        # the upcoming slot's intent.
        action = runtime.action
        if action is not None and action.is_transmit:
            return self.max_length
        return Fraction(1)

    def lattice_denominator(self) -> int:
        return self.max_length.denominator


class WorstCaseCyclic(SlotAdversary):
    """The default adversarial schedule used by the stability benches.

    Per-station coprime-ish cyclic patterns spanning ``[1, R]`` — strong
    persistent misalignment without randomness.  Odd stations cycle a
    3-pattern, even stations a 4-pattern, so relative phase between any
    odd/even pair never repeats within 12 slots.  Use the
    :func:`worst_case_for` factory, which degenerates to
    :class:`Synchronous` at ``R = 1``.
    """

    def __init__(self, max_length: TimeLike) -> None:
        upper = as_time(max_length)
        if upper < 1:
            raise ConfigurationError(f"R must be at least 1, got {upper}")
        self.max_length = upper
        self.mid = (1 + upper) / 2
        one = Fraction(1)
        self.odd_pattern = (one, upper, self.mid)
        self.even_pattern = (upper, one, one, self.mid)

    def next_slot_length(self, sim, station_id: int, slot_index: int) -> Fraction:
        pattern = self.odd_pattern if station_id % 2 else self.even_pattern
        return pattern[slot_index % len(pattern)]

    def lattice_denominator(self) -> int:
        return lcm(self.max_length.denominator, self.mid.denominator)


def worst_case_for(max_length: TimeLike) -> SlotAdversary:
    """Build the bench-default worst-case schedule for the bound ``R``."""
    upper = as_time(max_length)
    if upper == 1:
        return Synchronous()
    return WorstCaseCyclic(upper)
