"""Metrics registry: counters, gauges, windowed histograms, built-ins.

The registry is deliberately small — three instrument kinds cover every
quantity the adversarial-queuing literature reports over time (queue
occupancy, collision mix, throughput over windows):

* :class:`Counter` — monotonically increasing event counts;
* :class:`Gauge` — instantaneous values with exact running max/min;
* :class:`Histogram` — exact value->count distribution (slot lengths
  and feedback kinds come from tiny discrete sets, so exact counting
  beats bucketing), with an optional sliding *window* of the most
  recent observations for "recent distribution" queries.

:class:`SimulationMetrics` wires a standard instrument set to a
:class:`~repro.obs.probes.ProbeBus`: slot-length distribution, feedback
mix (ack/silence/busy), per-station queue occupancy, collisions,
control messages, backlog, and wall-clock simulation throughput
(slot events per second).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from .probes import (
    ArrivalEvent,
    CollisionEvent,
    DeliveryEvent,
    ProbeBus,
    SlotEndEvent,
)


def _plain(value: Any) -> Any:
    """JSON-safe rendering: exact rationals become strings, ints stay ints."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    return str(value)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Any:
        return self.value


class Gauge:
    """An instantaneous value with exact running extrema."""

    __slots__ = ("name", "value", "max", "min")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = None
        self.max: Any = None
        self.min: Any = None

    def set(self, value: Any) -> None:
        self.value = value
        if self.max is None or value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "value": _plain(self.value),
            "max": _plain(self.max),
            "min": _plain(self.min),
        }


class Histogram:
    """Exact distribution of observed values, optionally windowed.

    ``counts`` covers the full run; when ``window`` is set, the last
    ``window`` observations are also retained so
    :meth:`recent_counts` can report the *current* distribution of a
    long run (e.g. the feedback mix over the last 10k slots, which
    reveals a phase change the all-time mix averages away).
    """

    __slots__ = ("name", "counts", "count", "total", "window", "_recent")

    def __init__(self, name: str, window: Optional[int] = None) -> None:
        if window is not None and window < 1:
            raise ValueError(f"histogram window must be >= 1, got {window}")
        self.name = name
        self.counts: Dict[Any, int] = {}
        self.count = 0
        self.total: Any = 0
        self.window = window
        self._recent: Optional[Deque[Any]] = (
            deque(maxlen=window) if window is not None else None
        )

    def observe(self, value: Any) -> None:
        self.counts[value] = self.counts.get(value, 0) + 1
        self.count += 1
        self.total = self.total + value
        if self._recent is not None:
            self._recent.append(value)

    def recent_counts(self) -> Dict[Any, int]:
        """Distribution over the last ``window`` observations."""
        out: Dict[Any, int] = {}
        for value in self._recent or ():
            out[value] = out.get(value, 0) + 1
        return out

    def mean(self) -> Optional[Any]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> Dict[str, Any]:
        ordered = sorted(self.counts.items(), key=lambda kv: str(kv[0]))
        snap: Dict[str, Any] = {
            "count": self.count,
            "mean": _plain(self.mean()),
            "counts": {str(k): v for k, v in ordered},
        }
        if self.window is not None:
            snap["window"] = self.window
            snap["recent"] = {
                str(k): v
                for k, v in sorted(
                    self.recent_counts().items(), key=lambda kv: str(kv[0])
                )
            }
        return snap


class MetricsRegistry:
    """Named instruments, get-or-create, one JSON-safe snapshot call."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, factory: Callable[[], Any]) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, window: Optional[int] = None) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, window))

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as plain JSON-serializable values."""
        return {
            name: self._instruments[name].snapshot() for name in self.names()
        }

    def render(self) -> List[str]:
        """Human-readable one-instrument-per-line summary."""
        lines: List[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                lines.append(f"{name}: {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(
                    f"{name}: {instrument.value} (max {instrument.max}, "
                    f"min {instrument.min})"
                )
            else:
                parts = ", ".join(
                    f"{k}: {v}"
                    for k, v in sorted(
                        instrument.counts.items(), key=lambda kv: str(kv[0])
                    )
                )
                mean = instrument.mean()
                mean_text = f"{float(mean):.4g}" if mean is not None else "n/a"
                lines.append(
                    f"{name}: n={instrument.count} mean={mean_text} {{{parts}}}"
                )
        return lines


class SimulationMetrics:
    """The built-in instrument pack for one simulation run.

    Attach to a bus before the run starts::

        bus = ProbeBus()
        sim_metrics = SimulationMetrics()
        sim_metrics.attach(bus)
        Simulator(..., probes=bus).run(until_time=10_000)
        print("\\n".join(sim_metrics.registry.render()))

    Instruments (registry names):

    * ``slots`` — slot-end events processed;
    * ``slot_length`` — histogram of realized slot lengths;
    * ``feedback.{ack,silence,busy}`` — the feedback mix;
    * ``collisions`` / ``control_messages`` — channel pathologies;
    * ``arrivals`` / ``delivered`` — packet flow;
    * ``backlog`` — gauge of undelivered packets (exact max);
    * ``queue.<sid>`` — per-station queue occupancy gauges;
    * events/sec wall-clock throughput via :meth:`events_per_second`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        slot_length_window: Optional[int] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._slots = reg.counter("slots")
        self._slot_length = reg.histogram("slot_length", window=slot_length_window)
        self._feedback = {
            kind: reg.counter(f"feedback.{kind}") for kind in ("ack", "silence", "busy")
        }
        self._collisions = reg.counter("collisions")
        self._control = reg.counter("control_messages")
        self._arrivals = reg.counter("arrivals")
        self._delivered = reg.counter("delivered")
        self._backlog = reg.gauge("backlog")
        self._backlog.set(0)
        self._queues: Dict[int, Gauge] = {}
        self._wall_start: Optional[float] = None
        self._wall_last: Optional[float] = None
        self._detach: Optional[Callable[[], None]] = None

    # -- subscriber callbacks ------------------------------------------

    def _on_slot_end(self, event: SlotEndEvent) -> None:
        self._slots.inc()
        self._slot_length.observe(event.interval.duration)
        self._feedback[event.feedback.name.lower()].inc()
        self._backlog.set(event.backlog)
        queue = self._queues.get(event.station_id)
        if queue is None:
            queue = self.registry.gauge(f"queue.{event.station_id}")
            self._queues[event.station_id] = queue
        queue.set(event.queue_size)
        if event.action.is_transmit and not event.action.carries_packet:
            self._control.inc()
        self._wall_last = time.perf_counter()

    def _on_collision(self, event: CollisionEvent) -> None:
        self._collisions.inc()

    def _on_arrival(self, event: ArrivalEvent) -> None:
        self._arrivals.inc()
        self._backlog.set(event.backlog)

    def _on_delivery(self, event: DeliveryEvent) -> None:
        self._delivered.inc()
        self._backlog.set(event.backlog)

    # -- lifecycle ------------------------------------------------------

    def attach(self, bus: ProbeBus) -> Callable[[], None]:
        """Subscribe every instrument; returns an unsubscriber."""
        self._wall_start = time.perf_counter()
        self._detach = bus.subscribe_many(
            {
                "slot_end": self._on_slot_end,
                "collision": self._on_collision,
                "arrival": self._on_arrival,
                "delivery": self._on_delivery,
            }
        )
        return self._detach

    def detach(self) -> None:
        if self._detach is not None:
            self._detach()
            self._detach = None

    # -- derived quantities --------------------------------------------

    def events_per_second(self) -> Optional[float]:
        """Wall-clock simulation throughput over the observed span."""
        if self._wall_start is None or self._wall_last is None:
            return None
        elapsed = self._wall_last - self._wall_start
        if elapsed <= 0:
            return None
        return self._slots.value / elapsed

    def snapshot(self) -> Dict[str, Any]:
        """Registry snapshot plus the derived throughput."""
        snap = self.registry.snapshot()
        eps = self.events_per_second()
        snap["events_per_second"] = round(eps, 2) if eps is not None else None
        return snap

    def render(self) -> List[str]:
        lines = self.registry.render()
        eps = self.events_per_second()
        if eps is not None:
            lines.append(f"events_per_second: {eps:.0f}")
        return lines
