"""Observability: probes, metrics, run artifacts, profiling.

The window into a running simulation.  Four layers, composable but
independently usable:

* :mod:`repro.obs.probes` — the :class:`ProbeBus` and its six event
  types; the simulator fires them at named hook points with near-zero
  cost when nobody listens.
* :mod:`repro.obs.metrics` — counters / gauges / windowed histograms in
  a :class:`MetricsRegistry`, plus :class:`SimulationMetrics`, the
  built-in instrument pack (slot-length distribution, feedback mix,
  queue occupancy, collisions, events/sec).
* :mod:`repro.obs.artifacts` — :class:`RunManifest` + streaming JSONL
  export (:class:`JsonlRunWriter`) and the :func:`load_run` /
  :func:`summarize_run` readers behind ``repro stats``.
* :mod:`repro.obs.profiling` — :class:`PhaseProfiler` (wall time per
  simulator phase) and :class:`ProgressReporter` (periodic status lines
  for long stability runs).

Quickstart::

    from repro.obs import ProbeBus, SimulationMetrics, JsonlRunWriter, RunManifest

    bus = ProbeBus()
    metrics = SimulationMetrics()
    metrics.attach(bus)
    writer = JsonlRunWriter("run.jsonl", RunManifest.create(algorithm="ao-arrow"),
                            metrics=metrics).attach(bus)
    sim = Simulator(..., probes=bus)
    sim.run(until_time=1_000_000)
    writer.close(sim=sim)
    print("\\n".join(metrics.render()))
"""

from .artifacts import (
    JsonlRunWriter,
    RunArtifact,
    RunManifest,
    git_sha,
    load_run,
    render_summary,
    summarize_run,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SimulationMetrics,
)
from .probes import (
    PROBE_EVENTS,
    ArrivalEvent,
    CollisionEvent,
    DeliveryEvent,
    FeedbackEvent,
    ProbeBus,
    SlotBeginEvent,
    SlotEndEvent,
)
from .profiling import PhaseProfiler, ProgressReporter

__all__ = [
    "ArrivalEvent",
    "CollisionEvent",
    "Counter",
    "DeliveryEvent",
    "FeedbackEvent",
    "Gauge",
    "Histogram",
    "JsonlRunWriter",
    "MetricsRegistry",
    "PROBE_EVENTS",
    "PhaseProfiler",
    "ProbeBus",
    "ProgressReporter",
    "RunArtifact",
    "RunManifest",
    "SimulationMetrics",
    "SlotBeginEvent",
    "SlotEndEvent",
    "git_sha",
    "load_run",
    "render_summary",
    "summarize_run",
]
