"""Observability: probes, metrics, run artifacts, profiling.

The window into a running simulation.  Four layers, composable but
independently usable:

* :mod:`repro.obs.probes` — the :class:`ProbeBus` and its six event
  types; the simulator fires them at named hook points with near-zero
  cost when nobody listens.
* :mod:`repro.obs.metrics` — counters / gauges / windowed histograms in
  a :class:`MetricsRegistry`, plus :class:`SimulationMetrics`, the
  built-in instrument pack (slot-length distribution, feedback mix,
  queue occupancy, collisions, events/sec).
* :mod:`repro.obs.artifacts` — :class:`RunManifest` + streaming JSONL
  export (:class:`JsonlRunWriter`) and the :func:`load_run` /
  :func:`summarize_run` readers behind ``repro stats``.
* :mod:`repro.obs.profiling` — :class:`PhaseProfiler` (wall time per
  simulator phase) and :class:`ProgressReporter` (periodic status lines
  for long stability runs).
* :mod:`repro.obs.tracing` — the flight recorder: a :class:`Tracer`
  of hierarchical spans across the fork boundary, exported as Chrome
  trace-event JSON (Perfetto-loadable) behind ``--trace``.
* :mod:`repro.obs.history` — the persistent run-history index
  (:class:`RunHistory`, SQLite under ``.repro-cache/history.db``)
  behind ``repro history list/show/query``.

Quickstart::

    from repro.obs import ProbeBus, SimulationMetrics, JsonlRunWriter, RunManifest

    bus = ProbeBus()
    metrics = SimulationMetrics()
    metrics.attach(bus)
    writer = JsonlRunWriter("run.jsonl", RunManifest.create(algorithm="ao-arrow"),
                            metrics=metrics).attach(bus)
    sim = Simulator(..., probes=bus)
    sim.run(until_time=1_000_000)
    writer.close(sim=sim)
    print("\\n".join(metrics.render()))
"""

from .artifacts import (
    JsonlRunWriter,
    RunArtifact,
    RunManifest,
    git_sha,
    load_run,
    render_summary,
    summarize_run,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SimulationMetrics,
)
from .probes import (
    PROBE_EVENTS,
    ArrivalEvent,
    CollisionEvent,
    DeliveryEvent,
    FeedbackEvent,
    ProbeBus,
    SlotBeginEvent,
    SlotEndEvent,
)
from .history import (
    HistoryEntry,
    RunHistory,
    default_db_path,
    history_enabled,
    record_completion,
)
from .profiling import PhaseProfiler, ProgressReporter
from .tracing import (
    Span,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    load_trace,
    render_trace_summary,
    summarize_trace,
)

__all__ = [
    "ArrivalEvent",
    "CollisionEvent",
    "Counter",
    "DeliveryEvent",
    "FeedbackEvent",
    "Gauge",
    "HistoryEntry",
    "Histogram",
    "JsonlRunWriter",
    "MetricsRegistry",
    "PROBE_EVENTS",
    "PhaseProfiler",
    "ProbeBus",
    "ProgressReporter",
    "RunArtifact",
    "RunHistory",
    "RunManifest",
    "SimulationMetrics",
    "SlotBeginEvent",
    "SlotEndEvent",
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "deactivate",
    "default_db_path",
    "git_sha",
    "history_enabled",
    "load_run",
    "load_trace",
    "record_completion",
    "render_summary",
    "render_trace_summary",
    "summarize_run",
    "summarize_trace",
]
