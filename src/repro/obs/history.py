"""Persistent run-history index: every completed run, queryable forever.

The flight recorder's other half (see :mod:`repro.obs.tracing` for the
in-flight spans): an SQLite database under ``.repro-cache/history.db``
that records one row per completed execution — ``repro run``, every
grid (:func:`repro.analysis.run_grid_report`), every seed sweep
(:func:`repro.analysis.sweep_seeds_report`), and every benchmark table
the harness emits.  Each row carries *what* ran (kind, name, spec
hash), *how* it went (cell counts, cache hits, wall time, the
:class:`~repro.exec.RunHealth` ledger, ok/failed status), *which code*
ran it (git SHA), and *where the evidence lives* (artifact and trace
paths).  The ``repro history list/show/query`` subcommands read it
back; the schema is documented in ``docs/tracing.md``.

Design constraints:

* **Recording never breaks a run.**  Producers record through
  :func:`record_completion`, which swallows every failure (read-only
  filesystem, locked database, missing directory) and returns ``None``
  instead.  History is forensics, not a dependency.
* **Opt-out, not opt-in.**  Recording is automatic (the index is only
  useful if it is complete) but honors ``REPRO_NO_HISTORY=1``; the
  database path follows the result cache it sits next to and can be
  pointed elsewhere with ``REPRO_HISTORY_DB``.
* **Append-mostly.**  Rows are inserted at completion and touched
  again only to attach artifact/trace paths the caller learns late
  (:meth:`RunHistory.update`).  Nothing is ever deleted by the
  recording path.

SQLite keeps the index robust against concurrent writers (two grids
sharing one cache directory) via its own locking; a 5-second busy
timeout covers the burst when a parallel bench suite lands many rows
at once — in the same spirit as dnf's history database.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "HistoryEntry",
    "RunHistory",
    "default_db_path",
    "history_enabled",
    "record_completion",
]

#: History schema version, stored in SQLite's ``user_version`` pragma.
HISTORY_SCHEMA_VERSION = 1

#: Default database location — next to the result cache it indexes.
DEFAULT_DB = ".repro-cache/history.db"

_CREATE = """
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at    TEXT    NOT NULL,
    kind          TEXT    NOT NULL,
    name          TEXT    NOT NULL,
    status        TEXT    NOT NULL DEFAULT 'ok',
    cells         INTEGER NOT NULL DEFAULT 0,
    cache_hits    INTEGER NOT NULL DEFAULT 0,
    cache_misses  INTEGER NOT NULL DEFAULT 0,
    journal_hits  INTEGER NOT NULL DEFAULT 0,
    wall_s        REAL,
    jobs          INTEGER,
    mode          TEXT,
    spec_hash     TEXT,
    cache_key     TEXT,
    git_sha       TEXT,
    health        TEXT,
    artifact_path TEXT,
    trace_path    TEXT,
    extra         TEXT
);
CREATE INDEX IF NOT EXISTS runs_kind ON runs (kind);
CREATE INDEX IF NOT EXISTS runs_created ON runs (created_at);
"""

_COLUMNS = (
    "created_at", "kind", "name", "status", "cells", "cache_hits",
    "cache_misses", "journal_hits", "wall_s", "jobs", "mode",
    "spec_hash", "cache_key", "git_sha", "health", "artifact_path",
    "trace_path", "extra",
)


def default_db_path() -> str:
    """Where history rows land unless a caller points elsewhere."""
    return os.environ.get("REPRO_HISTORY_DB", "").strip() or DEFAULT_DB


def history_enabled() -> bool:
    """Automatic recording is on unless ``REPRO_NO_HISTORY`` is set."""
    return not os.environ.get("REPRO_NO_HISTORY", "").strip()


@dataclass(slots=True)
class HistoryEntry:
    """One recorded execution, as read back from the index."""

    id: int
    created_at: str
    kind: str
    name: str
    status: str = "ok"
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    journal_hits: int = 0
    wall_s: Optional[float] = None
    jobs: Optional[int] = None
    mode: Optional[str] = None
    spec_hash: Optional[str] = None
    cache_key: Optional[str] = None
    git_sha: Optional[str] = None
    health: Dict[str, Any] = field(default_factory=dict)
    artifact_path: Optional[str] = None
    trace_path: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def served_from(self) -> str:
        """How the results were obtained: ``cache``/``journal``/``exec``.

        ``cache`` means every cell came out of the content-addressed
        result cache (nothing executed); ``mixed`` means some did.
        """
        if self.cells and self.cache_hits >= self.cells:
            return "cache"
        if self.cells and self.journal_hits >= self.cells:
            return "journal"
        if self.cache_hits or self.journal_hits:
            return "mixed"
        return "exec"

    def disturbed(self) -> bool:
        """True when the health ledger recorded any recovery activity."""
        return any(bool(v) for v in self.health.values())


def _entry_from_row(row: sqlite3.Row) -> HistoryEntry:
    def _json(text: Optional[str]) -> Dict[str, Any]:
        if not text:
            return {}
        try:
            value = json.loads(text)
        except ValueError:
            return {}
        return value if isinstance(value, dict) else {}

    return HistoryEntry(
        id=row["id"],
        created_at=row["created_at"],
        kind=row["kind"],
        name=row["name"],
        status=row["status"],
        cells=row["cells"],
        cache_hits=row["cache_hits"],
        cache_misses=row["cache_misses"],
        journal_hits=row["journal_hits"],
        wall_s=row["wall_s"],
        jobs=row["jobs"],
        mode=row["mode"],
        spec_hash=row["spec_hash"],
        cache_key=row["cache_key"],
        git_sha=row["git_sha"],
        health=_json(row["health"]),
        artifact_path=row["artifact_path"],
        trace_path=row["trace_path"],
        extra=_json(row["extra"]),
    )


class RunHistory:
    """The on-disk index: record at completion, query any time.

    >>> import tempfile, os
    >>> history = RunHistory(os.path.join(tempfile.mkdtemp(), "h.db"))
    >>> run_id = history.record("grid", "demo", cells=4, cache_hits=4)
    >>> entry = history.get(run_id)
    >>> (entry.kind, entry.name, entry.served_from)
    ('grid', 'demo', 'cache')
    """

    def __init__(self, path: Union[str, pathlib.Path, None] = None) -> None:
        self.path = pathlib.Path(path if path is not None else default_db_path())

    @contextmanager
    def _connect(self, *, create: bool = True) -> Iterator[sqlite3.Connection]:
        if create:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(self.path), timeout=5.0)
        try:
            connection.row_factory = sqlite3.Row
            connection.execute("PRAGMA busy_timeout = 5000")
            if create:
                connection.executescript(_CREATE)
                connection.execute(
                    f"PRAGMA user_version = {HISTORY_SCHEMA_VERSION}"
                )
            yield connection
            connection.commit()
        finally:
            connection.close()

    # -- writing --------------------------------------------------------

    def record(
        self,
        kind: str,
        name: str,
        *,
        status: str = "ok",
        cells: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        journal_hits: int = 0,
        wall_s: Optional[float] = None,
        jobs: Optional[int] = None,
        mode: Optional[str] = None,
        spec_hash: Optional[str] = None,
        cache_key: Optional[str] = None,
        git_sha: Optional[str] = None,
        health: Optional[Dict[str, Any]] = None,
        artifact_path: Optional[str] = None,
        trace_path: Optional[str] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Insert one completion row; returns its id."""
        values = (
            time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            kind,
            name,
            status,
            int(cells),
            int(cache_hits),
            int(cache_misses),
            int(journal_hits),
            wall_s if wall_s is None else round(float(wall_s), 6),
            jobs,
            mode,
            spec_hash,
            cache_key,
            git_sha,
            json.dumps(health, sort_keys=True) if health else None,
            str(artifact_path) if artifact_path else None,
            str(trace_path) if trace_path else None,
            json.dumps(extra, sort_keys=True, default=str) if extra else None,
        )
        placeholders = ", ".join("?" for _ in _COLUMNS)
        with self._connect() as connection:
            cursor = connection.execute(
                f"INSERT INTO runs ({', '.join(_COLUMNS)}) "
                f"VALUES ({placeholders})",
                values,
            )
            return int(cursor.lastrowid)

    def update(self, run_id: int, **fields: Any) -> bool:
        """Attach late-learned facts (trace path, artifact path, status).

        Only existing columns may be updated; returns True when a row
        was touched.
        """
        allowed = set(_COLUMNS) - {"created_at", "kind"}
        unknown = set(fields) - allowed
        if unknown:
            raise ValueError(f"unknown history column(s): {sorted(unknown)}")
        if not fields:
            return False
        clean = {
            key: (
                json.dumps(value, sort_keys=True, default=str)
                if key in ("health", "extra") and isinstance(value, dict)
                else value
            )
            for key, value in fields.items()
        }
        assignments = ", ".join(f"{key} = ?" for key in clean)
        with self._connect() as connection:
            cursor = connection.execute(
                f"UPDATE runs SET {assignments} WHERE id = ?",
                (*clean.values(), run_id),
            )
            return cursor.rowcount > 0

    # -- reading --------------------------------------------------------

    def get(self, run_id: int) -> Optional[HistoryEntry]:
        """One entry by id, or None."""
        if not self.path.exists():
            return None
        with self._connect(create=False) as connection:
            row = connection.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        return _entry_from_row(row) if row is not None else None

    def query(
        self,
        *,
        kind: Optional[str] = None,
        name_like: Optional[str] = None,
        status: Optional[str] = None,
        since: Optional[str] = None,
        limit: int = 50,
        engine: Optional[str] = None,
        timebase: Optional[str] = None,
        served: Optional[str] = None,
    ) -> List[HistoryEntry]:
        """Filtered entries, newest first.

        ``name_like`` is a case-insensitive substring match; ``since``
        compares against the ISO ``created_at`` stamp lexically (so any
        prefix — ``2026-08``, a full timestamp — works).

        ``engine``/``timebase`` match the execution provenance recorded
        in ``extra`` (a grid matches ``engine`` when *any* of its cells
        used it); ``served`` matches :attr:`HistoryEntry.served_from`
        (``cache``/``journal``/``mixed``/``exec``).  These three filter
        in Python after the SQL pass, since they live in the JSON
        ``extra`` column.

        Recorded engines carry the resolved program family —
        ``batch(adaptive)`` / ``batch(nonadaptive)`` — so, like the
        timebase filter, ``engine`` matches either the full recorded
        value or its family name before the parenthesis
        (``engine="batch"`` matches both variants).
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if not self.path.exists():
            return []
        clauses: List[str] = []
        params: List[Any] = []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if name_like is not None:
            clauses.append("name LIKE ?")
            params.append(f"%{name_like}%")
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if since is not None:
            clauses.append("created_at >= ?")
            params.append(since)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        post_filtered = engine or timebase or served
        # Post-filters can reject arbitrarily many SQL rows, so the SQL
        # LIMIT must not apply until after they run (-1 = unlimited).
        sql_limit = -1 if post_filtered else limit
        with self._connect(create=False) as connection:
            rows = connection.execute(
                f"SELECT * FROM runs{where} ORDER BY id DESC LIMIT ?",
                (*params, sql_limit),
            ).fetchall()
        entries = [_entry_from_row(row) for row in rows]
        if engine is not None:
            def engine_matches(value: Any) -> bool:
                recorded = str(value or "")
                return recorded == engine or recorded.split("(")[0] == engine

            entries = [
                e for e in entries
                if engine_matches(e.extra.get("engine"))
                or any(
                    engine_matches(v) for v in (e.extra.get("engines") or ())
                )
            ]
        if timebase is not None:
            # Recorded values carry the lattice pitch ("lattice(1/2)");
            # filter on the family name before the parenthesis.
            entries = [
                e for e in entries
                if str(e.extra.get("timebase") or "").split("(")[0] == timebase
            ]
        if served is not None:
            entries = [e for e in entries if e.served_from == served]
        return entries[:limit]

    def list(self, limit: int = 20) -> List[HistoryEntry]:
        """The most recent entries, newest first."""
        return self.query(limit=limit)

    def count(self) -> int:
        """Total recorded rows (0 for a missing database)."""
        if not self.path.exists():
            return 0
        with self._connect(create=False) as connection:
            row = connection.execute("SELECT COUNT(*) AS n FROM runs").fetchone()
        return int(row["n"])


def record_completion(
    kind: str,
    name: str,
    *,
    db_path: Union[str, pathlib.Path, None] = None,
    **fields: Any,
) -> Optional[int]:
    """Best-effort automatic recording — the producers' entry point.

    Returns the new row id, or ``None`` when recording is disabled
    (``REPRO_NO_HISTORY``) or failed for any environmental reason.  A
    run must never die because its history could not be written.
    """
    if not history_enabled():
        return None
    try:
        return RunHistory(db_path).record(kind, name, **fields)
    except Exception:
        return None


def render_entries(entries: List[HistoryEntry]) -> List[str]:
    """The ``repro history list/query`` table, one line per entry."""
    if not entries:
        return ["(no recorded runs)"]
    headers = ("id", "when", "kind", "name", "cells", "served",
               "wall", "status", "health")
    rows = []
    for entry in entries:
        health = "-"
        if entry.disturbed():
            parts = [
                f"{key}={value}"
                for key, value in entry.health.items()
                if value
            ]
            health = ",".join(parts)
        rows.append(
            (
                str(entry.id),
                entry.created_at[:19],
                entry.kind,
                entry.name if len(entry.name) <= 34 else entry.name[:31] + "...",
                str(entry.cells) if entry.cells else "-",
                entry.served_from,
                f"{entry.wall_s:.2f}s" if entry.wall_s is not None else "-",
                entry.status,
                health,
            )
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows
    )
    return lines


def render_entry(entry: HistoryEntry) -> List[str]:
    """The ``repro history show`` detail block."""
    lines = [
        f"id:           {entry.id}",
        f"created:      {entry.created_at}",
        f"kind:         {entry.kind}",
        f"name:         {entry.name}",
        f"status:       {entry.status}",
        f"served from:  {entry.served_from}",
    ]
    if entry.cells:
        lines.append(
            f"cells:        {entry.cells} "
            f"(cache {entry.cache_hits} hit / {entry.cache_misses} miss, "
            f"journal {entry.journal_hits})"
        )
    if entry.wall_s is not None:
        lines.append(f"wall:         {entry.wall_s:.3f}s")
    if entry.jobs is not None:
        lines.append(f"jobs:         {entry.jobs} ({entry.mode or '?'})")
    if entry.spec_hash:
        lines.append(f"spec hash:    {entry.spec_hash}")
    if entry.cache_key:
        lines.append(f"cache key:    {entry.cache_key}")
    if entry.git_sha:
        lines.append(f"git:          {entry.git_sha}")
    if entry.health:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(entry.health.items()))
        lines.append(f"health:       {pairs}")
    if entry.artifact_path:
        lines.append(f"artifact:     {entry.artifact_path}")
    if entry.trace_path:
        lines.append(f"trace:        {entry.trace_path}")
    if entry.extra:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(entry.extra.items()))
        lines.append(f"extra:        {pairs}")
    return lines
