"""Run artifacts: manifests, streaming JSONL export, and the reader.

One simulation run becomes one JSONL file:

* line 1 — the **manifest**: what was run (config, n, R, rho,
  adversary, seed), by which code (package version, git SHA), when;
* then a stream of **event records** in simulation order (``slot``,
  ``arrival``, ``delivery``, ``collision``), every exact rational
  serialized as a fraction string (``"3/2"``) so nothing is rounded;
* optionally interleaved **metrics snapshots**;
* last line — the **summary**: wall time, event count, and (when a
  :class:`~repro.obs.metrics.SimulationMetrics` was attached) the final
  registry snapshot.

The format is append-only and line-delimited on purpose: a crashed or
interrupted run still leaves a readable prefix, and a million-slot run
streams to disk instead of accumulating in memory.  Read artifacts back
with :func:`load_run`; summarize them with :func:`summarize_run` (the
``repro stats`` subcommand).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import IO, Any, Callable, Dict, List, Optional, Union

from .metrics import SimulationMetrics
from .probes import (
    ArrivalEvent,
    CollisionEvent,
    DeliveryEvent,
    ProbeBus,
    SlotEndEvent,
)

#: Artifact schema version; bump when record fields change shape.
SCHEMA_VERSION = 1


def _frac(value: Any) -> str:
    """Serialize an exact time/duration losslessly."""
    return str(value)


def parse_time(text: Union[str, int]) -> Fraction:
    """Parse a time serialized by :func:`_frac` back to an exact rational."""
    return Fraction(text)


#: Per-process memo for :func:`git_sha` — the answer cannot change
#: mid-run, and a 1000-cell grid creates a manifest per cell; without
#: the memo that is a thousand ``git rev-parse`` subprocess forks.
_GIT_SHA_CACHE: Dict[str, Optional[str]] = {}


def git_sha(start: Optional[pathlib.Path] = None) -> Optional[str]:
    """Current git commit of the source tree, best-effort (None off-repo).

    Memoized per process (keyed by the lookup directory); forked
    workers inherit the parent's memo, so a grid pays at most one
    subprocess spawn total.
    """
    cwd = start if start is not None else pathlib.Path(__file__).resolve().parent
    memo_key = str(cwd)
    if memo_key in _GIT_SHA_CACHE:
        return _GIT_SHA_CACHE[memo_key]
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        _GIT_SHA_CACHE[memo_key] = None
        return None
    sha = (proc.stdout.strip() or None) if proc.returncode == 0 else None
    _GIT_SHA_CACHE[memo_key] = sha
    return sha


def _action_name(action: Any) -> str:
    if not action.is_transmit:
        return "listen"
    return "transmit_packet" if action.carries_packet else "transmit_control"


@dataclass(slots=True)
class RunManifest:
    """Everything needed to attribute and re-run one simulation.

    ``spec`` carries the canonical JSON of the
    :class:`~repro.scenarios.ScenarioSpec` that produced the run, when
    there was one — which makes the artifact *replayable*: ``repro
    scenario run <artifact.jsonl>`` rebuilds and re-runs it bit-for-bit.
    """

    config: Dict[str, Any]
    created_at: str = ""
    repro_version: Optional[str] = None
    git_commit: Optional[str] = None
    schema_version: int = SCHEMA_VERSION
    spec: Optional[Dict[str, Any]] = None
    health: Optional[Dict[str, Any]] = None

    @classmethod
    def create(
        cls,
        *,
        spec: Optional[Dict[str, Any]] = None,
        health: Optional[Dict[str, Any]] = None,
        **config: Any,
    ) -> "RunManifest":
        """Build a manifest from run parameters, stamping code identity.

        Exact rationals in the config are serialized as fraction
        strings; everything else must already be JSON-representable.
        ``spec`` takes the scenario's canonical dict
        (:meth:`~repro.scenarios.ScenarioSpec.canonical`); ``health``
        takes an execution-resilience ledger
        (:meth:`repro.exec.RunHealth.as_dict`) when the artifact came
        out of a fault-tolerant engine run.
        """
        try:
            from .. import __version__ as version
        except Exception:  # pragma: no cover - defensive
            version = None
        clean = {
            key: (_frac(value) if isinstance(value, Fraction) else value)
            for key, value in config.items()
        }
        return cls(
            config=clean,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            repro_version=version,
            git_commit=git_sha(),
            spec=spec,
            health=health,
        )

    def to_record(self) -> Dict[str, Any]:
        record = {
            "type": "manifest",
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "repro_version": self.repro_version,
            "git_commit": self.git_commit,
            "config": self.config,
        }
        if self.spec is not None:
            record["spec"] = self.spec
        if self.health is not None:
            record["health"] = self.health
        return record


class JsonlRunWriter:
    """Streams a run's events (and manifest + summary) to a JSONL file.

    Usage::

        bus = ProbeBus()
        writer = JsonlRunWriter("out.jsonl", RunManifest.create(algorithm="ao-arrow"))
        writer.attach(bus)
        sim = Simulator(..., probes=bus)
        sim.run(until_time=100_000)
        writer.close(sim=sim)

    ``slot_stride`` thins the (dominant) slot records: ``k`` keeps every
    k-th slot-end of the run while arrivals, deliveries and collisions
    are always written exactly.

    Instead of a ``path``, an already-open text ``stream`` may be given
    (the ``repro serve`` daemon streams records over HTTP this way);
    exactly one of the two is required, and an external stream is
    flushed but never closed by :meth:`close`.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path, None] = None,
        manifest: Optional[RunManifest] = None,
        slot_stride: int = 1,
        metrics: Optional[SimulationMetrics] = None,
        metrics_every: Optional[int] = None,
        *,
        stream: Optional[IO[str]] = None,
    ) -> None:
        if slot_stride < 1:
            raise ValueError(f"slot_stride must be >= 1, got {slot_stride}")
        if metrics_every is not None and metrics_every < 1:
            raise ValueError(f"metrics_every must be >= 1, got {metrics_every}")
        if (path is None) == (stream is None):
            raise ValueError("exactly one of path and stream is required")
        self.path = pathlib.Path(path) if path is not None else None
        self.metrics = metrics
        self._slot_stride = slot_stride
        self._metrics_every = metrics_every
        self._slot_events = 0
        self._wall_start = time.perf_counter()
        self._detach: Optional[Callable[[], None]] = None
        self._owns_stream = stream is None
        self._stream: Optional[IO[str]] = (
            self.path.open("w", encoding="utf-8")
            if self.path is not None
            else stream
        )
        if manifest is not None:
            self._write(manifest.to_record())

    # -- low-level ------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        if self._stream is None:
            return
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")

    # -- probe callbacks ------------------------------------------------

    def _on_slot_end(self, event: SlotEndEvent) -> None:
        self._slot_events += 1
        if self._slot_events % self._slot_stride == 0:
            self._write(
                {
                    "type": "slot",
                    "sid": event.station_id,
                    "idx": event.slot_index,
                    "start": _frac(event.interval.start),
                    "end": _frac(event.interval.end),
                    "action": _action_name(event.action),
                    "fb": event.feedback.name.lower(),
                    "q": event.queue_size,
                    "delivered": event.delivered,
                    "backlog": event.backlog,
                    "pkt": event.carried_packet_id,
                }
            )
        if (
            self._metrics_every is not None
            and self.metrics is not None
            and self._slot_events % self._metrics_every == 0
        ):
            self._write(
                {
                    "type": "metrics",
                    "at_event": self._slot_events,
                    "data": self.metrics.snapshot(),
                }
            )

    def _on_arrival(self, event: ArrivalEvent) -> None:
        self._write(
            {
                "type": "arrival",
                "pkt": event.packet_id,
                "sid": event.station_id,
                "t": _frac(event.at),
                "backlog": event.backlog,
            }
        )

    def _on_delivery(self, event: DeliveryEvent) -> None:
        self._write(
            {
                "type": "delivery",
                "pkt": event.packet_id,
                "sid": event.station_id,
                "t": _frac(event.at),
                "latency": _frac(event.latency),
                "cost": _frac(event.cost),
                "backlog": event.backlog,
            }
        )

    def _on_collision(self, event: CollisionEvent) -> None:
        self._write(
            {
                "type": "collision",
                "sid": event.station_id,
                "start": _frac(event.interval.start),
                "end": _frac(event.interval.end),
                "control": event.is_control,
            }
        )

    # -- lifecycle ------------------------------------------------------

    def attach(self, bus: ProbeBus) -> "JsonlRunWriter":
        self._detach = bus.subscribe_many(
            {
                "slot_end": self._on_slot_end,
                "arrival": self._on_arrival,
                "delivery": self._on_delivery,
                "collision": self._on_collision,
            }
        )
        return self

    def close(self, sim: Any = None) -> Optional[pathlib.Path]:
        """Detach, write the summary record, flush, and close the file.

        An external ``stream`` is flushed but left open (its owner
        decides when the transport ends); the returned path is ``None``
        in that case.
        """
        if self._detach is not None:
            self._detach()
            self._detach = None
        if self._stream is not None:
            wall = time.perf_counter() - self._wall_start
            summary: Dict[str, Any] = {
                "type": "summary",
                "wall_time_s": round(wall, 6),
                "slot_events": self._slot_events,
                "events_per_second": (
                    round(self._slot_events / wall, 2) if wall > 0 else None
                ),
            }
            if sim is not None:
                summary["horizon"] = _frac(sim.now)
                summary["delivered"] = len(sim.delivered_packets)
                summary["backlog"] = sim.total_backlog
                summary["collisions"] = sim.channel.stats.collisions
            if self.metrics is not None:
                summary["metrics"] = self.metrics.snapshot()
            self._write(summary)
            if self._owns_stream:
                self._stream.close()
            else:
                try:
                    self._stream.flush()
                except (OSError, ValueError):
                    pass  # the transport died mid-stream; records are lost anyway
            self._stream = None
        return self.path

    def __enter__(self) -> "JsonlRunWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass(slots=True)
class RunArtifact:
    """A parsed JSONL run: manifest + event records + summary."""

    path: Optional[pathlib.Path]
    manifest: Optional[Dict[str, Any]]
    records: List[Dict[str, Any]] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None

    def of_type(self, record_type: str) -> List[Dict[str, Any]]:
        """All event records of one type, in stream order."""
        return [r for r in self.records if r.get("type") == record_type]


def load_run(path: Union[str, pathlib.Path]) -> RunArtifact:
    """Read a JSONL run artifact written by :class:`JsonlRunWriter`.

    Tolerates a truncated final line (interrupted run): complete records
    up to that point are returned.
    """
    resolved = pathlib.Path(path)
    manifest: Optional[Dict[str, Any]] = None
    summary: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    with resolved.open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated tail of an interrupted run
            kind = record.get("type")
            if kind == "manifest":
                manifest = record
            elif kind == "summary":
                summary = record
            else:
                records.append(record)
    return RunArtifact(
        path=resolved, manifest=manifest, records=records, summary=summary
    )


def summarize_run(
    run: Union[RunArtifact, str, pathlib.Path],
) -> Dict[str, Any]:
    """Aggregate a saved run into the quantities ``repro stats`` prints.

    Works from the event stream alone, so it summarizes interrupted runs
    (no summary record) and runs written without metrics attached.
    """
    artifact = run if isinstance(run, RunArtifact) else load_run(run)
    slots = artifact.of_type("slot")
    arrivals = artifact.of_type("arrival")
    deliveries = artifact.of_type("delivery")
    collisions = artifact.of_type("collision")

    feedback_mix: Dict[str, int] = {"ack": 0, "silence": 0, "busy": 0}
    slot_lengths: Dict[str, int] = {}
    max_backlog = 0
    horizon = Fraction(0)
    for record in slots:
        feedback_mix[record["fb"]] = feedback_mix.get(record["fb"], 0) + 1
        length = _frac(parse_time(record["end"]) - parse_time(record["start"]))
        slot_lengths[length] = slot_lengths.get(length, 0) + 1
        horizon = max(horizon, parse_time(record["end"]))
    for record in arrivals + deliveries + slots:
        backlog = record.get("backlog")
        if backlog is not None and backlog > max_backlog:
            max_backlog = backlog

    summary = artifact.summary or {}
    latencies = [parse_time(r["latency"]) for r in deliveries]
    mean_latency = (
        sum(latencies, Fraction(0)) / len(latencies) if latencies else None
    )
    return {
        "path": str(artifact.path) if artifact.path else None,
        "config": (artifact.manifest or {}).get("config", {}),
        "git_commit": (artifact.manifest or {}).get("git_commit"),
        "slot_events": summary.get("slot_events", len(slots)),
        "slot_records": len(slots),
        "horizon": _frac(horizon) if slots else summary.get("horizon"),
        "feedback_mix": feedback_mix,
        "slot_length_histogram": dict(
            sorted(slot_lengths.items(), key=lambda kv: Fraction(kv[0]))
        ),
        "arrivals": len(arrivals),
        "delivered": summary.get("delivered", len(deliveries)),
        "collisions": summary.get("collisions", len(collisions)),
        "max_backlog": max_backlog,
        "final_backlog": summary.get("backlog"),
        "mean_latency": _frac(mean_latency) if mean_latency is not None else None,
        "wall_time_s": summary.get("wall_time_s"),
        "events_per_second": summary.get("events_per_second"),
    }


def render_summary(stats: Dict[str, Any]) -> List[str]:
    """Human-readable lines for one :func:`summarize_run` result."""
    lines: List[str] = []
    config = stats.get("config") or {}
    if config:
        pairs = " ".join(f"{k}={v}" for k, v in config.items())
        lines.append(f"run: {pairs}")
    if stats.get("git_commit"):
        lines.append(f"git: {stats['git_commit']}")
    lines.append(
        f"slot events: {stats['slot_events']} "
        f"(records kept: {stats['slot_records']})"
    )
    if stats.get("horizon") is not None:
        lines.append(f"horizon: t = {stats['horizon']}")
    mix = stats["feedback_mix"]
    total = sum(mix.values()) or 1
    lines.append(
        "feedback mix: "
        + "  ".join(
            f"{kind}={count} ({100.0 * count / total:.1f}%)"
            for kind, count in mix.items()
        )
    )
    histogram = stats["slot_length_histogram"]
    if histogram:
        lines.append(
            "slot lengths: "
            + "  ".join(f"{length}: {count}" for length, count in histogram.items())
        )
    lines.append(
        f"packets: arrivals={stats['arrivals']} delivered={stats['delivered']} "
        f"max_backlog={stats['max_backlog']}"
    )
    lines.append(f"collisions: {stats['collisions']}")
    if stats.get("mean_latency") is not None:
        lines.append(
            f"mean latency: {float(Fraction(stats['mean_latency'])):.2f} "
            f"(exact {stats['mean_latency']})"
        )
    if stats.get("wall_time_s") is not None:
        eps = stats.get("events_per_second")
        eps_text = f" ({eps:.0f} events/s)" if isinstance(eps, (int, float)) else ""
        lines.append(f"wall time: {stats['wall_time_s']:.3f}s{eps_text}")
    return lines
