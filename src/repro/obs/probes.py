"""Probe layer: named hook points inside the simulator, zero-cost when idle.

The :class:`~repro.core.simulator.Simulator` exposes six *probe points*
— moments in the event loop where observers may attach:

========== =========================================================
event      fired
========== =========================================================
slot_begin a station's next slot opens (length already fixed)
slot_end   a station's slot closed and its feedback was computed
feedback   feedback for a closed slot (subset of slot_end payload,
           for subscribers that only care about the channel's answer)
arrival    the arrival adversary injected a packet
delivery   a packet's transmission was acknowledged
collision  a transmission was overlapped for the first time (counts
           exactly like ``ChannelStats.collisions``)
========== =========================================================

Design constraints, in order:

1. **Near-zero overhead when nobody listens.**  Stability runs process
   tens of millions of slots; the instrumented simulator must stay
   within a few percent of the bare one.  The simulator therefore keeps
   the bus in a single attribute (``None`` by default) and each probe
   point is guarded by one attribute load + truthiness test on the
   per-event subscriber list.  Event objects are only constructed when
   at least one subscriber is attached to that specific event.
2. **No behavioral feedback.**  Subscribers observe; they cannot change
   the execution.  Determinism tests pin this: a run with an empty (or
   fully subscribed) bus is bit-identical to a run without one.
3. **No import cycle.**  This module deliberately imports nothing from
   :mod:`repro.core` at runtime, so the core can import it freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core<->obs cycle
    from fractions import Fraction

    from ..core.feedback import Feedback
    from ..core.station import Action
    from ..core.timebase import Interval, Time


#: The probe point names, in rough firing order within one slot.
PROBE_EVENTS: Tuple[str, ...] = (
    "slot_begin",
    "slot_end",
    "feedback",
    "arrival",
    "delivery",
    "collision",
)


@dataclass(slots=True)
class SlotBeginEvent:
    """A station's slot just opened; its adversarial length is fixed."""

    station_id: int
    slot_index: int
    start: "Time"
    length: "Fraction"
    action: "Action"


@dataclass(slots=True)
class SlotEndEvent:
    """A station's slot closed: the full per-slot story.

    ``queue_size`` is the station's queue length after delivery pops and
    arrival pushes — what the algorithm saw when choosing its next
    action.  ``backlog`` is the system-wide undelivered packet count at
    the slot boundary.
    """

    station_id: int
    slot_index: int
    interval: "Interval"
    action: "Action"
    feedback: "Feedback"
    queue_size: int
    delivered: bool
    backlog: int
    carried_packet_id: Optional[int]


@dataclass(slots=True)
class FeedbackEvent:
    """The channel's per-slot answer, stripped of algorithm context."""

    station_id: int
    slot_index: int
    at: "Time"
    feedback: "Feedback"


@dataclass(slots=True)
class ArrivalEvent:
    """The arrival adversary injected one packet."""

    packet_id: int
    station_id: int
    at: "Time"
    backlog: int


@dataclass(slots=True)
class DeliveryEvent:
    """A packet's transmission was acknowledged."""

    packet_id: int
    station_id: int
    at: "Time"
    latency: "Fraction"
    cost: "Fraction"
    backlog: int


@dataclass(slots=True)
class CollisionEvent:
    """A transmission was overlapped for the first time.

    One event per *transmission that became overlapped*, matching the
    semantics of ``ChannelStats.collisions`` (a pairwise collision fires
    twice, a k-way pile-up k times).
    """

    station_id: int
    interval: "Interval"
    is_control: bool


class ProbeBus:
    """Dispatches simulator events to zero-or-more subscribers.

    The per-event subscriber lists are public attributes named after the
    probe points; the simulator iterates them directly after a
    truthiness check, which is what keeps the unsubscribed cost to a
    single attribute load per probe point.

    >>> bus = ProbeBus()
    >>> seen = []
    >>> unsubscribe = bus.subscribe("slot_end", seen.append)
    >>> bus.emit("slot_end", "payload")
    >>> seen
    ['payload']
    >>> unsubscribe()
    >>> bus.any_subscribers
    False
    """

    __slots__ = tuple(PROBE_EVENTS)

    def __init__(self) -> None:
        for event in PROBE_EVENTS:
            setattr(self, event, [])

    def _subscribers(self, event: str) -> List[Callable[[Any], None]]:
        if event not in PROBE_EVENTS:
            raise ValueError(
                f"unknown probe event {event!r} (use one of {', '.join(PROBE_EVENTS)})"
            )
        return getattr(self, event)

    def subscribe(
        self, event: str, callback: Callable[[Any], None]
    ) -> Callable[[], None]:
        """Attach ``callback`` to a probe point; returns an unsubscriber."""
        subscribers = self._subscribers(event)
        subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def subscribe_many(
        self, callbacks: Dict[str, Callable[[Any], None]]
    ) -> Callable[[], None]:
        """Attach several ``{event: callback}`` pairs; one unsubscriber for all."""
        unsubscribers = [
            self.subscribe(event, callback) for event, callback in callbacks.items()
        ]

        def unsubscribe_all() -> None:
            for unsubscribe in unsubscribers:
                unsubscribe()

        return unsubscribe_all

    def emit(self, event: str, payload: Any) -> None:
        """Dispatch ``payload`` to every subscriber of ``event``.

        The simulator inlines this (guard + loop) at its hot probe
        points; external producers can use this method directly.
        """
        for callback in self._subscribers(event):
            callback(payload)

    def __deepcopy__(self, memo: Dict[int, Any]) -> "ProbeBus":
        """Clones get a fresh, empty bus.

        Look-ahead adversaries deep-copy a mid-decision simulator to
        probe candidate futures; those speculative executions must not
        re-emit into the real run's subscribers (double counting) nor
        drag unpicklable sinks (open JSONL streams) through ``deepcopy``.
        """
        fresh = ProbeBus()
        memo[id(self)] = fresh
        return fresh

    @property
    def any_subscribers(self) -> bool:
        """True when at least one subscriber is attached to any event."""
        return any(getattr(self, event) for event in PROBE_EVENTS)

    def counts(self) -> Dict[str, int]:
        """Subscriber count per event (diagnostics)."""
        return {event: len(getattr(self, event)) for event in PROBE_EVENTS}
