"""Wall-time attribution and progress reporting for long runs.

:class:`PhaseProfiler` answers "where does a million-slot run spend its
wall time?" by accumulating per-phase totals the simulator reports
around its three externally-supplied hot paths:

* ``adversary`` — ``slot_adversary.next_slot_length`` calls;
* ``channel``  — feedback resolution over the transmission registry;
* ``algorithm`` — station automaton steps (``first_action`` /
  ``on_slot_end``).

The remainder (heap operations, arrival pumping, bookkeeping) is the
simulator's own overhead: ``total_wall - sum(phases)``.

:class:`ProgressReporter` subscribes to the ``slot_end`` probe and
periodically prints one status line (events, simulated time, backlog,
events/sec) so a long Theorem 3/6 stability run is watchable instead of
silent.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, List, Optional, TextIO

from .probes import ProbeBus, SlotEndEvent


class PhaseProfiler:
    """Accumulates wall-time per named simulator phase.

    The simulator calls :meth:`add` with durations it measured itself
    (keeping the no-profiler fast path free of any clock reads).
    """

    __slots__ = ("seconds", "calls", "_started_at")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._started_at = time.perf_counter()

    def add(self, phase: str, duration: float) -> None:
        """Record one timed call of ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + duration
        self.calls[phase] = self.calls.get(phase, 0) + 1

    @property
    def total_wall(self) -> float:
        """Wall time since the profiler was created."""
        return time.perf_counter() - self._started_at

    def as_dict(self) -> Dict[str, Any]:
        total = self.total_wall
        attributed = sum(self.seconds.values())
        return {
            "total_wall_s": round(total, 6),
            "attributed_s": round(attributed, 6),
            "other_s": round(max(0.0, total - attributed), 6),
            "phases": {
                phase: {
                    "seconds": round(self.seconds[phase], 6),
                    "calls": self.calls[phase],
                    "mean_us": round(
                        1e6 * self.seconds[phase] / self.calls[phase], 3
                    )
                    if self.calls[phase]
                    else None,
                }
                for phase in sorted(self.seconds)
            },
        }

    def render(self) -> List[str]:
        """Human-readable per-phase report, heaviest phase first."""
        total = self.total_wall
        lines = [f"wall time: {total:.3f}s"]
        for phase in sorted(self.seconds, key=self.seconds.get, reverse=True):
            seconds = self.seconds[phase]
            calls = self.calls[phase]
            share = 100.0 * seconds / total if total > 0 else 0.0
            mean_us = 1e6 * seconds / calls if calls else 0.0
            lines.append(
                f"  {phase:<10} {seconds:8.3f}s ({share:4.1f}%)  "
                f"{calls} calls, {mean_us:.1f}us/call"
            )
        other = max(0.0, total - sum(self.seconds.values()))
        share = 100.0 * other / total if total > 0 else 0.0
        lines.append(f"  {'other':<10} {other:8.3f}s ({share:4.1f}%)  simulator overhead")
        return lines


class ProgressReporter:
    """Periodic one-line progress for long runs (stderr by default).

    ``every_events`` bounds how often the wall clock is even consulted;
    ``min_interval_s`` then rate-limits actual output so tight event
    loops do not flood the terminal.
    """

    def __init__(
        self,
        every_events: int = 100_000,
        min_interval_s: float = 1.0,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {every_events}")
        self.every_events = every_events
        self.min_interval_s = min_interval_s
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._events = 0
        self._started = self._clock()
        self._last_report = self._started
        self._last_events = 0
        self._window_rate = 0.0
        self.reports_emitted = 0

    @property
    def events(self) -> int:
        """Events counted so far (ticks, not reports)."""
        return self._events

    @property
    def window_rate(self) -> float:
        """Events/sec over the window ending at the last report."""
        return self._window_rate

    def tick(self, describe: Callable[["ProgressReporter"], str]) -> None:
        """Count one event; maybe emit ``describe(self)`` as a line.

        This is the generic rate-limited core: ``every_events`` bounds
        how often the wall clock is consulted, ``min_interval_s``
        rate-limits actual output.  The slot-end subscription uses it,
        and so does :mod:`repro.exec.pool` for per-cell grid progress
        — one reporter, one cadence, whatever drives it.
        """
        self._events += 1
        if self._events % self.every_events:
            return
        now = self._clock()
        if now - self._last_report < self.min_interval_s:
            return
        self._window_rate = (self._events - self._last_events) / (
            now - self._last_report
        )
        self.stream.write(describe(self) + "\n")
        self.stream.flush()
        self._last_report = now
        self._last_events = self._events
        self.reports_emitted += 1

    def _on_slot_end(self, event: SlotEndEvent) -> None:
        self.tick(
            lambda reporter: (
                f"[repro] events={reporter.events} "
                f"t={float(event.interval.end):.1f} "
                f"backlog={event.backlog} rate={reporter.window_rate:.0f} ev/s"
            )
        )

    def attach(self, bus: ProbeBus) -> Callable[[], None]:
        """Subscribe to ``slot_end``; returns an unsubscriber."""
        self._started = self._clock()
        self._last_report = self._started
        return bus.subscribe("slot_end", self._on_slot_end)
