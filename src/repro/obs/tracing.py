"""Flight recorder: hierarchical spans across the fork boundary.

The exec engine (pool, retries, timeouts, cache, journal) and the
simulator itself know *what* happened; this module records *where the
wall clock went* while it happened.  A :class:`Tracer` collects
**spans** — named intervals with a monotonic start, a duration,
structured attributes, and a parent id — and exports them as Chrome
trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Span taxonomy and the on-disk format are
documented in ``docs/tracing.md``.

Design constraints, in order:

1. **Zero cost when off.**  Tracing is opt-in (``--trace`` on the
   CLI); every producer guards with ``tracer = current_tracer()`` /
   ``if tracer is not None`` — one module-global load per call site.
   The existing ``exec_overhead`` perf probe polices the serial task
   path staying under its 5% budget.
2. **Fork-safe.**  Grid cells execute in forked workers.  The active
   tracer is inherited through fork (a module global), spans buffered
   in a child are appended to a per-pid **spool file** (one JSONL line
   per span, ``O_APPEND``-safe), and the parent merges every spool at
   export time.  A child detects the fork by pid change and drops any
   buffer inherited from the parent, so nothing is double-counted.
   Span ids are pid-qualified, so ids never collide across processes.
3. **Deterministic content.**  Span names, attributes, parent/child
   structure and counts are functions of the execution alone — two
   runs of the same scenario produce the same span tree; only
   timestamps (and pids) differ.  Attributes never embed clocks.

Timestamps come from ``time.perf_counter_ns`` (CLOCK_MONOTONIC on
Linux), which is comparable across parent and forked children, so
parent-side attempt spans correctly *contain* the worker-side cell
spans they supervised.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "deactivate",
    "load_trace",
    "render_trace_summary",
    "summarize_trace",
]

#: Trace-format version, recorded in exported metadata.
TRACE_VERSION = 1


def _now_us() -> int:
    """Microseconds on the shared monotonic clock."""
    return time.perf_counter_ns() // 1000


class Span:
    """One recorded interval; mutable while open, frozen semantics after.

    ``args`` is the structured-attribute dict (Chrome's name for span
    attributes); :meth:`set` merges more attributes while the span is
    open — the idiom for outcomes that are only known at the end
    (``span.set(outcome="timeout")``).
    """

    __slots__ = ("name", "cat", "ts", "dur", "pid", "tid", "id", "parent", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ts: int,
        dur: int,
        pid: int,
        tid: int,
        span_id: str,
        parent: Optional[str],
        args: Dict[str, Any],
    ) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.pid = pid
        self.tid = tid
        self.id = span_id
        self.parent = parent
        self.args = args

    def set(self, **attrs: Any) -> "Span":
        """Merge attributes into the span (outcomes, counts)."""
        self.args.update(attrs)
        return self

    def to_record(self) -> Dict[str, Any]:
        """The span as one JSON-native dict (spool line / export unit)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "id": self.id,
            "parent": self.parent,
            "args": self.args,
        }


class Tracer:
    """Collects spans in-process and merges forked children's spools.

    Usage (the CLI does exactly this)::

        tracer = Tracer()
        activate(tracer)
        try:
            ...  # run a grid; pool/cache/cell code records spans
        finally:
            deactivate()
        tracer.export_chrome("out.json")

    ``spool_dir`` is where forked children append their spans; by
    default a private temp directory, removed by :meth:`close` /
    :meth:`export_chrome`.  The tracer is single-threaded by design —
    the simulator and the pool's parent loop are too.
    """

    def __init__(self, spool_dir: Union[str, pathlib.Path, None] = None) -> None:
        if spool_dir is None:
            self._spool = pathlib.Path(tempfile.mkdtemp(prefix="repro-trace-"))
            self._owns_spool = True
        else:
            self._spool = pathlib.Path(spool_dir)
            self._spool.mkdir(parents=True, exist_ok=True)
            self._owns_spool = False
        self._root_pid = os.getpid()
        self._pid = os.getpid()
        self._counter = 0
        self._buffer: List[Span] = []
        self._stack: List[Span] = []
        self._pushed_tid: List[bool] = []
        self._tid_stack: List[int] = [0]
        #: Worker pids announced by the pool, for process-name metadata.
        self.worker_pids: Dict[int, str] = {}

    # -- fork handling --------------------------------------------------

    def _check_fork(self) -> None:
        """After a fork, drop state inherited from the parent's buffer."""
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._counter = 0
            self._buffer = []
            # The open-span stack is kept: spans opened in the parent
            # are this process's ancestors — new spans parent to them,
            # but only the parent process will ever *close* them.
            self._stack = list(self._stack)
            self._pushed_tid = list(self._pushed_tid)

    @property
    def spool_dir(self) -> pathlib.Path:
        return self._spool

    def _next_id(self) -> str:
        self._counter += 1
        return f"{self._pid}:{self._counter}"

    # -- recording ------------------------------------------------------

    @property
    def current_tid(self) -> int:
        return self._tid_stack[-1]

    @property
    def current_parent(self) -> Optional[str]:
        return self._stack[-1].id if self._stack else None

    def begin(
        self,
        name: str,
        cat: str = "repro",
        tid: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; pair with :meth:`end` (or use :meth:`span`).

        The explicit begin/end form exists for call sites whose control
        flow does not fit a ``with`` block — the pool's retry loop ends
        the same attempt span from three different exits.
        """
        self._check_fork()
        pushed_tid = tid is not None
        if pushed_tid:
            self._tid_stack.append(tid)
        span = Span(
            name=name,
            cat=cat,
            ts=_now_us(),
            dur=0,
            pid=self._pid,
            tid=self._tid_stack[-1],
            span_id=self._next_id(),
            parent=self.current_parent,
            args=dict(attrs),
        )
        self._stack.append(span)
        self._pushed_tid.append(pushed_tid)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close the innermost open span (must be ``span``) and buffer it."""
        if attrs:
            span.args.update(attrs)
        span.dur = _now_us() - span.ts
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
            if self._pushed_tid.pop():
                self._tid_stack.pop()
        self._buffer.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "repro",
        tid: Optional[int] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Record one interval around a ``with`` body.

        ``tid`` sets the Chrome thread lane for this span *and* every
        span opened inside it (the pool uses the task index, so each
        grid cell gets its own lane).  Attributes given here — plus any
        added via ``span.set`` inside the body — are exported as
        ``args``.
        """
        span = self.begin(name, cat, tid=tid, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def add_span(
        self,
        name: str,
        cat: str = "repro",
        *,
        ts: int,
        dur: int,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
        parent: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record a span with explicit timing (parent-side bookkeeping).

        The pool uses this for attempt/worker spans whose start it
        observed earlier (and whose process may be dead by now);
        ``pid``/``tid`` default to this process and the current lane.
        """
        self._check_fork()
        span = Span(
            name=name,
            cat=cat,
            ts=ts,
            dur=max(0, dur),
            pid=self._pid if pid is None else pid,
            tid=self._tid_stack[-1] if tid is None else tid,
            span_id=self._next_id(),
            parent=parent if parent is not None else self.current_parent,
            args=dict(attrs),
        )
        self._buffer.append(span)
        return span

    def now_us(self) -> int:
        """The tracer's clock, for explicit :meth:`add_span` timing."""
        return _now_us()

    # -- spool / merge --------------------------------------------------

    def flush(self) -> None:
        """Append buffered spans to this process's spool file.

        Forked workers call this after each task; the parent does not
        need to (its buffer is merged directly at export), but flushing
        in the parent is harmless — pid-keyed spool files make the
        merge idempotent per process.
        """
        self._check_fork()
        if not self._buffer:
            return
        path = self._spool / f"spans-{self._pid}.jsonl"
        with open(path, "a", encoding="utf-8") as stream:
            for span in self._buffer:
                stream.write(
                    json.dumps(span.to_record(), separators=(",", ":")) + "\n"
                )
        self._buffer = []

    def _spool_records(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        if not self._spool.exists():
            return records
        for path in sorted(self._spool.glob("spans-*.jsonl")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail of a killed worker
        return records

    def spans(self) -> List[Dict[str, Any]]:
        """Every recorded span (buffer + spools), as plain dicts.

        Sorted by start time then id, so the order is stable for a
        given set of timestamps.
        """
        records = [span.to_record() for span in self._buffer]
        records.extend(self._spool_records())
        records.sort(key=lambda r: (r["ts"], r["pid"], r["id"]))
        return records

    # -- export ---------------------------------------------------------

    def export_chrome(
        self, path: Union[str, pathlib.Path], *, cleanup: bool = True
    ) -> pathlib.Path:
        """Write Chrome trace-event JSON; returns the path written.

        The document is ``{"traceEvents": [...]}`` with one complete
        (``"ph": "X"``) event per span plus process/thread metadata
        events, timestamps re-based so the trace starts at zero.  Load
        it in Perfetto or ``chrome://tracing`` as-is.
        """
        records = self.spans()
        base = min((r["ts"] for r in records), default=0)
        events: List[Dict[str, Any]] = []
        seen_pids: Dict[int, str] = {}
        for record in records:
            pid = record["pid"]
            if pid not in seen_pids:
                if pid == self._root_pid:
                    seen_pids[pid] = "repro"
                else:
                    seen_pids[pid] = self.worker_pids.get(pid, f"worker-{pid}")
            events.append(
                {
                    "ph": "X",
                    "name": record["name"],
                    "cat": record["cat"],
                    "ts": record["ts"] - base,
                    "dur": record["dur"],
                    "pid": pid,
                    "tid": record["tid"],
                    "args": dict(
                        record["args"],
                        span=record["id"],
                        parent=record["parent"],
                    ),
                }
            )
        metadata = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
            for pid, label in sorted(seen_pids.items())
        ]
        document = {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro", "traceVersion": TRACE_VERSION},
        }
        target = pathlib.Path(path)
        if target.parent != pathlib.Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
        if cleanup:
            self.close()
        return target

    def close(self) -> None:
        """Remove the private spool directory (owned tempdirs only)."""
        if self._owns_spool and self._spool.exists():
            shutil.rmtree(self._spool, ignore_errors=True)


#: The process-wide active tracer; forked children inherit it.
_ACTIVE: Optional[Tracer] = None


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def deactivate() -> None:
    """Clear the active tracer (does not export or close it)."""
    global _ACTIVE
    _ACTIVE = None


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is off (the hot check)."""
    return _ACTIVE


# -- reading exported traces -------------------------------------------


def load_trace(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Read an exported Chrome trace back; returns the ``X`` events.

    Raises ``ValueError`` when the file is not a trace produced here
    (or by anything else emitting ``traceEvents``).
    """
    raw = pathlib.Path(path).read_text(encoding="utf-8")
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a JSON trace file: {exc}") from None
    if isinstance(document, list):
        events = document
    elif isinstance(document, dict) and isinstance(
        document.get("traceEvents"), list
    ):
        events = document["traceEvents"]
    else:
        raise ValueError("no traceEvents array found")
    return [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]


def summarize_trace(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Aggregate a trace: per-name totals/self-time + failure timeline.

    Self-time subtracts each span's direct children (linked by the
    ``args.parent`` ids the exporter embeds), so a ``pool`` span is not
    charged for the attempts it supervised.
    """
    events = load_trace(path)
    child_dur: Dict[str, int] = {}
    for event in events:
        parent = (event.get("args") or {}).get("parent")
        if parent:
            child_dur[parent] = child_dur.get(parent, 0) + int(event.get("dur", 0))
    names: Dict[str, Dict[str, Any]] = {}
    attempts: List[Dict[str, Any]] = []
    pids = set()
    for event in events:
        args = event.get("args") or {}
        dur = int(event.get("dur", 0))
        span_id = args.get("span")
        self_us = max(0, dur - child_dur.get(span_id, 0)) if span_id else dur
        entry = names.setdefault(
            event.get("name", "?"), {"count": 0, "total_us": 0, "self_us": 0}
        )
        entry["count"] += 1
        entry["total_us"] += dur
        entry["self_us"] += self_us
        pids.add(event.get("pid"))
        if event.get("name") == "attempt":
            attempts.append(
                {
                    "ts": int(event.get("ts", 0)),
                    "dur": dur,
                    "task": args.get("task"),
                    "attempt": args.get("attempt"),
                    "outcome": args.get("outcome"),
                    "retried": bool(args.get("retried")),
                }
            )
    attempts.sort(key=lambda a: a["ts"])
    return {
        "path": str(path),
        "events": len(events),
        "processes": len(pids),
        "names": names,
        "attempts": attempts,
        "retries": sum(1 for a in attempts if a["retried"]),
        "timeouts": sum(1 for a in attempts if a["outcome"] == "timeout"),
        "crashes": sum(1 for a in attempts if a["outcome"] == "crash"),
        "errors": sum(1 for a in attempts if a["outcome"] == "error"),
    }


def render_trace_summary(summary: Dict[str, Any], top: int = 12) -> List[str]:
    """Human-readable lines for one :func:`summarize_trace` result."""
    lines = [
        f"trace: {summary['path']}",
        f"spans: {summary['events']} across {summary['processes']} process(es)",
    ]
    ranked = sorted(
        summary["names"].items(), key=lambda kv: kv[1]["self_us"], reverse=True
    )
    if ranked:
        lines.append(f"top spans by self-time (of {len(ranked)} kinds):")
        width = max(len(name) for name, _ in ranked[:top])
        for name, entry in ranked[:top]:
            lines.append(
                f"  {name:<{width}}  n={entry['count']:<6} "
                f"self={entry['self_us'] / 1e6:9.4f}s "
                f"total={entry['total_us'] / 1e6:9.4f}s"
            )
    disturbed = [a for a in summary["attempts"] if a["outcome"] != "ok" or a["retried"]]
    if disturbed:
        lines.append(
            f"retry/timeout timeline ({summary['retries']} retried, "
            f"{summary['timeouts']} timeouts, {summary['crashes']} crashes, "
            f"{summary['errors']} errors):"
        )
        base = summary["attempts"][0]["ts"] if summary["attempts"] else 0
        for a in disturbed:
            lines.append(
                f"  +{(a['ts'] - base) / 1e6:8.3f}s task={a['task']} "
                f"attempt={a['attempt']} outcome={a['outcome']}"
                + (" -> retried" if a["retried"] else "")
            )
    elif summary["attempts"]:
        lines.append(
            f"attempts: {len(summary['attempts'])}, all first-try ok"
        )
    return lines
