"""Admissible-by-construction workload generators.

Each generator targets a nominal ``(rho, b)`` leaky bucket **in cost
units** under a caller-chosen per-packet cost assumption:

* ``assumed_cost = R`` (the default used by the stability benches) is
  conservative — whatever slot lengths the timing adversary picks, the
  realized pattern is admissible, since realized cost never exceeds R.
* ``assumed_cost = 1`` is the optimistic reading, useful when the
  timing adversary is synchronous.

All generators are deterministic (given their seed, where applicable)
and produce exact-rational arrival times, so executions replay
bit-for-bit.
"""

from __future__ import annotations

import random
from fractions import Fraction
from math import lcm
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.timebase import Time, TimeLike, as_time
from .source import Arrival, ArrivalSource


class _TargetPolicy:
    """Chooses which station receives the next packet."""

    def next_target(self) -> int:
        raise NotImplementedError


class RoundRobinTargets(_TargetPolicy):
    """Cycle deterministically over the given stations."""

    def __init__(self, station_ids: Sequence[int]) -> None:
        if not station_ids:
            raise ConfigurationError("need at least one target station")
        self._ids = list(station_ids)
        self._cursor = 0

    def next_target(self) -> int:
        sid = self._ids[self._cursor % len(self._ids)]
        self._cursor += 1
        return sid


class RandomTargets(_TargetPolicy):
    """Pick targets uniformly at random (seeded, reproducible)."""

    def __init__(self, station_ids: Sequence[int], seed: int) -> None:
        if not station_ids:
            raise ConfigurationError("need at least one target station")
        self._ids = list(station_ids)
        self._rng = random.Random(seed)

    def next_target(self) -> int:
        return self._rng.choice(self._ids)


class SingleTarget(_TargetPolicy):
    """Every packet goes to one station (maximal per-queue pressure)."""

    def __init__(self, station_id: int) -> None:
        self._id = station_id

    def next_target(self) -> int:
        return self._id


class UniformRate(ArrivalSource):
    """Evenly spaced injections at cost-rate ``rho``.

    Packet ``k`` arrives at ``start + k * assumed_cost / rho``; charging
    each packet ``assumed_cost`` makes the pattern ``(rho, b)``-
    admissible for any ``b >= assumed_cost`` (a single packet's cost
    lands atomically at its arrival instant).

    Args:
        rho: Target injection rate in cost units per time unit, > 0.
        targets: Target policy (or a list of ids → round-robin).
        assumed_cost: Per-packet cost budgeted at injection.
        start: Time of the first arrival.
        limit: Optional cap on the number of packets ever produced.
    """

    def __init__(
        self,
        rho: TimeLike,
        targets,
        assumed_cost: TimeLike,
        start: TimeLike = 0,
        limit: Optional[int] = None,
    ) -> None:
        self.rho = as_time(rho)
        if self.rho <= 0:
            raise ConfigurationError(f"rho must be > 0, got {self.rho}")
        self.assumed_cost = as_time(assumed_cost)
        if self.assumed_cost <= 0:
            raise ConfigurationError("assumed_cost must be > 0")
        self.start = as_time(start)
        self.limit = limit
        self._policy = (
            targets if isinstance(targets, _TargetPolicy) else RoundRobinTargets(targets)
        )
        self._emitted = 0
        self._spacing = self.assumed_cost / self.rho
        # Maintained incrementally (exact addition == start + k * spacing).
        self._next_time = self.start

    def arrivals_until(self, sim, upto: Time) -> Iterator[Arrival]:
        while self.limit is None or self._emitted < self.limit:
            t = self._next_time
            if t > upto:
                return
            self._emitted += 1
            self._next_time = t + self._spacing
            yield (t, self._policy.next_target())

    def lattice_denominator(self) -> int:
        # Arrival k is start + k * spacing: multiples of 1/lcm(dens).
        return lcm(self.start.denominator, self._spacing.denominator)

    def next_arrival_hint(self) -> Optional[Time]:
        if self.limit is not None and self._emitted >= self.limit:
            return None
        return self._next_time


class BurstyRate(ArrivalSource):
    """Periodic bursts: ``burst_size`` packets at once, average rate ``rho``.

    Burst ``j`` (of ``burst_size`` simultaneous packets) arrives at
    ``start + j * burst_size * assumed_cost / rho``.  The pattern is
    ``(rho, b)``-admissible for ``b >= burst_size * assumed_cost`` and
    exercises exactly the burstiness headroom of Definition 1.
    """

    def __init__(
        self,
        rho: TimeLike,
        burst_size: int,
        targets,
        assumed_cost: TimeLike,
        start: TimeLike = 0,
        limit: Optional[int] = None,
    ) -> None:
        if burst_size < 1:
            raise ConfigurationError("burst_size must be >= 1")
        self.rho = as_time(rho)
        if self.rho <= 0:
            raise ConfigurationError(f"rho must be > 0, got {self.rho}")
        self.assumed_cost = as_time(assumed_cost)
        self.burst_size = burst_size
        self.start = as_time(start)
        self.limit = limit
        self._policy = (
            targets if isinstance(targets, _TargetPolicy) else RoundRobinTargets(targets)
        )
        self._emitted = 0
        self._period = burst_size * self.assumed_cost / self.rho
        # Maintained incrementally (exact: start + (emitted // size) * period).
        self._next_time = self.start

    def arrivals_until(self, sim, upto: Time) -> Iterator[Arrival]:
        while self.limit is None or self._emitted < self.limit:
            t = self._next_time
            if t > upto:
                return
            self._emitted += 1
            if self._emitted % self.burst_size == 0:
                self._next_time = t + self._period
            yield (t, self._policy.next_target())

    def lattice_denominator(self) -> int:
        # Burst j arrives at start + j * period: multiples of 1/lcm(dens).
        return lcm(self.start.denominator, self._period.denominator)

    def next_arrival_hint(self) -> Optional[Time]:
        if self.limit is not None and self._emitted >= self.limit:
            return None
        return self._next_time


class PoissonLike(ArrivalSource):
    """Randomized inter-arrival gaps with mean ``assumed_cost / rho``.

    Gaps are drawn from a discretized exponential-ish distribution over
    exact rationals (denominator-bounded), then *clamped* so the
    cumulative pattern never exceeds the ``(rho, b)`` envelope — i.e.,
    randomness is shaped to stay admissible.  Deterministic per seed.
    """

    def __init__(
        self,
        rho: TimeLike,
        burstiness: TimeLike,
        targets,
        assumed_cost: TimeLike,
        seed: int,
        start: TimeLike = 0,
        limit: Optional[int] = None,
        denominator: int = 16,
    ) -> None:
        self.rho = as_time(rho)
        if self.rho <= 0:
            raise ConfigurationError(f"rho must be > 0, got {self.rho}")
        self.assumed_cost = as_time(assumed_cost)
        self.burstiness = as_time(burstiness)
        if self.burstiness < self.assumed_cost:
            raise ConfigurationError(
                "burstiness must cover at least one packet's assumed cost"
            )
        self.start = as_time(start)
        self.limit = limit
        self._denominator = denominator
        self._policy = (
            targets if isinstance(targets, _TargetPolicy) else RoundRobinTargets(targets)
        )
        self._rng = random.Random(seed)
        self._emitted = 0
        self._next_time = self.start
        # Token bucket: tokens accrue at rho, capped at the burstiness,
        # so the (rho, b) constraint holds over *every* window, not just
        # windows anchored at the start.
        self._tokens = self.burstiness
        self._last_refill = self.start

    def _draw_gap(self) -> Fraction:
        """A random rational gap with mean ~ assumed_cost / rho."""
        mean = self.assumed_cost / self.rho
        u = self._rng.random()
        # Piecewise approximation of an exponential: heavier weight on
        # short gaps, occasional long ones; quantized to exact rationals.
        if u < 0.5:
            scale = Fraction(1, 2)
        elif u < 0.8:
            scale = Fraction(1)
        elif u < 0.95:
            scale = Fraction(2)
        else:
            scale = Fraction(4)
        jitter = Fraction(self._rng.randint(0, self._denominator), self._denominator)
        return mean * scale * (Fraction(1, 2) + jitter)

    def _refill(self, now: Fraction) -> None:
        self._tokens = min(
            self.burstiness, self._tokens + self.rho * (now - self._last_refill)
        )
        self._last_refill = now

    def arrivals_until(self, sim, upto: Time) -> Iterator[Arrival]:
        while self.limit is None or self._emitted < self.limit:
            t = self._next_time
            if t > upto:
                return
            self._refill(t)
            if self._tokens < self.assumed_cost:
                # Too early — push this arrival to the instant the
                # bucket has refilled enough to pay for it.
                earliest = t + (self.assumed_cost - self._tokens) / self.rho
                if earliest > upto:
                    self._next_time = earliest
                    return
                t = earliest
                self._refill(t)
            self._tokens -= self.assumed_cost
            self._emitted += 1
            self._next_time = t + self._draw_gap()
            yield (t, self._policy.next_target())

    def lattice_denominator(self) -> Optional[int]:
        # The token-bucket clamp divides by rho (``(cost - tokens) /
        # rho``), so arrival denominators compound run-dependently; no
        # small static bound is provable.  Stay on the Fraction path.
        return None

    def next_arrival_hint(self) -> Optional[Time]:
        if self.limit is not None and self._emitted >= self.limit:
            return None
        # ``_next_time`` is the earliest candidate; the token-bucket
        # clamp can only push the realized arrival later.
        return self._next_time
