"""Packet-arrival adversaries and leaky-bucket-with-cost admissibility."""

from .adaptive import FeedOnlyIdleStations, StarveCurrentTransmitter
from .leaky_bucket import (
    BucketReport,
    CostedArrival,
    check_admissible,
    costed_arrivals_from_packets,
    tightest_burstiness,
)
from .patterns import (
    BurstyRate,
    PoissonLike,
    RandomTargets,
    RoundRobinTargets,
    SingleTarget,
    UniformRate,
)
from .source import (
    Arrival,
    ArrivalSource,
    CallbackSource,
    ConcatSource,
    NoArrivals,
    StaticSchedule,
)

__all__ = [
    "Arrival",
    "ArrivalSource",
    "BucketReport",
    "BurstyRate",
    "CallbackSource",
    "ConcatSource",
    "CostedArrival",
    "FeedOnlyIdleStations",
    "NoArrivals",
    "PoissonLike",
    "RandomTargets",
    "RoundRobinTargets",
    "SingleTarget",
    "StarveCurrentTransmitter",
    "StaticSchedule",
    "UniformRate",
    "check_admissible",
    "costed_arrivals_from_packets",
    "tightest_burstiness",
]
