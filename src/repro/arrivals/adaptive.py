"""Adaptive (state-observing) injection adversaries.

These sources implement the paper's *online* adversary: injection
decisions react to the live execution.  The flagship construction is
:class:`StarveCurrentTransmitter`, the Theorem 5 adversary — at rate
``rho = 1`` it keeps the system saturated while never feeding the
station that currently holds the channel, forcing the algorithm to hand
the channel over infinitely often; each handover wastes time under
asynchrony, so backlog grows without bound.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.timebase import Time, TimeLike, as_time
from .source import Arrival, ArrivalSource


def _current_transmitter(sim) -> Optional[int]:
    """The station transmitting at (or closest before) the current instant."""
    latest_start = None
    holder = None
    for sid in sim.station_ids:
        runtime = sim.stations[sid]
        action = runtime.action
        if action is not None and action.is_transmit:
            if latest_start is None or runtime.slot_start > latest_start:
                latest_start = runtime.slot_start
                holder = sid
    return holder


def _recent_successful_transmitter(sim) -> Optional[int]:
    """Station of the most recent successful transmission, if visible."""
    best_end = None
    holder = None
    for record in sim.channel.live_records:
        if record.successful and record.interval.end <= sim.now:
            if best_end is None or record.interval.end > best_end:
                best_end = record.interval.end
                holder = record.station_id
    return holder


class StarveCurrentTransmitter(ArrivalSource):
    """The Theorem 5 rate-one adversary.

    Accrues cost budget at rate ``rho`` (with initial burst ``b``) and,
    whenever a packet's worth of budget is available, injects it into a
    station *other than* the one currently transmitting (falling back
    to the most recent successful transmitter's complement, then to a
    round-robin of all stations).  With ``rho = 1`` and
    ``assumed_cost = 1`` under a synchronous-ish schedule, or
    ``assumed_cost = R`` in general, the injected cost saturates the
    channel while forcing perpetual handovers.
    """

    def __init__(
        self,
        rho: TimeLike,
        burstiness: TimeLike,
        assumed_cost: TimeLike,
        station_ids: Sequence[int],
        start: TimeLike = 0,
    ) -> None:
        if len(station_ids) < 2:
            raise ConfigurationError(
                "starving adversary needs at least two stations"
            )
        self.rho = as_time(rho)
        self.burstiness = as_time(burstiness)
        self.assumed_cost = as_time(assumed_cost)
        if self.assumed_cost <= 0:
            raise ConfigurationError("assumed_cost must be > 0")
        self.start = as_time(start)
        self._ids = list(station_ids)
        self._injected_cost = Fraction(0)
        self._rr_cursor = 0
        self._last_time = self.start

    def _pick_target(self, sim) -> int:
        avoid = _current_transmitter(sim)
        if avoid is None:
            avoid = _recent_successful_transmitter(sim)
        candidates: List[int] = [sid for sid in self._ids if sid != avoid]
        if not candidates:
            candidates = self._ids
        target = candidates[self._rr_cursor % len(candidates)]
        self._rr_cursor += 1
        return target

    def arrivals_until(self, sim, upto: Time) -> Iterator[Arrival]:
        if upto < self.start:
            return
        # Budget available by `upto`; inject as early as each packet's
        # cost is covered, splitting the initial burst at `start`.
        while True:
            needed = self._injected_cost + self.assumed_cost - self.burstiness
            if needed <= 0:
                t = self.start
            else:
                t = self.start + needed / self.rho
            if t < self._last_time:
                t = self._last_time
            if t > upto:
                return
            self._injected_cost += self.assumed_cost
            self._last_time = t
            yield (t, self._pick_target(sim))

    def lattice_denominator(self) -> None:
        # Injection instants involve ``needed / rho`` with a run-
        # dependent budget, so denominators are not statically bounded;
        # the adaptive target choice also reads the channel history
        # per arrival.  Stay on the exact Fraction path.
        return None


class FeedOnlyIdleStations(ArrivalSource):
    """Injects only into stations whose queues are currently empty.

    A gentler adaptive pattern that maximizes the number of *distinct*
    competitors in every leader election — worst case for election
    overhead rather than for handover waste.
    """

    def __init__(
        self,
        rho: TimeLike,
        burstiness: TimeLike,
        assumed_cost: TimeLike,
        station_ids: Sequence[int],
        start: TimeLike = 0,
    ) -> None:
        self.rho = as_time(rho)
        self.burstiness = as_time(burstiness)
        self.assumed_cost = as_time(assumed_cost)
        self.start = as_time(start)
        self._ids = list(station_ids)
        self._injected_cost = Fraction(0)
        self._rr_cursor = 0
        self._last_time = self.start

    def arrivals_until(self, sim, upto: Time) -> Iterator[Arrival]:
        if upto < self.start:
            return
        while True:
            needed = self._injected_cost + self.assumed_cost - self.burstiness
            t = self.start if needed <= 0 else self.start + needed / self.rho
            if t < self._last_time:
                t = self._last_time
            if t > upto:
                return
            empty = [sid for sid in self._ids if sim.queue_size(sid) == 0]
            pool = empty if empty else self._ids
            target = pool[self._rr_cursor % len(pool)]
            self._rr_cursor += 1
            self._injected_cost += self.assumed_cost
            self._last_time = t
            yield (t, target)
