"""Arrival sources: how the adversary injects packets over time.

An arrival source is pulled by the simulator: ``arrivals_until(sim,
upto)`` must yield every not-yet-reported arrival with time ``<= upto``
as ``(time, station_id)`` pairs in non-decreasing time order.  Sources
may be *adaptive* — they see the live simulator, matching the paper's
adversary, which chooses injection times and targets online (the
Theorem 5 construction stops feeding whichever station currently holds
the channel).
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.timebase import Time, TimeLike, as_time, declared_lattice_denominator

#: One injection: (arrival time, target station id).
Arrival = Tuple[Time, int]


class ArrivalSource:
    """Base class for packet injection adversaries."""

    def arrivals_until(self, sim, upto: Time) -> Iterable[Arrival]:
        """Yield all pending arrivals with time <= ``upto``, in order."""
        raise NotImplementedError

    def lattice_denominator(self) -> Optional[int]:
        """Smallest ``D`` such that every arrival instant is a multiple
        of ``1/D``, or ``None`` when no such bound can be promised.

        Declaring a lattice (together with the slot adversary's
        declaration) lets the simulator run on the scaled-integer fast
        timebase (see :mod:`repro.core.timebase`).  Adaptive sources
        stay at the conservative default.
        """
        return None

    # Sources that know their next injection instant in advance may
    # additionally expose ``next_arrival_hint() -> Optional[Time]``:
    # the earliest time at which the source could produce an arrival
    # (``None`` = exhausted, never again).  The simulator then skips
    # polling ``arrivals_until`` for events strictly before the hint —
    # a pure performance contract; adaptive sources simply omit the
    # method and are polled every event, exactly as before.


class NoArrivals(ArrivalSource):
    """The empty workload (used by pure SST / leader-election runs)."""

    def arrivals_until(self, sim, upto: Time) -> Iterable[Arrival]:
        return ()

    def lattice_denominator(self) -> int:
        return 1

    def next_arrival_hint(self) -> None:
        return None


class StaticSchedule(ArrivalSource):
    """A fully precomputed injection pattern.

    The workhorse for hand-constructed adversarial patterns in tests
    and for the Theorem 4 scenario where injection times are solved for
    analytically before the run.
    """

    def __init__(self, arrivals: Sequence[Tuple[TimeLike, int]]) -> None:
        exact: List[Arrival] = [(as_time(t), sid) for t, sid in arrivals]
        for (t1, _), (t2, _) in zip(exact, exact[1:]):
            if t2 < t1:
                raise ConfigurationError(
                    "StaticSchedule arrivals must be sorted by time"
                )
        self._arrivals = exact
        self._cursor = 0

    def arrivals_until(self, sim, upto: Time) -> Iterator[Arrival]:
        while self._cursor < len(self._arrivals):
            t, sid = self._arrivals[self._cursor]
            if t > upto:
                return
            self._cursor += 1
            yield (t, sid)

    @property
    def remaining(self) -> int:
        """Arrivals not yet handed to the simulator."""
        return len(self._arrivals) - self._cursor

    def lattice_denominator(self) -> int:
        return lcm(*(t.denominator for t, _ in self._arrivals))

    def next_arrival_hint(self) -> Optional[Time]:
        if self._cursor >= len(self._arrivals):
            return None
        return self._arrivals[self._cursor][0]


class ConcatSource(ArrivalSource):
    """Merge several sources into one (each must itself be ordered).

    Arrivals from different sub-sources are interleaved in time order;
    sub-sources are polled lazily so adaptive components keep working.
    """

    def __init__(self, sources: Sequence[ArrivalSource]) -> None:
        self._sources = list(sources)
        # Expose the polling-skip hint only when every child supports
        # it (an instance attribute so ``getattr`` probing sees it).
        if all(
            getattr(source, "next_arrival_hint", None) is not None
            for source in self._sources
        ):
            self.next_arrival_hint = self._combined_hint

    def _combined_hint(self) -> Optional[Time]:
        hints = [
            hint
            for source in self._sources
            if (hint := source.next_arrival_hint()) is not None
        ]
        return min(hints) if hints else None

    def arrivals_until(self, sim, upto: Time) -> Iterator[Arrival]:
        batches: List[List[Arrival]] = [
            list(src.arrivals_until(sim, upto)) for src in self._sources
        ]
        merged = sorted(
            (arrival for batch in batches for arrival in batch),
            key=lambda pair: pair[0],
        )
        return iter(merged)

    def lattice_denominator(self) -> Optional[int]:
        denominators = []
        for source in self._sources:
            declared = declared_lattice_denominator(source)
            if declared is None:
                return None
            denominators.append(declared)
        return lcm(*denominators)


class CallbackSource(ArrivalSource):
    """Adapt a plain function into a source (for quick experiment glue)."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def arrivals_until(self, sim, upto: Time) -> Iterable[Arrival]:
        return self._fn(sim, upto)
