"""Leaky-bucket-with-cost admissibility (Definition 1 of the paper).

The paper adapts adversarial queuing to unequal transmission durations:
the *cost* of a packet is the duration of the slot that eventually
transmits it successfully, and an ``(rho, b)`` adversary may inject, in
any real-time window of length ``t``, packets of total cost at most
``rho * t + b``.

Because a packet's cost is only realized at delivery, admissibility of
a concrete execution is checked *post hoc* here against realized costs
(undelivered packets are charged a caller-chosen pessimistic cost,
usually ``R``).  Workload generators in :mod:`repro.arrivals.patterns`
are built to be admissible by construction for the conservative cost
assumption and are verified against this checker in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.errors import AdmissibilityError, ConfigurationError
from ..core.packet import Packet
from ..core.timebase import Time, TimeLike, as_time


@dataclass(frozen=True, slots=True)
class CostedArrival:
    """An injection event with its (realized or assumed) cost."""

    time: Time
    cost: Fraction


@dataclass(frozen=True, slots=True)
class BucketReport:
    """Result of an admissibility check.

    ``max_burst`` is the tightest burstiness that would make the
    pattern admissible at rate ``rho``: the pattern satisfies
    Definition 1 for ``(rho, b)`` iff ``max_burst <= b``.
    ``realized_rate`` is total cost divided by the observation horizon
    (a sanity metric, not part of the definition).
    """

    rho: Fraction
    max_burst: Fraction
    total_cost: Fraction
    horizon: Fraction

    @property
    def realized_rate(self) -> Fraction:
        if self.horizon == 0:
            return Fraction(0)
        return self.total_cost / self.horizon

    def admissible_for(self, burstiness: TimeLike) -> bool:
        """True when the pattern fits an ``(rho, burstiness)`` bucket."""
        return self.max_burst <= as_time(burstiness)


def tightest_burstiness(
    arrivals: Sequence[CostedArrival], rho: TimeLike
) -> BucketReport:
    """Compute the smallest ``b`` making ``arrivals`` ``(rho, b)``-admissible.

    Definition 1 requires, for every window ``[t1, t2)``,
    ``C(t2) - C(t1) <= rho * (t2 - t1) + b`` where ``C`` is cumulative
    injected cost.  Writing ``D(t) = C(t) - rho * t``, the tightest
    ``b`` is ``max_{t1 <= t2} (D(t2+) - D(t1-))`` — computed in one pass
    by tracking the running minimum of ``D`` just before each arrival
    and the maximum of ``D`` just after.

    Windows may start at time 0 with ``C(0-) = 0``; arrivals must be
    sorted by time.
    """
    rate = as_time(rho)
    if rate < 0:
        raise ConfigurationError(f"injection rate must be >= 0, got {rate}")
    cumulative = Fraction(0)
    min_d = Fraction(0)  # D just before time 0
    max_gap = Fraction(0)
    horizon = Fraction(0)
    previous_time: Optional[Time] = None
    for arrival in arrivals:
        if previous_time is not None and arrival.time < previous_time:
            raise ConfigurationError("arrivals must be sorted by time")
        previous_time = arrival.time
        d_before = cumulative - rate * arrival.time
        if d_before < min_d:
            min_d = d_before
        cumulative += arrival.cost
        d_after = cumulative - rate * arrival.time
        gap = d_after - min_d
        if gap > max_gap:
            max_gap = gap
        if arrival.time > horizon:
            horizon = arrival.time
    return BucketReport(
        rho=rate, max_burst=max_gap, total_cost=cumulative, horizon=horizon
    )


def costed_arrivals_from_packets(
    packets: Iterable[Packet], undelivered_cost: TimeLike
) -> List[CostedArrival]:
    """Convert packets into costed arrivals using realized costs.

    Packets still waiting (or lost to a collision-in-progress) are
    charged ``undelivered_cost`` — pass the slot bound ``R`` for the
    paper's conservative reading, or ``1`` for the optimistic one.
    """
    fallback = as_time(undelivered_cost)
    costed = [
        CostedArrival(
            time=p.arrival_time,
            cost=p.cost if p.cost is not None else fallback,
        )
        for p in packets
    ]
    costed.sort(key=lambda a: a.time)
    return costed


def check_admissible(
    packets: Iterable[Packet],
    rho: TimeLike,
    burstiness: TimeLike,
    undelivered_cost: TimeLike,
) -> BucketReport:
    """Assert an execution's arrivals fit an ``(rho, b)`` bucket.

    Raises :class:`AdmissibilityError` with the offending burst size
    when the pattern exceeds the bucket; returns the report otherwise.
    """
    report = tightest_burstiness(
        costed_arrivals_from_packets(packets, undelivered_cost), rho
    )
    if not report.admissible_for(burstiness):
        raise AdmissibilityError(
            f"arrival pattern needs burstiness {report.max_burst} "
            f"> allowed {as_time(burstiness)} at rate {report.rho}"
        )
    return report
