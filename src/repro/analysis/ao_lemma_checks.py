"""Executable checks for AO-ARRoW's stability lemmas (Section IV).

Theorem 3's proof rests on per-subphase accounting (Lemmas 6–8).  This
module re-states the *execution-level* facts those lemmas rely on as
measurable predicates over a recorded run:

* **Wasted-time budget** — within any window containing ``k`` complete
  rounds, time not covered by successful transmissions is at most
  ``k`` leader elections' worth (+ boundary slack): the proofs charge
  at most ``RA`` waste per election (Definition 2 bookkeeping inside
  Lemmas 6/7).
* **Subphase drain (Lemma 7's direction)** — across any window of
  ``n`` consecutive rounds in which the system started with a large
  backlog, the backlog does not grow: deliveries outpace admissible
  injections once queues are long (the ``X - B`` decrease).
* **Withholding fairness** — no station wins more than one round in
  any window of ``n`` consecutive rounds while other stations hold
  packets (the ``wait = n - 1`` discipline of box (6)).

These are necessarily *finite-run* renderings of asymptotic lemmas:
each check takes explicit slack parameters derived from the same
constants the proofs use, and the test suite runs them across the
schedule/workload grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.simulator import Simulator
from ..core.timebase import Time, TimeLike, as_time
from .bounds import ao_election_slots
from .stability import RoundSegment, segment_rounds


@dataclass(frozen=True, slots=True)
class AOLemmaViolation:
    """A concrete counterexample found by a check."""

    check: str
    detail: str


def rounds_of_run(sim: Simulator, silence_gap: TimeLike) -> List[RoundSegment]:
    """All rounds of an AO-ARRoW run, phase structure flattened."""
    phases = segment_rounds(sim, silence_gap=silence_gap)
    return [segment for phase in phases for segment in phase.rounds]


def check_wasted_time_budget(
    sim: Simulator,
    n: int,
    max_slot_length: TimeLike,
    silence_gap: TimeLike,
) -> List[AOLemmaViolation]:
    """Per-round wasted time stays within one election's budget.

    Between the end of one round and the end of the next, the
    non-successful time must not exceed ``R * A`` time (one leader
    election at worst-case slot lengths) plus the long-silence
    allowance when the gap spans an idle period — windows whose gap
    exceeds ``silence_gap`` are skipped, since phases legitimately
    separate there (Definition 3).
    """
    upper = as_time(max_slot_length)
    budget = upper * ao_election_slots(n, upper) + 4 * upper
    violations: List[AOLemmaViolation] = []
    rounds = rounds_of_run(sim, silence_gap)
    for previous, current in zip(rounds, rounds[1:]):
        gap = current.start - previous.end
        if gap > as_time(silence_gap):
            continue  # phase boundary: long silence is allowed there
        window = current.end - previous.end
        useful = current.end - current.start
        wasted = window - useful
        if wasted > budget:
            violations.append(
                AOLemmaViolation(
                    check="wasted-time budget",
                    detail=(
                        f"round ending {current.end}: wasted {wasted} "
                        f"exceeds one election budget {budget}"
                    ),
                )
            )
    return violations


def check_withholding_fairness(
    sim: Simulator, n: int, silence_gap: TimeLike
) -> List[AOLemmaViolation]:
    """Box (6): a winner withholds for the next ``n - 1`` rounds.

    Within every window of ``n`` consecutive rounds *inside one phase*,
    a station may win at most once — unless it was the only station
    holding packets (the long-silence path legitimately re-elects it).
    We approximate "only station with packets" by checking whether any
    other station delivered in the surrounding window; a repeat win
    with another active deliverer in-window is a genuine violation.
    """
    violations: List[AOLemmaViolation] = []
    rounds = rounds_of_run(sim, silence_gap)
    gap_limit = as_time(silence_gap)
    for start_index in range(len(rounds)):
        window: List[RoundSegment] = [rounds[start_index]]
        for segment in rounds[start_index + 1 : start_index + n]:
            if segment.start - window[-1].end > gap_limit:
                break  # window crosses a phase boundary; stop extending
            window.append(segment)
        winners = [segment.winner for segment in window]
        for winner in set(winners):
            if winners.count(winner) > 1 and len(set(winners)) > 1:
                violations.append(
                    AOLemmaViolation(
                        check="withholding fairness",
                        detail=(
                            f"station {winner} won {winners.count(winner)} of "
                            f"{len(window)} consecutive rounds "
                            f"starting at {window[0].start} while others "
                            "were also active"
                        ),
                    )
                )
    return violations


def check_loaded_window_drain(
    backlog_series: Sequence[tuple],
    horizon: TimeLike,
    load_threshold: int,
    window: TimeLike,
    slack: int = 2,
) -> List[AOLemmaViolation]:
    """Lemma 7's direction: loaded systems do not keep growing.

    For every sample with backlog above ``load_threshold``, some sample
    within the following ``window`` of time must not exceed it by more
    than ``slack`` — i.e. above the threshold the backlog has no
    sustained upward drift.  (The threshold plays S's role; the window
    must cover a subphase's worth of time.)
    """
    violations: List[AOLemmaViolation] = []
    window_length = as_time(window)
    samples = list(backlog_series)
    for index, (t, backlog) in enumerate(samples):
        if backlog <= load_threshold:
            continue
        # Find the minimum backlog within (t, t + window].
        best: Optional[int] = None
        for t2, b2 in samples[index + 1 :]:
            if t2 - t > window_length:
                break
            if best is None or b2 < best:
                best = b2
        if best is None:
            continue  # ran off the end of the horizon
        if best > backlog + slack:
            violations.append(
                AOLemmaViolation(
                    check="loaded-window drain",
                    detail=(
                        f"backlog {backlog} at t={t} grew to a window "
                        f"minimum of {best} — sustained growth above the "
                        f"threshold {load_threshold}"
                    ),
                )
            )
    return violations
