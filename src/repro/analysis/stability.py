"""Empirical stability analysis: boundedness, wasted time, phases.

Translates the paper's definitions into measurements over executions:

* **Stability** (Section II): there is a bound on the packets injected
  but not yet delivered.  For a finite run we use the standard
  adversarial-queuing proxy: split the horizon into windows and check
  the per-window backlog maxima stop growing (the trajectory's maxima
  plateau rather than trend upward).
* **Wasted time** (Definition 2): time not covered by successful
  transmissions.
* **Phases / subphases** (Definitions 3–4): segmentation of an
  AO-ARRoW execution used by the Fig. 4 timeline bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.simulator import Simulator
from ..core.timebase import Time, TimeLike, as_time


@dataclass(frozen=True, slots=True)
class StabilityVerdict:
    """Result of the windowed-maxima boundedness test.

    ``window_maxima`` are the backlog peaks per window; ``stable`` is
    true when the later windows' peaks do not exceed the earlier ones
    by more than ``tolerance`` (burstiness-sized noise).  The verdict
    is a *finite-run proxy* — the paper's theorems supply the actual
    guarantees; benches check measured peaks against the theorem
    bounds separately.
    """

    stable: bool
    window_maxima: List[int]
    peak: int
    final_backlog: int

    @property
    def late_peak(self) -> int:
        """Largest backlog in the second half of the run."""
        half = len(self.window_maxima) // 2
        return max(self.window_maxima[half:], default=0)

    @property
    def early_peak(self) -> int:
        """Largest backlog in the first half of the run."""
        half = max(len(self.window_maxima) // 2, 1)
        return max(self.window_maxima[:half], default=0)


def assess_stability(
    samples: Sequence[Tuple[Fraction, int]],
    horizon: TimeLike,
    windows: int = 8,
    tolerance: int = 2,
) -> StabilityVerdict:
    """Windowed-maxima boundedness test over a backlog trajectory.

    Args:
        samples: ``(time, backlog)`` pairs, time-sorted.
        horizon: Total run duration (defines the window grid).
        windows: Number of equal windows; must be >= 2.
        tolerance: Allowed excess of late peaks over early peaks.
    """
    if windows < 2:
        raise ConfigurationError("need at least 2 windows")
    end = as_time(horizon)
    if end <= 0:
        raise ConfigurationError("horizon must be positive")
    maxima = [0] * windows
    final_backlog = 0
    peak = 0
    for t, backlog in samples:
        index = min(int(t * windows / end), windows - 1)
        if backlog > maxima[index]:
            maxima[index] = backlog
        peak = max(peak, backlog)
        final_backlog = backlog
    half = windows // 2
    early = max(maxima[:half], default=0)
    late = max(maxima[half:], default=0)
    stable = late <= early + tolerance
    return StabilityVerdict(
        stable=stable, window_maxima=maxima, peak=peak, final_backlog=final_backlog
    )


def wasted_time(sim: Simulator) -> Fraction:
    """Definition 2: horizon minus time covered by successful transmissions.

    Call after the run; finalizes the channel's bookkeeping first.
    """
    sim.channel.drain_all(sim.now)
    return sim.now - sim.channel.stats.success_time


def utilization(sim: Simulator) -> Fraction:
    """Fraction of the horizon spent on successful transmissions."""
    if sim.now == 0:
        return Fraction(0)
    sim.channel.drain_all(sim.now)
    return sim.channel.stats.success_time / sim.now


# ----------------------------------------------------------------------
# AO-ARRoW phase segmentation (Definitions 3-4, for the Fig. 4 bench)
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RoundSegment:
    """One leader-election-plus-drain round observed on the channel."""

    start: Time
    end: Time
    winner: int
    packets_delivered: int


@dataclass(frozen=True, slots=True)
class PhaseSegment:
    """One Definition 3 phase: consecutive rounds between long silences."""

    start: Time
    end: Time
    rounds: List[RoundSegment]

    @property
    def subphase_count(self) -> int:
        """Definition 4 subphases: n rounds each (possibly a short tail)."""
        return len(self.rounds)


def segment_rounds(
    sim: Simulator, silence_gap: TimeLike
) -> List[PhaseSegment]:
    """Reconstruct rounds and phases from the channel's success record.

    Successive successful transmissions by one station form a round
    (the winner's election win plus its drain).  A gap between
    successes exceeding ``silence_gap`` closes the current phase — pass
    the AO-ARRoW long-silence bound for the paper's segmentation.

    Requires the run to have kept its transmission records (use a
    simulator whose channel was not pruned mid-run, i.e. short
    figure-scale executions).
    """
    gap = as_time(silence_gap)
    successes = sorted(
        (
            (t.interval.start, t.interval.end, t.station_id)
            for t in sim.channel.live_records
            if t.successful and t.interval.end <= sim.now
        ),
    )
    phases: List[PhaseSegment] = []
    rounds: List[RoundSegment] = []
    round_start = round_end = None
    round_winner = None
    round_count = 0
    phase_start = None

    def close_round() -> None:
        nonlocal round_start, round_end, round_winner, round_count
        if round_winner is not None:
            rounds.append(
                RoundSegment(
                    start=round_start,
                    end=round_end,
                    winner=round_winner,
                    packets_delivered=round_count,
                )
            )
        round_start = round_end = None
        round_winner = None
        round_count = 0

    def close_phase(at: Time) -> None:
        nonlocal rounds, phase_start
        close_round()
        if rounds:
            phases.append(
                PhaseSegment(start=phase_start, end=at, rounds=list(rounds))
            )
        rounds = []
        phase_start = None

    for start, end, station in successes:
        if phase_start is None:
            phase_start = start
        if round_winner is None:
            round_start, round_end, round_winner, round_count = start, end, station, 1
            continue
        if station == round_winner and start - round_end <= gap:
            round_end, round_count = end, round_count + 1
            continue
        if start - round_end > gap:
            close_phase(round_end)
            phase_start = start
        else:
            close_round()
        round_start, round_end, round_winner, round_count = start, end, station, 1
    if round_winner is not None:
        close_phase(round_end)
    return phases
