"""Closed-form paper bounds + empirical stability/throughput analyses."""

from .bounds import (
    abs_listen_threshold_bit0,
    abs_listen_threshold_bit1,
    abs_phase_count,
    abs_phase_slot_bound,
    abs_slot_upper_bound,
    ao_election_slots,
    ao_long_silence_time_bound,
    ao_queue_bound_L,
    ao_queue_bound_S,
    ao_sync_extra_wait,
    ao_sync_silence_threshold,
    ca_gap_slots,
    ca_queue_bound_L,
    mbtf_queue_bound,
    sst_lower_bound_slots,
    thm4_minimum_start_slot,
)
from .experiments import (
    CellFailure,
    CellResult,
    ExperimentCell,
    GridReport,
    grid_key,
    run_cell,
    run_grid,
    run_grid_report,
    write_csv,
)
from .latency import LatencySummary, latency_by_station, percentile, summarize_latencies
from .sweeps import SweepReport, SweepStats, sweep_seeds, sweep_seeds_report
from .metrics import RunMetrics, collect_metrics
from .msr import MSREstimate, RateTrial, estimate_msr, run_at_rate
from .stability import (
    PhaseSegment,
    RoundSegment,
    StabilityVerdict,
    assess_stability,
    segment_rounds,
    utilization,
    wasted_time,
)

__all__ = [
    "CellFailure",
    "CellResult",
    "ElectionRecord",
    "ExperimentCell",
    "GridReport",
    "LatencySummary",
    "LemmaViolation",
    "MSREstimate",
    "SweepStats",
    "PhaseSegment",
    "RateTrial",
    "RoundSegment",
    "RunMetrics",
    "StabilityVerdict",
    "SweepReport",
    "abs_listen_threshold_bit0",
    "abs_listen_threshold_bit1",
    "abs_phase_count",
    "abs_phase_slot_bound",
    "abs_slot_upper_bound",
    "ao_election_slots",
    "ao_long_silence_time_bound",
    "ao_queue_bound_L",
    "ao_queue_bound_S",
    "ao_sync_extra_wait",
    "ao_sync_silence_threshold",
    "assess_stability",
    "check_all_lemmas",
    "check_lemma1_phase_alignment",
    "check_lemma2_liveness",
    "check_lemma3_bit_groups",
    "check_lemma4_no_disjoint_transmissions",
    "ca_gap_slots",
    "ca_queue_bound_L",
    "collect_metrics",
    "estimate_msr",
    "grid_key",
    "latency_by_station",
    "mbtf_queue_bound",
    "percentile",
    "run_at_rate",
    "run_cell",
    "run_grid",
    "run_grid_report",
    "run_instrumented_election",
    "segment_rounds",
    "sst_lower_bound_slots",
    "summarize_latencies",
    "sweep_seeds",
    "sweep_seeds_report",
    "thm4_minimum_start_slot",
    "utilization",
    "wasted_time",
    "write_csv",
]


# The lemma checks instrument ABS, so importing them at package-init
# time would be circular (algorithms -> analysis.bounds -> here ->
# algorithms).  Resolve them lazily instead (PEP 562).
_LEMMA_EXPORTS = {
    "ElectionRecord",
    "LemmaViolation",
    "check_all_lemmas",
    "check_lemma1_phase_alignment",
    "check_lemma2_liveness",
    "check_lemma3_bit_groups",
    "check_lemma4_no_disjoint_transmissions",
    "run_instrumented_election",
}


def __getattr__(name):
    if name in _LEMMA_EXPORTS:
        from . import lemma_checks

        return getattr(lemma_checks, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
