"""Per-packet latency analysis.

The paper's stability theorems bound *queue cost*; a user deploying
AO-/CA-ARRoW also cares how long an individual packet waits (cf. the
packet-latency line of work the paper cites [10]).  This module
summarizes delivered-packet latency distributions — exact rational
percentiles, per-station breakdowns — for the latency bench and the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.packet import Packet


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Distribution summary of delivered-packet latencies."""

    count: int
    mean: Optional[Fraction]
    minimum: Optional[Fraction]
    median: Optional[Fraction]
    p90: Optional[Fraction]
    p99: Optional[Fraction]
    maximum: Optional[Fraction]

    def row(self) -> str:
        if self.count == 0:
            return "no delivered packets"
        return (
            f"n={self.count} mean={float(self.mean):.2f} "
            f"min={float(self.minimum):.2f} p50={float(self.median):.2f} "
            f"p90={float(self.p90):.2f} p99={float(self.p99):.2f} "
            f"max={float(self.maximum):.2f}"
        )


def percentile(sorted_values: Sequence[Fraction], q: Fraction) -> Fraction:
    """Exact nearest-rank percentile over a sorted sequence.

    ``q`` in [0, 1]; nearest-rank (ceil) convention, so ``q = 1`` is the
    maximum and ``q = 0`` the minimum.
    """
    if not sorted_values:
        raise ConfigurationError("percentile of an empty sequence")
    if not 0 <= q <= 1:
        raise ConfigurationError(f"quantile must be within [0, 1], got {q}")
    if q == 0:
        return sorted_values[0]
    rank = -((-q * len(sorted_values)).__floor__())  # ceil(q * n)
    index = max(int(rank) - 1, 0)
    return sorted_values[index]


def summarize_latencies(packets: Iterable[Packet]) -> LatencySummary:
    """Summarize the latency distribution of the delivered packets."""
    latencies: List[Fraction] = sorted(
        p.latency for p in packets if p.latency is not None
    )
    if not latencies:
        return LatencySummary(
            count=0, mean=None, minimum=None, median=None,
            p90=None, p99=None, maximum=None,
        )
    total = sum(latencies, Fraction(0))
    return LatencySummary(
        count=len(latencies),
        mean=total / len(latencies),
        minimum=latencies[0],
        median=percentile(latencies, Fraction(1, 2)),
        p90=percentile(latencies, Fraction(9, 10)),
        p99=percentile(latencies, Fraction(99, 100)),
        maximum=latencies[-1],
    )


def latency_by_station(packets: Iterable[Packet]) -> Dict[int, LatencySummary]:
    """Per-station latency summaries (fairness diagnostics)."""
    buckets: Dict[int, List[Packet]] = {}
    for packet in packets:
        if packet.latency is not None:
            buckets.setdefault(packet.station_id, []).append(packet)
    return {sid: summarize_latencies(ps) for sid, ps in sorted(buckets.items())}
