"""Executable checks for the paper's ABS lemmas (Section III-A).

The correctness of ABS rests on four execution-level invariants that
the paper proves as Lemmas 1-4.  This module re-states each as a
predicate over a *recorded execution* and checks it mechanically —
the reproduction's analogue of proof-reading:

* **Lemma 1** — all alive stations start each phase within ``r`` time
  of each other;
* **Lemma 2** — until the first success, at least one station is still
  alive (no global deadlock by elimination);
* **Lemma 3** — when both bit-groups are non-empty in a phase, every
  bit-1 station is eliminated by the end of that phase;
* **Lemma 4** — no two transmissions within one phase are disjoint in
  time (all contemporaneous transmissions overlap).

Checks operate on an :class:`InstrumentedElection` run: a thin harness
around the simulator that records, per station, the phase-entry times
and per-phase transmissions of its ABS automaton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..algorithms.abs_leader import ABSLeaderElection, id_bit
from ..core.simulator import Simulator
from ..core.timebase import Interval, Time, TimeLike, as_time
from ..timing.adversary import SlotAdversary


@dataclass(slots=True)
class PhaseEntry:
    """One station's entry into one ABS phase."""

    station_id: int
    phase: int
    time: Time


@dataclass(slots=True)
class PhaseTransmission:
    """One in-election transmission, tagged with its phase."""

    station_id: int
    phase: int
    interval: Interval


@dataclass(slots=True)
class ElectionRecord:
    """Everything the lemma checks need from one ABS execution."""

    n: int
    max_slot_length: Fraction
    realized_r: Fraction
    entries: List[PhaseEntry] = field(default_factory=list)
    transmissions: List[PhaseTransmission] = field(default_factory=list)
    eliminations: Dict[int, Tuple[int, Time]] = field(default_factory=dict)
    winner: Optional[int] = None
    first_success_end: Optional[Time] = None

    def entries_by_phase(self) -> Dict[int, List[PhaseEntry]]:
        by_phase: Dict[int, List[PhaseEntry]] = {}
        for entry in self.entries:
            by_phase.setdefault(entry.phase, []).append(entry)
        return by_phase


class _TrackingABS(ABSLeaderElection):
    """ABS wrapper that timestamps phase entries and transmissions.

    The timestamps come from the simulator's clock at the moment the
    automaton's decision takes effect (its slot boundary), which is
    exactly the paper's notion of "station i starts phase h".
    """

    def __init__(self, station_id, max_slot_length, record: ElectionRecord, sim_ref):
        super().__init__(station_id, max_slot_length)
        self._record = record
        self._sim_ref = sim_ref
        self._last_phase_logged = -1
        self._pending_transmit_phase: Optional[int] = None

    def _now(self) -> Time:
        sim = self._sim_ref[0]
        return sim.now if sim is not None else Fraction(0)

    def _log_phase_entry(self) -> None:
        if self.core.phase > self._last_phase_logged:
            self._last_phase_logged = self.core.phase
            self._record.entries.append(
                PhaseEntry(
                    station_id=self.core.station_id,
                    phase=self.core.phase,
                    time=self._now(),
                )
            )

    def first_action(self, ctx):
        self._log_phase_entry()  # phase 0 starts at time 0
        return super().first_action(ctx)

    def on_slot_end(self, ctx):
        was_done = self.core.done
        previous_state = self.core.state
        action = super().on_slot_end(ctx)
        now = self._now()
        if not was_done:
            if previous_state == "transmitted":
                # The feedback just consumed closed our transmission;
                # attribute it to the phase it happened in.
                phase = self.core.phase if self.core.outcome else self.core.phase - 1
                if self.core.outcome == "won":
                    phase = self.core.phase
                # A collided transmission advanced core.phase already;
                # the transmission belonged to the previous phase.
                sim = self._sim_ref[0]
                runtime = sim.stations[self.core.station_id]
                self._record.transmissions.append(
                    PhaseTransmission(
                        station_id=self.core.station_id,
                        phase=phase,
                        # Runtime slots are in internal timebase units;
                        # records are public observations.
                        interval=sim.timebase.interval_public(
                            runtime.slot_interval
                        ),
                    )
                )
            if self.core.done:
                if self.core.outcome == "won":
                    self._record.winner = self.core.station_id
                else:
                    self._record.eliminations[self.core.station_id] = (
                        self.core.phase,
                        now,
                    )
            else:
                self._log_phase_entry()
        return action


def run_instrumented_election(
    n: int,
    max_slot_length: TimeLike,
    adversary: SlotAdversary,
    realized_r: TimeLike,
    max_events: int = 2_000_000,
) -> ElectionRecord:
    """Run ABS with full phase instrumentation; return the record.

    ``realized_r`` must be (an upper bound on) the largest slot length
    the adversary actually produces — Lemma 1 is checked against it.
    """
    upper = as_time(max_slot_length)
    record = ElectionRecord(
        n=n, max_slot_length=upper, realized_r=as_time(realized_r)
    )
    sim_ref: List[Optional[Simulator]] = [None]
    algos = {
        i: _TrackingABS(i, upper, record, sim_ref) for i in range(1, n + 1)
    }
    sim = Simulator(algos, adversary, max_slot_length=upper,
                    keep_channel_history=True)
    sim_ref[0] = sim
    record.first_success_end = sim.run_until_success(max_events=max_events)
    sim.run(
        max_events=sim.events_processed + 10_000,
        stop_when=lambda s: all(a.is_done for a in algos.values()),
    )
    return record


# ----------------------------------------------------------------------
# The lemma predicates
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class LemmaViolation:
    """A concrete counterexample found by a check."""

    lemma: str
    detail: str


def check_lemma1_phase_alignment(record: ElectionRecord) -> List[LemmaViolation]:
    """Lemma 1: alive stations start each phase within ``r`` of each other.

    The paper's induction gives skew ``r`` for simultaneous wake-up; we
    check against ``r`` with the round-boundary slack of one extra
    maximal slot (the analysis in DESIGN.md section 5), i.e. ``2r``.
    """
    violations: List[LemmaViolation] = []
    slack = 2 * record.realized_r
    for phase, entries in record.entries_by_phase().items():
        times = [entry.time for entry in entries]
        spread = max(times) - min(times)
        if spread > slack:
            violations.append(
                LemmaViolation(
                    lemma="Lemma 1",
                    detail=(
                        f"phase {phase}: entry spread {spread} exceeds "
                        f"2r = {slack} across {len(entries)} stations"
                    ),
                )
            )
    return violations


def check_lemma2_liveness(record: ElectionRecord) -> List[LemmaViolation]:
    """Lemma 2: before the first success, someone is always alive.

    Equivalent finite check: if every station exited, one of them won —
    elimination of all n stations with no winner is the violation.
    """
    if record.winner is None and len(record.eliminations) == record.n:
        return [
            LemmaViolation(
                lemma="Lemma 2",
                detail="all stations eliminated with no winner",
            )
        ]
    return []


def check_lemma3_bit_groups(record: ElectionRecord) -> List[LemmaViolation]:
    """Lemma 3: coexisting bit-1 stations die by the end of the phase.

    For every phase where both bit groups had alive entrants, every
    bit-1 entrant must be absent from the next phase's entrants.
    """
    violations: List[LemmaViolation] = []
    by_phase = record.entries_by_phase()
    for phase, entries in sorted(by_phase.items()):
        zeros = [e.station_id for e in entries if id_bit(e.station_id, phase) == 0]
        ones = [e.station_id for e in entries if id_bit(e.station_id, phase) == 1]
        if not zeros or not ones:
            continue
        next_entrants = {
            e.station_id for e in by_phase.get(phase + 1, [])
        }
        survivors = [sid for sid in ones if sid in next_entrants]
        if survivors:
            violations.append(
                LemmaViolation(
                    lemma="Lemma 3",
                    detail=(
                        f"phase {phase}: bit-1 stations {survivors} survived "
                        f"despite bit-0 stations {zeros} being alive"
                    ),
                )
            )
    return violations


def check_lemma4_no_disjoint_transmissions(
    record: ElectionRecord,
) -> List[LemmaViolation]:
    """Lemma 4: transmissions within one phase pairwise overlap in time."""
    violations: List[LemmaViolation] = []
    by_phase: Dict[int, List[PhaseTransmission]] = {}
    for transmission in record.transmissions:
        by_phase.setdefault(transmission.phase, []).append(transmission)
    for phase, transmissions in sorted(by_phase.items()):
        for i, first in enumerate(transmissions):
            for second in transmissions[i + 1 :]:
                if not first.interval.overlaps(second.interval):
                    violations.append(
                        LemmaViolation(
                            lemma="Lemma 4",
                            detail=(
                                f"phase {phase}: stations {first.station_id} "
                                f"and {second.station_id} transmitted in "
                                f"disjoint slots {first.interval} / "
                                f"{second.interval}"
                            ),
                        )
                    )
    return violations


def check_all_lemmas(record: ElectionRecord) -> List[LemmaViolation]:
    """Run every lemma check; an empty list is a clean bill of health."""
    violations: List[LemmaViolation] = []
    violations.extend(check_lemma1_phase_alignment(record))
    violations.extend(check_lemma2_liveness(record))
    violations.extend(check_lemma3_bit_groups(record))
    violations.extend(check_lemma4_no_disjoint_transmissions(record))
    return violations
