"""Execution metrics: throughput, latency, queue statistics.

Thin, well-defined aggregations over a finished
:class:`~repro.core.simulator.Simulator` — the quantities every bench
table reports next to the paper's predicted bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from ..core.simulator import Simulator
from ..core.timebase import Time


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Summary of one simulation run.

    ``throughput_cost`` is delivered *cost* per time unit (the paper's
    natural units: a rate-``rho`` adversary is matched by throughput
    approaching ``rho``); ``throughput_packets`` is packets per time.
    Latency statistics are over delivered packets only.
    """

    horizon: Time
    delivered: int
    delivered_cost: Fraction
    backlog: int
    max_backlog: int
    collisions: int
    control_transmissions: int
    throughput_cost: Fraction
    throughput_packets: Fraction
    mean_latency: Optional[Fraction]
    max_latency: Optional[Fraction]
    per_station_queue: Dict[int, int]

    def row(self) -> str:
        """One formatted table row (used by the bench harness)."""
        lat = f"{float(self.mean_latency):9.2f}" if self.mean_latency is not None else "      n/a"
        return (
            f"delivered={self.delivered:7d} backlog={self.backlog:6d} "
            f"max_backlog={self.max_backlog:6d} thr={float(self.throughput_cost):6.3f} "
            f"coll={self.collisions:5d} lat={lat}"
        )


def collect_metrics(sim: Simulator) -> RunMetrics:
    """Aggregate a finished run into :class:`RunMetrics`."""
    sim.channel.drain_all(sim.now)
    delivered = sim.delivered_packets
    delivered_cost = sum(
        (p.cost for p in delivered if p.cost is not None), Fraction(0)
    )
    latencies: List[Fraction] = [
        p.latency for p in delivered if p.latency is not None
    ]
    horizon = sim.now if sim.now > 0 else Fraction(1)
    return RunMetrics(
        horizon=sim.now,
        delivered=len(delivered),
        delivered_cost=delivered_cost,
        backlog=sim.total_backlog,
        max_backlog=sim.trace.max_backlog,
        collisions=sim.channel.stats.collisions,
        control_transmissions=sim.channel.stats.control_transmissions,
        throughput_cost=delivered_cost / horizon,
        throughput_packets=Fraction(len(delivered)) / horizon,
        mean_latency=(sum(latencies, Fraction(0)) / len(latencies)) if latencies else None,
        max_latency=max(latencies) if latencies else None,
        per_station_queue={sid: sim.queue_size(sid) for sid in sim.station_ids},
    )
