"""Multi-seed statistical sweeps.

Randomized components (random slot schedules, Aloha, randomized SST)
need aggregation over seeds before their numbers mean anything.  A
sweep runs one measurement function across a seed range and reports
exact mean plus min/median/max — deliberately simple statistics that
stay exact (no float accumulation) and honest about tail behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Sequence, Union

from ..core.errors import ConfigurationError

Number = Union[int, Fraction]


@dataclass(frozen=True, slots=True)
class SweepStats:
    """Aggregate of one metric over a seed sweep."""

    samples: List[Fraction]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ConfigurationError("a sweep needs at least one sample")

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> Fraction:
        return sum(self.samples, Fraction(0)) / len(self.samples)

    @property
    def minimum(self) -> Fraction:
        return min(self.samples)

    @property
    def maximum(self) -> Fraction:
        return max(self.samples)

    @property
    def median(self) -> Fraction:
        ordered = sorted(self.samples)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2

    @property
    def spread(self) -> Fraction:
        """Max minus min — the honest tail-width indicator."""
        return self.maximum - self.minimum

    def row(self) -> str:
        return (
            f"n={self.count} mean={float(self.mean):.2f} "
            f"min={float(self.minimum):.2f} med={float(self.median):.2f} "
            f"max={float(self.maximum):.2f}"
        )


def sweep_seeds(
    measure: Callable[[int], Number], seeds: Sequence[int]
) -> SweepStats:
    """Run ``measure(seed)`` over ``seeds``; aggregate the results."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    return SweepStats(samples=[Fraction(measure(seed)) for seed in seeds])
