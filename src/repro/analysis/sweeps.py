"""Multi-seed statistical sweeps.

Randomized components (random slot schedules, Aloha, randomized SST)
need aggregation over seeds before their numbers mean anything.  A
sweep runs one measurement function across a seed range and reports
exact mean plus min/median/max — deliberately simple statistics that
stay exact (no float accumulation) and honest about tail behaviour.

Seeds are independent, so a sweep parallelizes on the
:mod:`repro.exec` process pool — ``sweep_seeds(measure, seeds,
jobs=4)`` returns exactly the samples (same :class:`~fractions.Fraction`
values, same order) a serial sweep would — and per-seed samples can be
memoized in a content-addressed :class:`repro.exec.ResultCache`.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from pathlib import Path

from ..core.errors import ConfigurationError
from ..exec.cache import MISS, ResultCache, UncacheableValue
from ..exec.pool import run_tasks
from ..exec.resilience import RunHealth
from ..obs.artifacts import git_sha
from ..obs.history import history_enabled, record_completion
from ..obs.profiling import ProgressReporter
from ..obs.tracing import current_tracer

Number = Union[int, Fraction]


@dataclass(frozen=True, slots=True)
class SweepStats:
    """Aggregate of one metric over a seed sweep.

    >>> stats = SweepStats([Fraction(1), Fraction(3), Fraction(8)])
    >>> (stats.count, stats.mean, stats.median, stats.spread)
    (3, Fraction(4, 1), Fraction(3, 1), Fraction(7, 1))
    """

    samples: List[Fraction]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ConfigurationError("a sweep needs at least one sample")

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> Fraction:
        return sum(self.samples, Fraction(0)) / len(self.samples)

    @property
    def minimum(self) -> Fraction:
        return min(self.samples)

    @property
    def maximum(self) -> Fraction:
        return max(self.samples)

    @property
    def median(self) -> Fraction:
        ordered = sorted(self.samples)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2

    @property
    def spread(self) -> Fraction:
        """Max minus min — the honest tail-width indicator."""
        return self.maximum - self.minimum

    def row(self) -> str:
        return (
            f"n={self.count} mean={float(self.mean):.2f} "
            f"min={float(self.minimum):.2f} med={float(self.median):.2f} "
            f"max={float(self.maximum):.2f}"
        )


def _measure_one(measure: Callable[[int], Number], seed: int) -> Fraction:
    """One sample, normalized to an exact Fraction (worker body)."""
    return Fraction(measure(seed))


@dataclass(slots=True)
class SweepReport:
    """A sweep's statistics plus how they were obtained."""

    stats: "SweepStats"
    jobs: int
    mode: str
    wall_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    health: RunHealth = field(default_factory=RunHealth)
    #: Row id in the run-history index, when the sweep was recorded.
    history_id: Optional[int] = None


def _record_sweep_history(
    report: "SweepReport",
    measure: Callable[[int], Number],
    seed_count: int,
    cache: Optional[ResultCache],
    history: "Optional[bool | str | Path]",
) -> None:
    """Auto-record one sweep completion (best-effort, never raises)."""
    if history is False or not history_enabled():
        return
    if isinstance(history, (str, Path)):
        db_path: "Optional[str | Path]" = history
    elif cache is not None:
        db_path = Path(cache.root) / "history.db"
    else:
        db_path = None
    name = getattr(measure, "__qualname__", None) or repr(measure)
    report.history_id = record_completion(
        "sweep",
        name,
        db_path=db_path,
        cells=seed_count,
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        wall_s=report.wall_s,
        jobs=report.jobs,
        mode=report.mode,
        git_sha=git_sha(),
        health=report.health.as_dict(),
    )


def sweep_seeds_report(
    measure: Callable[[int], Number],
    seeds: Sequence[int],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressReporter] = None,
    task_timeout: Optional[float] = None,
    retries: int = 0,
    history: "Optional[bool | str | Path]" = None,
) -> SweepReport:
    """Like :func:`sweep_seeds` but also reports execution facts.

    ``task_timeout`` and ``retries`` bound each seed's attempts — see
    :func:`repro.exec.run_tasks` for the exact semantics.  Completions
    are recorded in the run-history index (``history=False`` disables,
    a path overrides the database location); with a tracer active the
    run is wrapped in a ``sweep`` span.
    """
    seeds = list(seeds)
    tracer = current_tracer()
    if tracer is None:
        report = _sweep_seeds_report(
            measure,
            seeds,
            jobs=jobs,
            cache=cache,
            progress=progress,
            task_timeout=task_timeout,
            retries=retries,
        )
    else:
        with tracer.span("sweep", seeds=len(seeds)) as span:
            report = _sweep_seeds_report(
                measure,
                seeds,
                jobs=jobs,
                cache=cache,
                progress=progress,
                task_timeout=task_timeout,
                retries=retries,
            )
            span.set(mode=report.mode, cache_hits=report.cache_hits)
    _record_sweep_history(report, measure, report.stats.count, cache, history)
    return report


def _sweep_seeds_report(
    measure: Callable[[int], Number],
    seeds: Sequence[int],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressReporter] = None,
    task_timeout: Optional[float] = None,
    retries: int = 0,
) -> SweepReport:
    """The engine behind :func:`sweep_seeds_report`."""
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    started = time.perf_counter()
    samples: List[Optional[Fraction]] = [None] * len(seeds)
    keys: List[Optional[str]] = [None] * len(seeds)
    pending: List[int] = []
    hits = 0
    for index, seed in enumerate(seeds):
        if cache is not None:
            payload: Dict[str, Any] = {
                "kind": "seed-sample",
                "measure": measure,
                "seed": seed,
            }
            try:
                keys[index] = cache.key_for(payload)
            except (UncacheableValue, RecursionError):
                keys[index] = None
            if keys[index] is not None:
                value = cache.get(keys[index])
                if value is not MISS:
                    samples[index] = value
                    hits += 1
                    continue
        pending.append(index)

    tasks = [
        functools.partial(_measure_one, measure, seeds[index]) for index in pending
    ]
    run = run_tasks(
        tasks,
        jobs=jobs,
        progress=progress,
        label="seeds",
        task_timeout=task_timeout,
        retries=retries,
    )
    for slot, index in enumerate(pending):
        samples[index] = run.values[slot]
        if cache is not None and keys[index] is not None:
            cache.put(keys[index], run.values[slot])
    return SweepReport(
        stats=SweepStats(samples=[s for s in samples if s is not None]),
        jobs=run.jobs,
        mode=run.mode,
        wall_s=time.perf_counter() - started,
        cache_hits=hits,
        cache_misses=len(pending) if cache is not None else 0,
        health=run.health,
    )


def sweep_seeds(
    measure: Callable[[int], Number],
    seeds: Sequence[int],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressReporter] = None,
    task_timeout: Optional[float] = None,
    retries: int = 0,
    history: "Optional[bool | str | Path]" = None,
) -> SweepStats:
    """Run ``measure(seed)`` over ``seeds``; aggregate the results.

    ``jobs`` fans the sweep out over worker processes (bit-identical
    samples, submission order preserved); ``cache`` memoizes per-seed
    samples keyed by the measurement function's content and the seed;
    ``task_timeout``/``retries`` bound each seed's attempts.

    >>> stats = sweep_seeds(lambda seed: seed * 2, range(1, 6))
    >>> (stats.count, stats.mean, stats.minimum, stats.maximum)
    (5, Fraction(6, 1), Fraction(2, 1), Fraction(10, 1))
    """
    return sweep_seeds_report(
        measure,
        seeds,
        jobs=jobs,
        cache=cache,
        progress=progress,
        task_timeout=task_timeout,
        retries=retries,
        history=history,
    ).stats
