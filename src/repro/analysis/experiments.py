"""Declarative experiment grids with parallel execution and CSV export.

The benches and the CLI share this thin layer: an experiment *cell* is
a named recipe (algorithms x slot adversary x workload x horizon); a
*grid* is a list of cells, each yielding the same measurement record.
Cells are independent, so a grid runs on the :mod:`repro.exec` process
pool — ``run_grid(cells, jobs=4)`` is bit-identical to ``jobs=1``,
just faster — and completed cells can be memoized in a
content-addressed :class:`repro.exec.ResultCache` so re-running an
unchanged grid is near-instant.  Results serialize to CSV so
downstream analysis (spreadsheets, notebooks) needs nothing from this
package.  See ``docs/experiments.md`` for the full workflow.

A minimal end-to-end run:

>>> from repro.algorithms import RRW
>>> from repro.arrivals import UniformRate
>>> from repro.timing import Synchronous
>>> cell = ExperimentCell(
...     name="demo",
...     algorithms=lambda: {1: RRW(1, 2), 2: RRW(2, 2)},
...     slot_adversary=Synchronous,
...     arrival_source=lambda: UniformRate(
...         rho="1/2", targets=[1, 2], assumed_cost=1
...     ),
...     max_slot_length=1,
...     horizon=120,
... )
>>> result = run_cell(cell)
>>> (result.name, result.stable, result.metrics.delivered > 0)
('demo', True, True)

(The function doctests below use ``_demo_cell()``, a module-level
factory for exactly this cell, because every docstring runs in its
own namespace.)
"""

from __future__ import annotations

import csv
import functools
import time
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
)

from ..core.simulator import Simulator
from ..core.station import StationAlgorithm
from ..core.timebase import TimeLike, as_time
from ..core.trace import Trace
from ..exec.cache import (
    MISS,
    ResultCache,
    UncacheableValue,
    canonical_key,
    code_salt,
    fingerprint,
)
from ..exec.pool import run_tasks
from ..exec.resilience import GridJournal, RunHealth, TaskError
from ..obs.artifacts import git_sha
from ..obs.history import history_enabled, record_completion
from ..obs.profiling import PhaseProfiler, ProgressReporter
from ..obs.tracing import Span, Tracer, current_tracer
from .metrics import RunMetrics, collect_metrics
from .stability import assess_stability


@dataclass(frozen=True, slots=True)
class ExperimentCell:
    """One runnable configuration.

    Factories (not instances) so that every run starts fresh and grids
    stay trivially re-runnable.  Cells built from a declarative
    :class:`~repro.scenarios.ScenarioSpec` (via :meth:`from_spec`)
    additionally carry the spec, which the result cache uses to key the
    cell by canonical JSON instead of callable bytecode.
    """

    name: str
    algorithms: Callable[[], Dict[int, StationAlgorithm]]
    slot_adversary: Callable[[], object]
    arrival_source: Callable[[], Optional[object]]
    max_slot_length: TimeLike
    horizon: TimeLike
    #: Free-form key=value labels copied into the result row.
    labels: Dict[str, str] = field(default_factory=dict)
    #: The declarative spec this cell was built from, when there is one.
    spec: Optional[object] = None

    @classmethod
    def from_spec(
        cls,
        spec,
        *,
        name: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> "ExperimentCell":
        """A cell whose factories (and cache identity) come from ``spec``.

        ``name`` and ``labels`` default to the spec's own; explicit
        ``labels`` are merged over them.
        """
        merged = dict(spec.labels)
        if labels:
            merged.update(labels)
        return cls(
            name=name if name is not None else spec.name,
            algorithms=spec.build_fleet,
            slot_adversary=spec.build_schedule,
            arrival_source=spec.build_source,
            max_slot_length=spec.max_slot,
            horizon=spec.horizon,
            labels=merged,
            spec=spec,
        )


@dataclass(frozen=True, slots=True)
class CellResult:
    """Measurements of one cell run.

    ``engine``/``timebase`` record which run loop and internal time
    representation actually executed the cell (resolved, not
    requested) so perf-table diffs stay attributable;
    ``engine_described`` further splits batch cells into
    ``batch(adaptive)`` / ``batch(nonadaptive)`` by the matched vector
    program family.  All three are excluded from :meth:`as_row` — the
    observable measurements are bit-identical across engines, and the
    CSV schema stays stable.
    """

    name: str
    labels: Dict[str, str]
    metrics: RunMetrics
    stable: bool
    peak_backlog: int
    engine: str = "object"
    timebase: str = ""
    engine_described: str = ""

    def as_row(self) -> Dict[str, object]:
        """Flatten into a CSV-ready dictionary."""
        row: Dict[str, object] = {"name": self.name}
        row.update(self.labels)
        row.update(
            {
                "horizon": str(self.metrics.horizon),
                "delivered": self.metrics.delivered,
                "backlog": self.metrics.backlog,
                "peak_backlog": self.peak_backlog,
                "stable": int(self.stable),
                "collisions": self.metrics.collisions,
                "control_transmissions": self.metrics.control_transmissions,
                "throughput_cost": float(self.metrics.throughput_cost),
                "mean_latency": (
                    float(self.metrics.mean_latency)
                    if self.metrics.mean_latency is not None
                    else ""
                ),
            }
        )
        return row


def _demo_cell() -> ExperimentCell:
    """The cheap two-station cell the doctests run (see module docstring)."""
    from ..algorithms import RRW
    from ..arrivals import UniformRate
    from ..timing import Synchronous

    return ExperimentCell(
        name="demo",
        algorithms=lambda: {1: RRW(1, 2), 2: RRW(2, 2)},
        slot_adversary=Synchronous,
        arrival_source=lambda: UniformRate(
            rho="1/2", targets=[1, 2], assumed_cost=1
        ),
        max_slot_length=1,
        horizon=120,
    )


def emit_phase_spans(
    tracer: Tracer, parent: Span, profiler: PhaseProfiler
) -> None:
    """Bridge a :class:`PhaseProfiler` into aggregate child spans.

    The profiler holds per-phase *totals*, not intervals, so the spans
    are laid out consecutively from the parent's start — they show
    attribution (how the parent's wall clock divides across
    adversary/channel/algorithm), not real timelines; each carries
    ``aggregate=True`` so readers can tell.
    """
    cursor = parent.ts
    for phase in sorted(profiler.seconds):
        duration_us = int(profiler.seconds[phase] * 1e6)
        tracer.add_span(
            f"sim.{phase}",
            ts=cursor,
            dur=duration_us,
            parent=parent.id,
            calls=profiler.calls[phase],
            aggregate=True,
        )
        cursor += duration_us


def _execute_cell(
    cell: ExperimentCell,
    backlog_stride: int,
    with_metrics: bool,
    engine: str = "auto",
) -> "tuple[CellResult, Optional[Dict[str, Any]]]":
    """Run one cell; optionally carry a worker-side metrics pack.

    With a tracer active the run is wrapped in a ``cell`` span and a
    :class:`PhaseProfiler` is attached so the simulator's phase totals
    become ``sim.*`` child spans.  Per-phase timing is object-path
    only, so the profiler keeps ``engine="auto"`` cells on the object
    loop; forcing ``engine="batch"`` trades the ``sim.*`` spans for the
    vectorized kernel instead of raising.
    """
    tracer = current_tracer()
    if tracer is None:
        return _execute_cell_impl(cell, backlog_stride, with_metrics, None, engine)
    with tracer.span("cell", cell=cell.name) as span:
        profiler = None if engine == "batch" else PhaseProfiler()
        result, snapshot = _execute_cell_impl(
            cell, backlog_stride, with_metrics, profiler, engine
        )
        if profiler is not None:
            emit_phase_spans(tracer, span, profiler)
        span.set(
            stable=result.stable,
            delivered=result.metrics.delivered,
            engine=result.engine,
        )
        return result, snapshot


def _execute_cell_impl(
    cell: ExperimentCell,
    backlog_stride: int,
    with_metrics: bool,
    profiler: Optional[PhaseProfiler],
    engine: str = "auto",
) -> "tuple[CellResult, Optional[Dict[str, Any]]]":
    from ..obs import ProbeBus, SimulationMetrics

    bus = sim_metrics = None
    if with_metrics:
        bus = ProbeBus()
        sim_metrics = SimulationMetrics()
        sim_metrics.attach(bus)
    trace = Trace(backlog_stride=backlog_stride)
    sim = Simulator(
        cell.algorithms(),
        cell.slot_adversary(),
        max_slot_length=cell.max_slot_length,
        arrival_source=cell.arrival_source(),
        trace=trace,
        probes=bus,
        profiler=profiler,
        engine=engine,
    )
    horizon = as_time(cell.horizon)
    sim.run(until_time=horizon)
    samples = trace.backlog_series()
    samples.append((sim.now, sim.total_backlog))
    verdict = assess_stability(samples, horizon, tolerance=5)
    result = CellResult(
        name=cell.name,
        labels=dict(cell.labels),
        metrics=collect_metrics(sim),
        stable=verdict.stable,
        peak_backlog=trace.max_backlog,
        engine=sim.engine,
        timebase=sim.timebase.describe(),
        engine_described=sim.engine_described,
    )
    return result, (sim_metrics.snapshot() if sim_metrics is not None else None)


def run_cell(
    cell: ExperimentCell, backlog_stride: int = 8, *, engine: str = "auto"
) -> CellResult:
    """Execute one cell and collect its measurements.

    >>> result = run_cell(_demo_cell(), backlog_stride=4)
    >>> (result.name, result.stable, result.peak_backlog >= result.metrics.backlog)
    ('demo', True, True)
    """
    return _execute_cell(cell, backlog_stride, with_metrics=False, engine=engine)[0]


def _cell_payload(cell: ExperimentCell, backlog_stride: int) -> Dict[str, Any]:
    """The cache identity of one cell run (see ``repro.exec.cache``).

    Spec-backed cells are keyed by the spec's canonical JSON — stable
    across processes and across cosmetic edits to calling code.  Cells
    wired from closures keep the bytecode-fingerprint path.
    """
    if cell.spec is not None:
        return {
            "kind": "scenario-cell",
            "name": cell.name,
            "labels": cell.labels,
            "spec": cell.spec.__cache_form__(),
            "max_slot_length": as_time(cell.max_slot_length),
            "horizon": as_time(cell.horizon),
            "backlog_stride": backlog_stride,
        }
    return {
        "kind": "experiment-cell",
        "name": cell.name,
        "labels": cell.labels,
        "algorithms": cell.algorithms,
        "slot_adversary": cell.slot_adversary,
        "arrival_source": cell.arrival_source,
        "max_slot_length": as_time(cell.max_slot_length),
        "horizon": as_time(cell.horizon),
        "backlog_stride": backlog_stride,
    }


@dataclass(frozen=True, slots=True)
class CellFailure:
    """One grid cell that exhausted its retry budget."""

    index: int
    name: str
    error: TaskError

    def summary(self) -> str:
        return (
            f"{self.name}: [{self.error.kind}] {self.error.error_type}: "
            f"{self.error.message} (after {self.error.attempts} attempt(s))"
        )


@dataclass(slots=True)
class GridReport:
    """Results of one grid run plus how they were obtained.

    ``worker_metrics`` maps worker pid to the list of per-cell
    :meth:`repro.obs.SimulationMetrics.snapshot` dicts that worker
    produced (empty unless ``collect_metrics=True``; cache hits carry
    no snapshot — nothing executed).  ``journal_hits`` counts cells
    restored from a resume journal (never re-executed); ``failures``
    names every cell that failed for good; ``health`` is the
    engine's resilience ledger for the run.
    """

    results: List[CellResult]
    jobs: int
    mode: str
    wall_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    worker_metrics: Dict[int, List[Dict[str, Any]]] = field(default_factory=dict)
    journal_hits: int = 0
    failures: List[CellFailure] = field(default_factory=list)
    health: RunHealth = field(default_factory=RunHealth)
    #: Row id in the run-history index, when the run was recorded
    #: (see :mod:`repro.obs.history`); callers use it to attach
    #: artifact/trace paths learned after the fact.
    history_id: Optional[int] = None

    def aggregate_counter(self, name: str) -> int:
        """Sum one integer instrument across every worker snapshot."""
        total = 0
        for snapshots in self.worker_metrics.values():
            for snapshot in snapshots:
                value = snapshot.get(name)
                if isinstance(value, int):
                    total += value
        return total


def grid_key(cells: Sequence[ExperimentCell], backlog_stride: int) -> str:
    """Content identity of a whole grid — what a resume journal binds to.

    Folds in the code salt, so a journal written by different sources
    (whose results could differ) is never resumed from.  Cells whose
    configuration cannot be fingerprinted degrade to (index, name,
    labels) identity — weaker, but still catches shape changes.
    """
    parts: List[Any] = []
    for index, cell in enumerate(cells):
        try:
            parts.append(fingerprint(_cell_payload(cell, backlog_stride)))
        except (UncacheableValue, RecursionError):
            parts.append(
                {"index": index, "name": cell.name, "labels": cell.labels}
            )
    return canonical_key({"grid": parts}, salt=code_salt())


def _grid_history_name(cells: Sequence[ExperimentCell]) -> str:
    """A human-recognizable label for a grid's history row."""
    if len(cells) == 1:
        return cells[0].name
    return f"{cells[0].name}..{cells[-1].name}"


def _record_grid_history(
    report: GridReport,
    cells: Sequence[ExperimentCell],
    backlog_stride: int,
    cache: Optional[ResultCache],
    history: "Optional[bool | str | Path]",
) -> None:
    """Auto-record one grid completion in the run-history index.

    ``history=False`` disables recording; a path records there; the
    default records next to the cache the grid used (or the default
    database).  Never raises — see :func:`repro.obs.history.record_completion`.
    """
    if history is False or not cells or not history_enabled():
        return
    if isinstance(history, (str, Path)):
        db_path: "Optional[str | Path]" = history
    elif cache is not None:
        db_path = Path(cache.root) / "history.db"
    else:
        db_path = None
    try:
        spec_hash: Optional[str] = grid_key(cells, backlog_stride)
    except Exception:
        spec_hash = None
    report.history_id = record_completion(
        "grid",
        _grid_history_name(cells),
        db_path=db_path,
        status="failed" if report.failures else "ok",
        cells=len(cells),
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        journal_hits=report.journal_hits,
        wall_s=report.wall_s,
        jobs=report.jobs,
        mode=report.mode,
        spec_hash=spec_hash,
        git_sha=git_sha(),
        health=report.health.as_dict(),
        extra={
            "engines": sorted(
                {
                    r.engine_described or r.engine
                    for r in report.results
                    if r.engine
                }
            )
        },
    )


def run_grid_report(
    cells: Sequence[ExperimentCell],
    backlog_stride: int = 8,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressReporter] = None,
    collect_metrics: bool = False,
    task_timeout: Optional[float] = None,
    retries: int = 0,
    journal: "Optional[GridJournal | str]" = None,
    resume: bool = False,
    history: "Optional[bool | str | Path]" = None,
    engine: str = "auto",
) -> GridReport:
    """Run a grid and report results plus execution/caching facts.

    The engine behind :func:`run_grid`; use this form when you want
    wall time, cache hit counts, or per-worker metrics alongside the
    results.  Results are always in cell order, whatever ``jobs`` is.

    Fault tolerance: ``task_timeout``/``retries`` bound each cell's
    attempts (see :func:`repro.exec.run_tasks`); a cell that fails for
    good lands in ``report.failures`` by name instead of aborting its
    siblings.  ``journal`` checkpoints every completed cell to an
    append-only JSONL file as it finishes; with ``resume=True`` the
    journal's recorded cells are restored and only missing ones are
    recomputed — :class:`~repro.exec.JournalMismatch` is raised if the
    journal belongs to a different grid.

    Every completion is recorded in the run-history index
    (``repro history list``); ``history`` overrides where (a database
    path) or whether (``False``) — see :mod:`repro.obs.history`.  With
    a tracer active the whole run is additionally wrapped in a ``grid``
    span.
    """
    cells = list(cells)
    tracer = current_tracer()
    if tracer is None:
        report = _run_grid_report(
            cells,
            backlog_stride,
            jobs=jobs,
            cache=cache,
            progress=progress,
            collect_metrics=collect_metrics,
            task_timeout=task_timeout,
            retries=retries,
            journal=journal,
            resume=resume,
            engine=engine,
        )
    else:
        with tracer.span(
            "grid", cells=len(cells), backlog_stride=backlog_stride
        ) as span:
            report = _run_grid_report(
                cells,
                backlog_stride,
                jobs=jobs,
                cache=cache,
                progress=progress,
                collect_metrics=collect_metrics,
                task_timeout=task_timeout,
                retries=retries,
                journal=journal,
                resume=resume,
                engine=engine,
            )
            span.set(
                mode=report.mode,
                cache_hits=report.cache_hits,
                cache_misses=report.cache_misses,
                journal_hits=report.journal_hits,
                failures=len(report.failures),
            )
    _record_grid_history(report, cells, backlog_stride, cache, history)
    return report


def _run_grid_report(
    cells: List[ExperimentCell],
    backlog_stride: int = 8,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressReporter] = None,
    collect_metrics: bool = False,
    task_timeout: Optional[float] = None,
    retries: int = 0,
    journal: "Optional[GridJournal | str]" = None,
    resume: bool = False,
    engine: str = "auto",
) -> GridReport:
    """The engine behind :func:`run_grid_report` (which adds span+history)."""
    started = time.perf_counter()
    results: List[Optional[CellResult]] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    pending: List[int] = []
    hits = 0
    journal_hits = 0

    if isinstance(journal, (str, Path)):
        journal = GridJournal(journal)
    recorded: Dict[int, Any] = {}
    if journal is not None:
        recorded = journal.start(
            grid_key(cells, backlog_stride), len(cells), resume=resume
        )

    for index, cell in enumerate(cells):
        value = recorded.get(index)
        if isinstance(value, CellResult):
            results[index] = value
            journal_hits += 1
            continue
        if cache is not None:
            try:
                keys[index] = cache.key_for(_cell_payload(cell, backlog_stride))
            except (UncacheableValue, RecursionError):
                keys[index] = None
            if keys[index] is not None:
                value = cache.get(keys[index])
                if value is not MISS:
                    results[index] = value
                    hits += 1
                    if journal is not None:
                        journal.record(index, cell.name, value)
                    continue
        pending.append(index)

    tasks = [
        functools.partial(
            _execute_cell, cells[index], backlog_stride, collect_metrics,
            engine,
        )
        for index in pending
    ]

    def checkpoint(slot: int, value: Any) -> None:
        """Persist each finished cell the moment it lands (crash-safe)."""
        if isinstance(value, TaskError):
            return
        index = pending[slot]
        result = value[0]
        if cache is not None and keys[index] is not None:
            cache.put(keys[index], result)
        if journal is not None:
            journal.record(index, cells[index].name, result)

    try:
        run = run_tasks(
            tasks,
            jobs=jobs,
            progress=progress,
            label="cells",
            task_timeout=task_timeout,
            retries=retries,
            on_error="capture",
            on_result=checkpoint,
        )
    finally:
        if journal is not None:
            journal.close()

    worker_metrics: Dict[int, List[Dict[str, Any]]] = {}
    failures: List[CellFailure] = []
    for slot, index in enumerate(pending):
        value = run.values[slot]
        if isinstance(value, TaskError):
            failures.append(
                CellFailure(index=index, name=cells[index].name, error=value)
            )
            continue
        result, snapshot = value
        results[index] = result
        if snapshot is not None:
            worker_metrics.setdefault(run.task_workers[slot], []).append(snapshot)
    return GridReport(
        results=[result for result in results if result is not None],
        jobs=run.jobs,
        mode=run.mode,
        wall_s=time.perf_counter() - started,
        cache_hits=hits,
        cache_misses=len(pending) if cache is not None else 0,
        worker_metrics=worker_metrics,
        journal_hits=journal_hits,
        failures=failures,
        health=run.health,
    )


def run_grid(
    cells: Sequence[ExperimentCell],
    backlog_stride: int = 8,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressReporter] = None,
    task_timeout: Optional[float] = None,
    retries: int = 0,
    journal: "Optional[GridJournal | str]" = None,
    resume: bool = False,
    history: "Optional[bool | str | Path]" = None,
    engine: str = "auto",
) -> List[CellResult]:
    """Run every cell; results in cell order (deterministic runs).

    ``backlog_stride`` is passed through to every cell's
    :class:`~repro.core.trace.Trace` (it used to be silently dropped).
    ``jobs`` fans the grid out on the :mod:`repro.exec` process pool —
    bit-identical results, less wall time.  ``cache`` memoizes
    completed cells content-addressed by their configuration.
    ``task_timeout``/``retries``/``journal``/``resume`` are forwarded
    to :func:`run_grid_report`; unlike the report form, this list form
    raises if any cell still failed after its retries — a shorter
    result list must never pass silently.

    >>> [r.name for r in run_grid([_demo_cell()])]
    ['demo']
    >>> run_grid([_demo_cell()], backlog_stride=4) == [run_cell(_demo_cell(), 4)]
    True
    """
    report = run_grid_report(
        cells,
        backlog_stride,
        jobs=jobs,
        cache=cache,
        progress=progress,
        task_timeout=task_timeout,
        retries=retries,
        journal=journal,
        resume=resume,
        history=history,
        engine=engine,
    )
    if report.failures:
        detail = "; ".join(f.summary() for f in report.failures)
        raise RuntimeError(
            f"grid: {len(report.failures)} cell(s) failed: {detail}"
        )
    return report.results


def write_csv(results: Iterable[CellResult], path: str) -> None:
    """Serialize results; the header is the union of all row keys.

    >>> import os, tempfile
    >>> target = os.path.join(tempfile.mkdtemp(), "grid.csv")
    >>> write_csv([run_cell(_demo_cell())], target)
    >>> open(target).readline().startswith("name,horizon,delivered")
    True
    """
    rows = [result.as_row() for result in results]
    if not rows:
        raise ValueError("no results to write")
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
