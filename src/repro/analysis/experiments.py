"""Declarative experiment grids with CSV export.

The benches and the CLI share this thin layer: an experiment *cell* is
a named recipe (algorithms x slot adversary x workload x horizon); a
*grid* is a list of cells run back-to-back, each yielding the same
measurement record.  Results serialize to CSV so downstream analysis
(spreadsheets, notebooks) needs nothing from this package.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.simulator import Simulator
from ..core.station import StationAlgorithm
from ..core.timebase import TimeLike, as_time
from ..core.trace import Trace
from .metrics import RunMetrics, collect_metrics
from .stability import assess_stability


@dataclass(frozen=True, slots=True)
class ExperimentCell:
    """One runnable configuration.

    Factories (not instances) so that every run starts fresh and grids
    stay trivially re-runnable.
    """

    name: str
    algorithms: Callable[[], Dict[int, StationAlgorithm]]
    slot_adversary: Callable[[], object]
    arrival_source: Callable[[], Optional[object]]
    max_slot_length: TimeLike
    horizon: TimeLike
    #: Free-form key=value labels copied into the result row.
    labels: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class CellResult:
    """Measurements of one cell run."""

    name: str
    labels: Dict[str, str]
    metrics: RunMetrics
    stable: bool
    peak_backlog: int

    def as_row(self) -> Dict[str, object]:
        """Flatten into a CSV-ready dictionary."""
        row: Dict[str, object] = {"name": self.name}
        row.update(self.labels)
        row.update(
            {
                "horizon": str(self.metrics.horizon),
                "delivered": self.metrics.delivered,
                "backlog": self.metrics.backlog,
                "peak_backlog": self.peak_backlog,
                "stable": int(self.stable),
                "collisions": self.metrics.collisions,
                "control_transmissions": self.metrics.control_transmissions,
                "throughput_cost": float(self.metrics.throughput_cost),
                "mean_latency": (
                    float(self.metrics.mean_latency)
                    if self.metrics.mean_latency is not None
                    else ""
                ),
            }
        )
        return row


def run_cell(cell: ExperimentCell, backlog_stride: int = 8) -> CellResult:
    """Execute one cell and collect its measurements."""
    trace = Trace(backlog_stride=backlog_stride)
    sim = Simulator(
        cell.algorithms(),
        cell.slot_adversary(),
        max_slot_length=cell.max_slot_length,
        arrival_source=cell.arrival_source(),
        trace=trace,
    )
    horizon = as_time(cell.horizon)
    sim.run(until_time=horizon)
    samples = trace.backlog_series()
    samples.append((sim.now, sim.total_backlog))
    verdict = assess_stability(samples, horizon, tolerance=5)
    return CellResult(
        name=cell.name,
        labels=dict(cell.labels),
        metrics=collect_metrics(sim),
        stable=verdict.stable,
        peak_backlog=trace.max_backlog,
    )


def run_grid(cells: Sequence[ExperimentCell]) -> List[CellResult]:
    """Run every cell in order (deterministic, independent runs)."""
    return [run_cell(cell) for cell in cells]


def write_csv(results: Iterable[CellResult], path: str) -> None:
    """Serialize results; the header is the union of all row keys."""
    rows = [result.as_row() for result in results]
    if not rows:
        raise ValueError("no results to write")
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
