"""Every closed-form bound in the paper, as executable formulas.

The benches compare measured quantities against these expressions, so
each function cites the theorem/lemma it implements.  All formulas
accept exact rationals (``R`` need not be an integer; slot *counts*
derived from it are rounded up, since an algorithm can only count whole
slots).

Symbols follow Section IV of the paper:

* ``n`` — number of stations, ``R`` — known slot-length bound,
  ``r`` — realized slot-length supremum (``1 <= r <= R``),
* ``rho`` — injection rate (cost units per time), ``b`` — burstiness,
* ``A`` — length, in slots, of one leader election,
* ``B`` — upper bound on the time a station with a non-empty queue can
  sit in a "long silence",
* ``S``, ``L0``, ``L1``, ``L`` — the queue-cost bounds of Theorem 3.
"""

from __future__ import annotations

import math
from fractions import Fraction

from ..core.errors import ConfigurationError
from ..core.timebase import TimeLike, as_time


def _ceil(x: Fraction) -> int:
    """Exact ceiling of a rational."""
    return -((-x.numerator) // x.denominator)


def _check_r(max_slot_length: TimeLike) -> Fraction:
    upper = as_time(max_slot_length)
    if upper < 1:
        raise ConfigurationError(f"R must be >= 1, got {upper}")
    return upper


def _check_rho(rho: TimeLike) -> Fraction:
    rate = as_time(rho)
    if not 0 <= rate < 1:
        raise ConfigurationError(
            f"stability bounds require 0 <= rho < 1, got {rate}"
        )
    return rate


# ----------------------------------------------------------------------
# ABS / SST (Section III)
# ----------------------------------------------------------------------

def abs_listen_threshold_bit0(max_slot_length: TimeLike) -> int:
    """Box (3) of Fig. 3: a bit-0 station listens ``3R`` slots."""
    upper = _check_r(max_slot_length)
    return _ceil(3 * upper)


def abs_listen_threshold_bit1(max_slot_length: TimeLike) -> int:
    """Box (4) of Fig. 3: a bit-1 station listens ``4R^2 + 3R`` slots."""
    upper = _check_r(max_slot_length)
    return _ceil(4 * upper * upper + 3 * upper)


def abs_phase_slot_bound(max_slot_length: TimeLike) -> int:
    """Lemma 5: one ABS phase takes at most this many slots.

    Box (1) takes at most ``R + 1`` slots, the listening loop at most
    ``4R^2 + 3R`` slots, plus one transmitting slot.
    """
    upper = _check_r(max_slot_length)
    return _ceil((upper + 1) + (4 * upper * upper + 3 * upper) + 1)


def abs_phase_count(n: int) -> int:
    """Number of ABS phases needed for IDs in ``[n]`` (Theorem 1's log n).

    Distinct IDs in ``{1..n}`` differ in one of their first
    ``bit_length(n)`` bits; one extra phase lets the unique survivor
    transmit alone.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1 stations, got {n}")
    return max(n.bit_length(), 1) + 1


def abs_slot_upper_bound(n: int, max_slot_length: TimeLike) -> int:
    """Theorem 1: ABS solves SST within ``O(R^2 log n)`` slots.

    This is the explicit constant-carrying version: phases times the
    per-phase bound of Lemma 5.
    """
    return abs_phase_count(n) * abs_phase_slot_bound(max_slot_length)


def sst_lower_bound_slots(n: int, realized_r: TimeLike) -> Fraction:
    """Theorem 2: any deterministic SST algorithm needs this many slots.

    ``Omega(r * (log n / log r + 1))``; for ``r < 2`` the synchronous
    ``Omega(log n)`` bound applies instead.  Returned without the hidden
    constant (the bench compares *shapes*, reporting measured/formula
    ratios).
    """
    if n < 2:
        return Fraction(0)
    r = as_time(realized_r)
    if r < 2:
        return Fraction(_ceil(Fraction(math.log2(n))))
    log_n = math.log(n)
    log_r = math.log(float(r))
    return r * (Fraction(log_n / log_r).limit_denominator(10**6) + 1)


# ----------------------------------------------------------------------
# AO-ARRoW (Section IV)
# ----------------------------------------------------------------------

def ao_election_slots(n: int, max_slot_length: TimeLike) -> int:
    """``A``: slots of one Leader_Election(R) call when it is ABS(R).

    The paper states ``A = log n * (2R^2 + 2R + 1)`` for its simplified
    formulas; we use the constant-exact bound from our Lemma-5 analysis
    so the measured/predicted comparison is apples-to-apples with our
    implementation.
    """
    return abs_slot_upper_bound(n, max_slot_length)


def ao_sync_silence_threshold(max_slot_length: TimeLike) -> int:
    """AO-ARRoW's ``threshold``: silent slots proving no election is live.

    The longest silent period inside a leader election spans at most
    ``(4R^2 + 3R) + (R + 1)`` contender slots, each of length at most
    ``R``; an observer with unit slots could count ``R`` times that many
    silent slots, plus slack for partial slots at both ends.
    """
    upper = _check_r(max_slot_length)
    contender_slots = (4 * upper * upper + 3 * upper) + (upper + 1)
    return _ceil(upper * contender_slots) + 2


def ao_sync_extra_wait(max_slot_length: TimeLike) -> int:
    """Slots a newly eligible station waits before its sync signal.

    ``R * threshold`` (Section IV): guarantees every other station has
    also crossed its own silence threshold before the signal fires, so
    all of them classify the signal consistently and rejoin together.
    """
    upper = _check_r(max_slot_length)
    return _ceil(upper * ao_sync_silence_threshold(max_slot_length))


def ao_long_silence_time_bound(
    max_slot_length: TimeLike, realized_r: TimeLike
) -> Fraction:
    """``B``: max time a station with packets spends in a long silence.

    The paper reports ``B = r(4R^2+3R) * R(R+1) + 2 = O(r R^4)``.  We
    expose the paper's expression; our operational constants above have
    the same ``O(R^4)`` growth (times the realized slot length).
    """
    upper = _check_r(max_slot_length)
    r = as_time(realized_r)
    return r * (4 * upper * upper + 3 * upper) * upper * (upper + 1) + 2


def ao_queue_bound_S(
    n: int,
    max_slot_length: TimeLike,
    rho: TimeLike,
    burstiness: TimeLike,
    realized_r: TimeLike,
) -> Fraction:
    """``S = (nRA + b + B) / (1 - rho)`` — the long/short subphase split."""
    upper = _check_r(max_slot_length)
    rate = _check_rho(rho)
    b = as_time(burstiness)
    a_slots = ao_election_slots(n, upper)
    big_b = ao_long_silence_time_bound(upper, realized_r)
    return (n * upper * a_slots + b + big_b) / (1 - rate)


def ao_queue_bound_L(
    n: int,
    max_slot_length: TimeLike,
    rho: TimeLike,
    burstiness: TimeLike,
    realized_r: TimeLike,
) -> Fraction:
    """Theorem 3: the queue-cost bound ``L = max{L0, L1}`` for AO-ARRoW.

    * ``L0 = S + ((nRA + S) rho + b) / (1 - rho)``
    * ``L1 = (S rho + nRA rho + b + B) + (n+1) RA rho + R rho + b``
    """
    upper = _check_r(max_slot_length)
    rate = _check_rho(rho)
    b = as_time(burstiness)
    a_slots = ao_election_slots(n, upper)
    nra = n * upper * a_slots
    big_b = ao_long_silence_time_bound(upper, realized_r)
    s = ao_queue_bound_S(n, upper, rate, b, realized_r)
    l0 = s + ((nra + s) * rate + b) / (1 - rate)
    l1 = (
        (s * rate + nra * rate + b + big_b)
        + (n + 1) * upper * a_slots * rate
        + upper * rate
        + b
    )
    return max(l0, l1)


# ----------------------------------------------------------------------
# CA-ARRoW (Section VI)
# ----------------------------------------------------------------------

def ca_gap_slots(max_slot_length: TimeLike) -> int:
    """CA-ARRoW's inter-turn gap: the successor listens ``2R`` slots."""
    upper = _check_r(max_slot_length)
    return _ceil(2 * upper)


def ca_queue_bound_L(
    n: int, max_slot_length: TimeLike, rho: TimeLike, burstiness: TimeLike
) -> Fraction:
    """Theorem 6: CA-ARRoW's queue-cost bound ``2nR^2 (rho + 1) / (1 - rho)``.

    Derivation sketch from the paper: each n-turn cycle wastes at most
    ``n * 2R * R`` time, so a cycle starting above
    ``(2nR^2 * rho + b) / (1 - rho)`` cost drains more than arrives.
    We return the paper's simplified closed form plus the burstiness
    term it folds in.
    """
    upper = _check_r(max_slot_length)
    rate = _check_rho(rho)
    b = as_time(burstiness)
    base = (2 * n * upper * upper * rate + b) / (1 - rate)
    return base + 2 * n * upper * upper


# ----------------------------------------------------------------------
# Synchronous references (Fig. 1, right-hand columns)
# ----------------------------------------------------------------------

def mbtf_queue_bound(n: int, burstiness: TimeLike) -> Fraction:
    """MBTF's synchronous queue bound ``2(n^2 + b)`` (Chlebus et al.)."""
    return 2 * (Fraction(n * n) + as_time(burstiness))


# ----------------------------------------------------------------------
# Theorem 4 (instability of collision-free, control-free algorithms)
# ----------------------------------------------------------------------

def thm4_minimum_start_slot(
    queue_limit: int, rho: TimeLike, max_slot_length: TimeLike
) -> int:
    """The adversary's slot index ``S > (2L - 1) / (rho (R - 1))``.

    First injections happen at the end of slot ``S``; the proof needs
    ``S`` this large so the ratio ``(S + alpha) / (S + beta)`` stays
    within ``[1/R... R]`` and slot lengths ``X, Y`` solving the collision
    equation exist inside ``[1, R]``.
    """
    rate = as_time(rho)
    upper = _check_r(max_slot_length)
    if rate <= 0:
        raise ConfigurationError("Theorem 4 needs rho > 0")
    if upper <= 1:
        raise ConfigurationError("Theorem 4 needs R > 1 (real asynchrony)")
    return _ceil(Fraction(2 * queue_limit - 1) / (rate * (upper - 1))) + 1
