"""Empirical Max Stable Rate (MSR) estimation.

The paper's headline metric: the largest injection rate ``rho`` under
which a protocol keeps queues bounded.  Theorems 3/6 put AO-/CA-ARRoW's
MSR at "every ``rho < 1``"; Theorem 5 excludes ``rho = 1``; slotted
Aloha's classical MSR is far below 1.  This module measures the
empirical counterpart by bisection: run the protocol at a candidate
rate for a fixed horizon, apply the windowed-maxima boundedness test,
and narrow the bracket.

Empirical MSR on a finite horizon is necessarily approximate — near
the true MSR queues drain ever more slowly and a finite test window
misclassifies.  The benches therefore report the bisection verdicts at
each probed rate alongside the final estimate, and the comparisons in
EXPERIMENTS.md are at the resolution the paper's table uses (stable at
0.9 vs unstable at 1.0, Aloha far below both).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Tuple

from ..arrivals.patterns import UniformRate
from ..core.simulator import Simulator
from ..core.station import StationAlgorithm
from ..core.timebase import TimeLike, as_time
from ..core.trace import Trace
from ..timing.adversary import SlotAdversary
from .stability import assess_stability

#: Builds a fresh algorithm set for one trial (fresh state per rate).
AlgorithmsFactory = Callable[[], Dict[int, StationAlgorithm]]
#: Builds a fresh slot adversary for one trial.
AdversaryFactory = Callable[[], SlotAdversary]


@dataclass(frozen=True, slots=True)
class RateTrial:
    """One probed rate and its stability verdict."""

    rho: Fraction
    stable: bool
    peak_backlog: int
    final_backlog: int


@dataclass(frozen=True, slots=True)
class MSREstimate:
    """Bisection outcome: the empirical MSR bracket and its history."""

    lower: Fraction  # largest rate measured stable
    upper: Fraction  # smallest rate measured unstable (or the cap)
    trials: List[RateTrial]

    @property
    def estimate(self) -> Fraction:
        return (self.lower + self.upper) / 2


def run_at_rate(
    algorithms: Dict[int, StationAlgorithm],
    adversary: SlotAdversary,
    max_slot_length: TimeLike,
    rho: TimeLike,
    horizon: TimeLike,
    assumed_cost: TimeLike = 1,
) -> RateTrial:
    """One stability trial at rate ``rho`` (round-robin targets)."""
    rate = as_time(rho)
    end = as_time(horizon)
    station_ids = sorted(algorithms)
    source = UniformRate(
        rho=rate, targets=station_ids, assumed_cost=assumed_cost
    )
    trace = Trace(record_slots=False, backlog_stride=16)
    sim = Simulator(
        algorithms,
        adversary,
        max_slot_length=max_slot_length,
        arrival_source=source,
        trace=trace,
    )
    sim.run(until_time=end)
    samples = trace.backlog_series()
    samples.append((sim.now, sim.total_backlog))
    verdict = assess_stability(
        samples, end, tolerance=max(2, trace.max_backlog // 10)
    )
    return RateTrial(
        rho=rate,
        stable=verdict.stable,
        peak_backlog=verdict.peak,
        final_backlog=sim.total_backlog,
    )


def estimate_msr(
    algorithms_factory: AlgorithmsFactory,
    adversary_factory: AdversaryFactory,
    max_slot_length: TimeLike,
    horizon: TimeLike,
    assumed_cost: TimeLike = 1,
    low: TimeLike = "1/20",
    high: TimeLike = "21/20",
    iterations: int = 7,
) -> MSREstimate:
    """Bisect the empirical MSR of a protocol family.

    ``low`` must test stable and ``high`` unstable for a meaningful
    bracket; if ``high`` tests stable the returned upper bound equals
    the cap (the protocol's MSR exceeds the probed range — the
    AO-/CA-ARRoW expectation is a bracket hugging 1 from below).
    """
    lower = as_time(low)
    upper = as_time(high)
    trials: List[RateTrial] = []

    def probe(rho: Fraction) -> bool:
        trial = run_at_rate(
            algorithms_factory(),
            adversary_factory(),
            max_slot_length,
            rho,
            horizon,
            assumed_cost=assumed_cost,
        )
        trials.append(trial)
        return trial.stable

    if not probe(lower):
        return MSREstimate(lower=Fraction(0), upper=lower, trials=trials)
    if probe(upper):
        return MSREstimate(lower=upper, upper=upper, trials=trials)
    for _ in range(iterations):
        mid = (lower + upper) / 2
        if probe(mid):
            lower = mid
        else:
            upper = mid
    return MSREstimate(lower=lower, upper=upper, trials=trials)
