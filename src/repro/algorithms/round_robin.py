"""Synchronous-era round-robin baselines (Fig. 1's R = 1 reference rows).

Two classic collision-avoiding, control-message-free schedulers:

* :class:`NaiveTDMA` — static time-division: station ``i`` owns every
  ``n``-th slot by its own slot count.  Collision-free under perfect
  synchrony; under bounded asynchrony the per-station slot counters
  drift at unknown relative rates, so "my slot" loses all meaning —
  this is the canonical victim of the Theorem 4 collision-forcing
  adversary.
* :class:`RRW` — Round-Robin Withholding (Chlebus, Kowalski, Rokicki):
  a virtual token moves cyclically; the holder transmits *all* its
  packets back-to-back (withholding the channel), and a silent slot
  passes the token.  Universally stable on the synchronous channel;
  under asynchrony the silence-based token passing desynchronizes and
  the protocol collides or starves — Fig. 1's row-1 contrast.

Both are faithful to their synchronous specifications; running them
with ``R > 1`` adversaries is intentional (that is the experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError, ProtocolError
from ..core.feedback import Feedback
from ..core.station import (
    LISTEN,
    TRANSMIT_PACKET,
    Action,
    SlotContext,
    StationAlgorithm,
)


class NaiveTDMA(StationAlgorithm):
    """Static TDMA by local slot count: slot ``j`` belongs to station
    ``(j mod n) + 1``.

    The station transmits in its own slots whenever it has packets and
    never otherwise; channel feedback is ignored entirely (an
    *oblivious* schedule).  With synchronized unit slots no two
    transmissions can ever overlap; the Theorem 4 experiments show any
    such collision-avoiding control-free discipline breaks under
    bounded asynchrony.
    """

    uses_control_messages = False
    collision_free_by_design = True  # ...under synchrony; Thm 4 refutes it for R > 1

    def __init__(self, station_id: int, n_stations: int) -> None:
        if not 1 <= station_id <= n_stations:
            raise ConfigurationError(
                f"station id {station_id} outside [1, {n_stations}]"
            )
        self.station_id = station_id
        self.n_stations = n_stations

    def _my_slot(self, slot_index: int) -> bool:
        return slot_index % self.n_stations == self.station_id - 1

    def first_action(self, ctx: SlotContext) -> Action:
        if self._my_slot(0) and ctx.queue_size > 0:
            return TRANSMIT_PACKET
        return LISTEN

    def on_slot_end(self, ctx: SlotContext) -> Action:
        if self._my_slot(ctx.slot_index) and ctx.queue_size > 0:
            return TRANSMIT_PACKET
        return LISTEN


@dataclass(slots=True)
class RRWStats:
    """Counters for the RRW stability experiments."""

    turns_taken: int = 0
    packets_sent: int = 0
    retries: int = 0


class RRW(StationAlgorithm):
    """Round-Robin Withholding, the synchronous reference of Fig. 1 row 1.

    Token-passing by silence: every station tracks ``turn``; a silent
    slot means the holder passed (empty queue) or just finished its
    burst, so everyone advances ``turn``.  The holder with packets
    transmits them all, then stays quiet — that quiet slot *is* the
    pass.  No control messages are ever sent and, under synchrony, no
    two stations can transmit in the same slot.

    On a busy/collided slot while transmitting the holder retries (the
    synchronous model never produces one; under asynchrony the retry
    loop makes the induced instability visible rather than crashing).
    """

    uses_control_messages = False
    collision_free_by_design = True  # ...under synchrony (R = 1)

    def __init__(self, station_id: int, n_stations: int) -> None:
        if not 1 <= station_id <= n_stations:
            raise ConfigurationError(
                f"station id {station_id} outside [1, {n_stations}]"
            )
        self.station_id = station_id
        self.n_stations = n_stations
        self.turn = 1
        self.transmitting = False
        self.stats = RRWStats()

    def _advance(self) -> None:
        self.turn = self.turn % self.n_stations + 1

    def _holder_action(self, queue_size: int) -> Action:
        if self.turn == self.station_id and queue_size > 0:
            if not self.transmitting:
                self.stats.turns_taken += 1
            self.transmitting = True
            return TRANSMIT_PACKET
        self.transmitting = False
        return LISTEN

    def first_action(self, ctx: SlotContext) -> Action:
        return self._holder_action(ctx.queue_size)

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.transmitting:
            if feedback is Feedback.SILENCE:
                raise ProtocolError(
                    "silence feedback on a transmitting slot — broken channel model"
                )
            if feedback is Feedback.ACK:
                self.stats.packets_sent += 1
                if ctx.queue_size > 0:
                    return TRANSMIT_PACKET
                # Burst done; the next (silent) slot passes the token.
                self.transmitting = False
                return LISTEN
            # Collided under asynchrony: retry while the turn is ours.
            self.stats.retries += 1
            return TRANSMIT_PACKET
        if feedback is Feedback.SILENCE:
            self._advance()
        return self._holder_action(ctx.queue_size)
