"""Randomized SST (open problem, §VII: "advantages of randomization").

Theorem 2's ``Omega(r (log n / log r + 1))`` lower bound is proved for
*deterministic* algorithms — the mirror adversary simulates stations
forward to pick its delays.  Against an algorithm whose coin flips the
adversary cannot predict, mirroring fails, and a much simpler protocol
already solves SST quickly *in expectation*:

    every slot, while still competing, transmit with probability ``p``
    (otherwise listen);  exit with winning on an ack of one's own,
    by elimination on any ack heard while listening.

Safety (exactly one winner) is again the first-success lemma (see
:mod:`repro.algorithms.unknown_r`): the first successful transmission
is heard by all, under any slot lengths, known or unknown ``R``.
Liveness: for ``p ~ 1/n`` the probability that exactly one station's
transmission covers a given stretch of channel time is a constant, so
the expected slot count is ``O(n)`` with ``p = 1/n`` or ``O(2^k)``-free
``O(log)``-style behaviour with decaying ``p`` — the extension bench
measures both and contrasts them with ABS and the deterministic lower
bound formula.

The flips come from a per-station seeded RNG held in the automaton's
state.  Note for adversary experiments: our adaptive adversaries
*clone* station state, RNG included, so they can predict flips —
running the mirror construction against this class models a
"seed-revealing" adversary, which is strictly stronger than the
randomized-algorithm setting assumes.  The bench documents this
asymmetry instead of hiding it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigurationError
from ..core.feedback import Feedback
from ..core.station import (
    LISTEN,
    TRANSMIT_CONTROL,
    Action,
    SlotContext,
    StationAlgorithm,
)


@dataclass(slots=True)
class RandomizedSSTStats:
    attempts: int = 0
    slots_competed: int = 0


class RandomizedSST(StationAlgorithm):
    """Coin-flipping SST contender.

    Args:
        station_id: Used to derive the per-station RNG stream.
        transmit_probability: Per-slot attempt probability ``p``; the
            classical contention-optimal choice is ``1/n``.
        decay: Multiply ``p`` by this factor after every unsuccessful
            own attempt (geometric backoff); ``1.0`` disables decay.
        seed: Base seed (combined with the station id).
    """

    uses_control_messages = True

    def __init__(
        self,
        station_id: int,
        transmit_probability: float,
        decay: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0 < transmit_probability <= 1:
            raise ConfigurationError(
                f"transmit probability must be in (0, 1], got {transmit_probability}"
            )
        if not 0 < decay <= 1:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        self.station_id = station_id
        self.probability = transmit_probability
        self.decay = decay
        self._rng = random.Random((seed << 24) ^ (station_id * 2654435761))
        self.outcome: Optional[str] = None
        self._was_transmitting = False
        self.stats = RandomizedSSTStats()

    @property
    def is_done(self) -> bool:
        return self.outcome is not None

    def _flip(self) -> Action:
        self.stats.slots_competed += 1
        if self._rng.random() < self.probability:
            self.stats.attempts += 1
            self._was_transmitting = True
            return TRANSMIT_CONTROL
        self._was_transmitting = False
        return LISTEN

    def first_action(self, ctx: SlotContext) -> Action:
        return self._flip()

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.outcome is not None:
            return LISTEN
        if feedback is Feedback.ACK:
            # Mine if I was on the air (a concurrent success would have
            # collided with me); someone else's otherwise.
            self.outcome = "won" if self._was_transmitting else "eliminated"
            return LISTEN
        if self._was_transmitting:
            # Collided: back off.
            self.probability *= self.decay
        self._was_transmitting = False
        return self._flip()
