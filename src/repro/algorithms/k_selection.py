"""k-selection: electing k distinct leaders (§VII, "other primitives").

The paper studies one primitive — SST / leader election — and asks
about others.  The natural next one is *k-selection*: exactly ``k``
distinct stations must each transmit successfully, one after another
(the contention-resolution workhorse behind group testing and
reservation phases).  On this channel it composes cleanly out of ABS:

* all contenders run ABS; the round's winner takes **rank**
  ``(wins observed so far) + 1`` and retires to listening;
* every station — contender or not — counts wins reliably, because a
  round's single successful transmission is heard as an ack by every
  listener under any slot lengths (the first-success lemma, applied
  per round: concurrent transmitters would have destroyed it, and all
  non-transmitters' slots cover its end);
* losers wait out the round (ack, then first silence) and re-enter,
  within ``r`` of each other — the same re-entry discipline AO-ARRoW
  uses;
* everyone stops once ``k`` wins have been counted.

Slot cost: ``k`` ABS rounds, i.e. ``O(k R^2 log n)`` — measured by the
extension tests against ``k * abs_slot_upper_bound``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigurationError
from ..core.feedback import Feedback
from ..core.station import LISTEN, Action, SlotContext, StationAlgorithm
from ..core.timebase import TimeLike
from .abs_leader import AbsCore


class KSelection(StationAlgorithm):
    """One station of a k-selection run.

    Terminal outcomes: ``rank`` in ``1..k`` for the selected stations,
    ``None`` rank with :attr:`is_done` true for the rest (they stop
    once the k-th win is heard).

    Args:
        station_id: Unique id in ``[n]``.
        k: How many winners to elect; ``1`` degenerates to SST.
        max_slot_length: The bound ``R`` (drives the inner ABS).
    """

    uses_control_messages = True

    def __init__(self, station_id: int, k: int, max_slot_length: TimeLike) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.station_id = station_id
        self.k = k
        self.max_slot_length = max_slot_length
        self.wins_observed = 0
        #: My rank if selected (1-based); None otherwise.
        self.rank: Optional[int] = None
        self.state = "election"  # election | observe | finished
        self.saw_ack = False
        self.core: Optional[AbsCore] = AbsCore(
            station_id=station_id, max_slot_length=max_slot_length
        )

    @property
    def is_done(self) -> bool:
        return self.state == "finished"

    @property
    def selected(self) -> bool:
        return self.rank is not None

    def _count_win(self) -> None:
        self.wins_observed += 1
        if self.wins_observed >= self.k:
            self.state = "finished"
            self.core = None

    def _enter_observe(self, saw_ack: bool) -> Action:
        self.state = "observe"
        self.core = None
        self.saw_ack = saw_ack
        return LISTEN

    def first_action(self, ctx: SlotContext) -> Action:
        assert self.core is not None
        return self.core.start()

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.state == "finished":
            return LISTEN

        if self.state == "election":
            assert self.core is not None
            action = self.core.step(feedback)
            if action is not None:
                return action
            if self.core.outcome == "won":
                self.rank = self.wins_observed + 1
                self._count_win()
                if self.state != "finished":
                    # Selected, but the run continues for others; a
                    # ranked station just listens until the k-th win.
                    self.state = "observe"
                    self.saw_ack = False
                    self.core = None
                return LISTEN
            # Eliminated: by ack => that round's win is already counted
            # here; by busy => the win is still to come.
            if self.core.eliminated_by_ack:
                self._count_win()
                if self.state == "finished":
                    return LISTEN
                return self._enter_observe(saw_ack=True)
            return self._enter_observe(saw_ack=False)

        # Observe: wait out the current round, counting its win.
        if feedback is Feedback.ACK:
            if not self.saw_ack:
                # The round's win (rounds have exactly one success —
                # winners retire and carry no packets to drain).
                self._count_win()
                if self.state == "finished":
                    return LISTEN
                self.saw_ack = True
            return LISTEN
        if feedback is Feedback.BUSY:
            return LISTEN
        # Silence.
        if self.saw_ack:
            # Round over; unranked stations re-enter the next election.
            self.saw_ack = False
            if self.rank is None:
                self.state = "election"
                self.core = AbsCore(
                    station_id=self.station_id,
                    max_slot_length=self.max_slot_length,
                )
                return self.core.start()
        return LISTEN
