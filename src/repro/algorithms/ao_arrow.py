"""AO-ARRoW — Adaptive Order Asynchronous Round Robin Withholding.

The paper's Section IV algorithm (Fig. 5): dynamic packet transmission
with **no control messages** (every transmission carries a genuine
queued packet; collisions are allowed and mitigated online).  Theorem 3
proves it universally stable: for every injection rate ``rho < 1`` and
burstiness ``b``, the total queued cost stays below the explicit bound
``L`` of :func:`repro.analysis.bounds.ao_queue_bound_L`.

Life cycle of a station (box labels from Fig. 5):

* **Election** (box (2)) — run the ABS subroutine
  (:class:`~repro.algorithms.abs_leader.AbsCore`) with packet-carrying
  transmissions.  The ABS winner's successful transmission already
  delivers one packet.
* **Drain** (box (4)) — the winner transmits its remaining packets
  back-to-back, then *withholds*: sets ``wait = n - 1`` so that it only
  competes again after observing ``n - 1`` further rounds (boxes (6)).
* **Observe** (boxes (1)/(3)/(8)) — losers and waiting stations listen.
  A *round boundary* is an acknowledgment followed by the first silent
  slot (the winner's last packet, then quiet); each boundary decrements
  ``wait``, and an eligible station (non-empty queue, ``wait == 0``)
  joins the next election at the boundary it observes.
* **Long silence** (boxes (7)/(9)) — if the channel stays silent for
  ``threshold`` consecutive slots, no election can possibly be running
  (the threshold exceeds the longest in-election silence times ``R``),
  so every station zeroes its ``wait``.  A station with packets then
  waits ``R * threshold`` *additional* slots (guaranteeing every other
  station has also crossed its own threshold, whatever its slot
  lengths) and transmits a **synchronization signal** — a genuine
  packet.  Every station that hears activity after a crossed threshold
  classifies it as a sync signal and (if it has packets) joins a fresh
  election, so contenders rejoin within ``r`` time of each other, the
  precondition for ABS's Lemma 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.bounds import (
    ao_sync_extra_wait,
    ao_sync_silence_threshold,
)
from ..core.errors import ConfigurationError, ProtocolError
from ..core.feedback import Feedback
from ..core.station import (
    LISTEN,
    TRANSMIT_PACKET,
    Action,
    SlotContext,
    StationAlgorithm,
)
from ..core.timebase import TimeLike, as_time
from .abs_leader import AbsCore


@dataclass(slots=True)
class AOArrowStats:
    """Per-station counters exposed for the stability analyses."""

    elections_entered: int = 0
    elections_won: int = 0
    packets_drained: int = 0
    sync_signals_sent: int = 0
    rounds_observed: int = 0
    drain_collisions: int = 0


class AOArrow(StationAlgorithm):
    """One AO-ARRoW station (Fig. 5 automaton).

    Args:
        station_id: This station's unique ID in ``[n]`` (drives ABS).
        n_stations: ``n``, the ID-space size; used for the withholding
            counter ``wait = n - 1``.
        max_slot_length: The asynchrony bound ``R``.
    """

    uses_control_messages = False
    collision_free_by_design = False

    def __init__(
        self, station_id: int, n_stations: int, max_slot_length: TimeLike
    ) -> None:
        if not 1 <= station_id <= n_stations:
            raise ConfigurationError(
                f"station id {station_id} outside [1, {n_stations}]"
            )
        self.station_id = station_id
        self.n_stations = n_stations
        self.max_slot_length = as_time(max_slot_length)
        #: Silent slots proving no election is in progress (box (7)).
        self.sync_threshold = ao_sync_silence_threshold(self.max_slot_length)
        #: Extra slots before emitting the sync signal (box (9)).
        self.sync_extra = ao_sync_extra_wait(self.max_slot_length)

        self.state = "observe"
        self.wait = 0
        self.silence_run = 0
        self.saw_ack = False
        self.sync_count = 0
        self.core: Optional[AbsCore] = None
        self.stats = AOArrowStats()

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------

    def _begin_election(self) -> Action:
        """Enter box (2): fresh ABS core, packet-carrying transmissions."""
        self.core = AbsCore(
            station_id=self.station_id,
            max_slot_length=self.max_slot_length,
            carries_packet=True,
        )
        self.state = "election"
        self.stats.elections_entered += 1
        return self.core.start()

    def _enter_observe(self, saw_ack: bool) -> Action:
        self.state = "observe"
        self.core = None
        self.saw_ack = saw_ack
        self.silence_run = 0
        return LISTEN

    def _finish_own_round(self) -> Action:
        """Winner done draining: withhold for ``n - 1`` rounds (box (6))."""
        self.wait = self.n_stations - 1
        return self._enter_observe(saw_ack=False)

    # ------------------------------------------------------------------
    # StationAlgorithm interface
    # ------------------------------------------------------------------

    def first_action(self, ctx: SlotContext) -> Action:
        # Box (1) at time 0: stations holding packets start the first
        # election simultaneously; the rest observe.
        if ctx.queue_size > 0:
            return self._begin_election()
        return self._enter_observe(saw_ack=False)

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.state == "election":
            return self._step_election(feedback, ctx.queue_size)
        if self.state == "drain":
            return self._step_drain(feedback, ctx.queue_size)
        if self.state == "sync_wait":
            return self._step_sync_wait(feedback)
        if self.state == "sync_tx":
            return self._step_sync_tx(feedback, ctx.queue_size)
        if self.state == "observe":
            return self._step_observe(feedback, ctx.queue_size)
        raise ProtocolError(f"AO-ARRoW in unknown state {self.state!r}")

    # ------------------------------------------------------------------
    # Per-state steps
    # ------------------------------------------------------------------

    def _step_election(self, feedback: Feedback, queue_size: int) -> Action:
        assert self.core is not None
        action = self.core.step(feedback)
        if action is not None:
            return action
        if self.core.outcome == "won":
            self.stats.elections_won += 1
            # The winning ABS transmission already delivered one packet
            # (the simulator pops it on the ack we just consumed).
            if queue_size > 0:
                self.state = "drain"
                self.core = None
                return TRANSMIT_PACKET
            return self._finish_own_round()
        # Eliminated.  By ack: the winner is known, the next silent slot
        # is the round boundary.  By busy: the election is still in
        # progress; the winner's ack is yet to come.
        return self._enter_observe(saw_ack=self.core.eliminated_by_ack)

    def _step_drain(self, feedback: Feedback, queue_size: int) -> Action:
        if feedback is Feedback.ACK:
            self.stats.packets_drained += 1
            if queue_size > 0:
                return TRANSMIT_PACKET
            return self._finish_own_round()
        if feedback is Feedback.BUSY:
            # A collision while holding the channel cannot happen in a
            # conforming execution (observers are silent until the round
            # boundary); tolerate it by retrying so a perturbed run
            # degrades instead of crashing.
            self.stats.drain_collisions += 1
            return TRANSMIT_PACKET
        raise ProtocolError(
            "silence feedback on a transmitting slot — broken channel model"
        )

    def _step_sync_wait(self, feedback: Feedback) -> Action:
        if feedback.is_activity:
            # Another newly eligible station beat us to the sync signal;
            # rejoin the competition with it (box (9) edge).
            return self._begin_election()
        self.sync_count += 1
        if self.sync_count >= self.sync_extra:
            self.state = "sync_tx"
            return TRANSMIT_PACKET
        return LISTEN

    def _step_sync_tx(self, feedback: Feedback, queue_size: int) -> Action:
        if feedback is Feedback.SILENCE:
            raise ProtocolError(
                "silence feedback on a transmitting slot — broken channel model"
            )
        self.stats.sync_signals_sent += 1
        # ACK: our sync packet was delivered (and popped); BUSY: it
        # collided with a concurrent sync signal and stays queued.
        # Either way every waiting station now rejoins the election.
        if queue_size > 0:
            return self._begin_election()
        return self._enter_observe(saw_ack=False)

    def _step_observe(self, feedback: Feedback, queue_size: int) -> Action:
        if feedback.is_activity:
            if self.silence_run >= self.sync_threshold:
                # Sync signal: the preceding silence was provably longer
                # than any in-election gap, so this activity (re)starts
                # competition.  Everyone is eligible again.
                self.wait = 0
                self.silence_run = 0
                self.saw_ack = False
                if queue_size > 0:
                    return self._begin_election()
                return LISTEN
            if feedback is Feedback.ACK:
                self.saw_ack = True
            self.silence_run = 0
            return LISTEN

        # Silence.
        self.silence_run += 1
        if self.saw_ack:
            # Round boundary: the winner's last delivery, then quiet.
            self.saw_ack = False
            self.stats.rounds_observed += 1
            if self.wait > 0:
                self.wait -= 1
            if queue_size > 0 and self.wait == 0:
                return self._begin_election()
            return LISTEN
        if self.silence_run >= self.sync_threshold:
            # Long silence (box (7)): no station can be eligible.
            self.wait = 0
            if queue_size > 0:
                self.state = "sync_wait"
                self.sync_count = 0
        return LISTEN
