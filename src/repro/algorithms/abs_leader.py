"""ABS — Asymmetric Binary Search leader election (Fig. 3, Section III).

ABS solves Single Successful Transmission (SST) on the partially
asynchronous channel in ``O(R^2 log n)`` slots (Theorem 1): exactly one
station exits *with winning* (its transmission succeeded alone) and all
others exit *by elimination*.

The automaton per station, phase ``i`` (box labels from Fig. 3):

1. **(1)** listen until the first silent slot (absorbs leftover
   transmissions from the previous phase, up to ``R + 1`` slots);
2. **(2)** read bit ``i`` of the station ID, least significant first;
3. **(3)/(4)** listen for a bit-dependent threshold of silent slots —
   ``3R`` when the bit is 0, ``4R^2 + 3R`` when it is 1 — exiting *by
   elimination* on hearing a busy channel;
4. **(5)** transmit one slot; an acknowledgment means *exit with
   winning* **(7)**, otherwise (collision) continue with the next phase.

The asymmetric thresholds are the paper's key trick: a silent period of
``3R`` slots of a bit-0 station lasts at most ``3R * R`` time, while a
bit-1 station listens long enough (``4R^2 + 3R >= 3R*R + R + ...``) that
it must overhear any bit-0 transmission regardless of the unknown slot
length ratio — so bit-1 stations always lose to coexisting bit-0
stations (Lemma 3), re-synchronizing the survivor set every phase
(Lemma 1).

Eliminations also trigger on *ack* while listening: an acknowledgment
proves some station already won, so SST is solved and the hearer exits.
The wrapper records whether elimination was by ack (winner known) or by
busy (election still running) — AO-ARRoW's loser logic needs the
distinction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.bounds import (
    abs_listen_threshold_bit0,
    abs_listen_threshold_bit1,
)
from ..core.errors import ProtocolError
from ..core.feedback import Feedback
from ..core.station import (
    LISTEN,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
    Action,
    SlotContext,
    StationAlgorithm,
)
from ..core.timebase import TimeLike, as_time


def id_bit(station_id: int, position: int) -> int:
    """Bit ``position`` (0 = least significant) of the station ID.

    Positions beyond the ID's bit length read as 0, which is equivalent
    to padding every ID with leading zeros: distinct IDs in ``[n]``
    still differ at some position below ``bit_length(n)``.
    """
    return (station_id >> position) & 1


@dataclass(slots=True)
class AbsCore:
    """The ABS state machine, drivable as a subroutine.

    :class:`ABSLeaderElection` wraps it as a standalone
    :class:`~repro.core.station.StationAlgorithm`; AO-ARRoW instantiates
    a fresh core for every election round and feeds it feedback until
    :attr:`outcome` becomes non-``None``.

    States (strings, mirroring the Fig. 3 boxes):

    * ``"wait_silence"`` — box (1);
    * ``"listen_threshold"`` — boxes (3)/(4), with ``silent_heard``
      counting the consecutive silent slots;
    * ``"transmitted"`` — the slot just spent in box (5);
    * terminal, with :attr:`outcome` ``"won"`` or ``"eliminated"``.
    """

    station_id: int
    max_slot_length: TimeLike
    carries_packet: bool = False
    state: str = "wait_silence"
    phase: int = 0
    silent_heard: int = 0
    threshold: int = 0
    outcome: Optional[str] = None
    eliminated_by_ack: bool = False
    slots_used: int = 0
    #: Ablation hooks: override the paper's listening thresholds (the
    #: ablation bench shows what breaks without the 3R / 4R^2+3R
    #: asymmetry).  ``None`` means the paper's values.
    threshold0_override: Optional[int] = None
    threshold1_override: Optional[int] = None
    _threshold0: int = field(init=False)
    _threshold1: int = field(init=False)

    def __post_init__(self) -> None:
        if self.station_id < 1:
            raise ProtocolError(
                f"ABS requires positive integer IDs, got {self.station_id}"
            )
        upper = as_time(self.max_slot_length)
        self._threshold0 = (
            self.threshold0_override
            if self.threshold0_override is not None
            else abs_listen_threshold_bit0(upper)
        )
        self._threshold1 = (
            self.threshold1_override
            if self.threshold1_override is not None
            else abs_listen_threshold_bit1(upper)
        )

    @property
    def transmit_action(self) -> Action:
        return TRANSMIT_PACKET if self.carries_packet else TRANSMIT_CONTROL

    @property
    def done(self) -> bool:
        return self.outcome is not None

    def start(self) -> Action:
        """Action for the first slot of the election: listen (box (1))."""
        return LISTEN

    def _enter_phase_listen(self) -> None:
        """Box (2): read the next bit, arm the matching threshold."""
        bit = id_bit(self.station_id, self.phase)
        self.threshold = self._threshold1 if bit else self._threshold0
        self.silent_heard = 0
        self.state = "listen_threshold"

    def step(self, feedback: Feedback) -> Optional[Action]:
        """Consume one slot's feedback; return the next action.

        Returns ``None`` once the election is over for this station
        (check :attr:`outcome`).  The caller owns what happens next —
        the standalone wrapper idles, AO-ARRoW transitions.
        """
        if self.outcome is not None:
            raise ProtocolError("AbsCore.step called after termination")
        self.slots_used += 1

        if self.state == "wait_silence":  # box (1)
            if feedback is Feedback.ACK:
                # Somebody already won SST; no point competing.
                self.outcome = "eliminated"
                self.eliminated_by_ack = True
                return None
            if feedback is Feedback.SILENCE:
                self._enter_phase_listen()
                # The silent slot we just heard counts toward the
                # threshold listening of boxes (3)/(4)? No — the paper
                # separates box (1) from the threshold loop; counting
                # starts with the next slot.
            return LISTEN

        if self.state == "listen_threshold":  # boxes (3)/(4)
            if feedback is Feedback.BUSY:
                self.outcome = "eliminated"
                self.eliminated_by_ack = False
                return None
            if feedback is Feedback.ACK:
                self.outcome = "eliminated"
                self.eliminated_by_ack = True
                return None
            self.silent_heard += 1
            if self.silent_heard >= self.threshold:
                self.state = "transmitted"
                return self.transmit_action  # box (5)
            return LISTEN

        if self.state == "transmitted":  # feedback for box (5)
            if feedback is Feedback.ACK:
                self.outcome = "won"  # box (7)
                return None
            if feedback is Feedback.SILENCE:
                raise ProtocolError(
                    "channel reported silence for a slot this station "
                    "transmitted in — broken channel model"
                )
            # Collision: next phase with the next bit (back to box (1)).
            self.phase += 1
            self.state = "wait_silence"
            return LISTEN

        raise ProtocolError(f"AbsCore in unknown state {self.state!r}")


class ABSLeaderElection(StationAlgorithm):
    """Standalone ABS station for SST experiments.

    By default transmissions are control signals (``SST`` is about
    electing a transmitter, not delivering queued data); construct with
    ``carries_packet=True`` and pre-load one packet per station to model
    the "every station has one message" reading.

    After termination the station listens forever and reports
    :attr:`is_done`.
    """

    def __init__(
        self,
        station_id: int,
        max_slot_length: TimeLike,
        carries_packet: bool = False,
    ) -> None:
        self.core = AbsCore(
            station_id=station_id,
            max_slot_length=max_slot_length,
            carries_packet=carries_packet,
        )
        self.uses_control_messages = not carries_packet

    @property
    def outcome(self) -> Optional[str]:
        """``None`` while competing, then ``"won"`` or ``"eliminated"``."""
        return self.core.outcome

    @property
    def is_done(self) -> bool:
        return self.core.done

    @property
    def slots_used(self) -> int:
        """Slots this station spent inside the election (Theorem 1 metric)."""
        return self.core.slots_used

    def first_action(self, ctx: SlotContext) -> Action:
        return self.core.start()

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.core.done:
            return LISTEN
        action = self.core.step(feedback)
        return action if action is not None else LISTEN
