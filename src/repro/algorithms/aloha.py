"""Slotted Aloha — the classical randomized reference point.

Section I of the paper contrasts its deterministic bounded-asynchrony
results with Aloha: slotted Aloha stabilizes only at low arrival rates
(at most ``1/e`` aggregate for the classical analysis), whereas
AO-/CA-ARRoW sustain every ``rho < 1``.  The Aloha comparison bench
(E12 in DESIGN.md) reproduces that qualitative gap.

The station transmits its head packet with probability ``p`` in every
slot where its queue is non-empty, independently across slots.  The RNG
is part of the explicit station state (seeded per station), so runs
replay deterministically and adversarial look-ahead through
:meth:`~repro.core.station.StationAlgorithm.clone` stays sound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.station import (
    LISTEN,
    TRANSMIT_PACKET,
    Action,
    SlotContext,
    StationAlgorithm,
)


@dataclass(slots=True)
class AlohaStats:
    """Counters for the Aloha comparison bench."""

    attempts: int = 0
    deliveries: int = 0


class SlottedAloha(StationAlgorithm):
    """Transmit-with-probability-``p`` slotted Aloha.

    Args:
        station_id: Used only to derive a per-station RNG stream.
        transmit_probability: The per-slot attempt probability ``p``;
            the classical throughput-optimal choice for ``n`` saturated
            stations is ``p = 1/n``.
        seed: Base seed; combined with the station id so different
            stations draw independent streams.
    """

    uses_control_messages = False
    collision_free_by_design = False

    def __init__(
        self, station_id: int, transmit_probability: float, seed: int = 0
    ) -> None:
        if not 0 < transmit_probability <= 1:
            raise ConfigurationError(
                f"transmit probability must be in (0, 1], got {transmit_probability}"
            )
        self.station_id = station_id
        self.transmit_probability = transmit_probability
        self._rng = random.Random((seed << 20) ^ station_id)
        self.stats = AlohaStats()
        self._was_transmitting = False

    def _decide(self, queue_size: int) -> Action:
        if queue_size > 0 and self._rng.random() < self.transmit_probability:
            self.stats.attempts += 1
            self._was_transmitting = True
            return TRANSMIT_PACKET
        self._was_transmitting = False
        return LISTEN

    def first_action(self, ctx: SlotContext) -> Action:
        return self._decide(ctx.queue_size)

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self._was_transmitting and feedback.value == "ack":
            self.stats.deliveries += 1
        return self._decide(ctx.queue_size)
