"""Fault-tolerant CA-ARRoW: surviving fail-stop crashes.

Plain CA-ARRoW (Fig. 6) deadlocks when a turn holder crashes: on a
content-opaque channel a dead station is pure silence, the successor
waits forever for transmissions that never come, and the ring halts —
the extension experiments show exactly this.  This module implements
the recovery extension foreshadowed by the paper's own observation
(Section VI) that *"if many stations do not have any packets to
transmit, the uncertainty accumulates and the upper bound grows
exponentially"*: skipping a silent (dead) station under bounded
asynchrony costs an R-factor per consecutive skip.

Recovery design (all counts in the station's own slots; constants
R-margined exactly like the paper's thresholds):

* A station that observes silence since the last activity reaching
  ``A_k`` performs its *k-th skip*: ``turn`` advances past one more
  presumed-dead station.
* If the k-th skip makes it the holder, it does not transmit at once —
  it waits until its silence count reaches ``B_k``; by then **every**
  station, however slow its slots, has also performed its k-th skip,
  so the ring agrees on the turn before the claimant speaks.
* The thresholds satisfy ``B_k = R * A_k + 2R`` (everyone has skipped
  k times) and ``A_{k+1} = R * B_k + 2R`` (nobody skips k+1 times
  before a live claimant k speaks), giving the geometric ladder
  ``A_{k+1} = R^2 A_k + ...`` — exponential in the number of
  *consecutive* dead stations, reset to the base by any activity.

With no crashes the ladder never engages (``A_1`` exceeds every legal
silence of the crash-free protocol) and the algorithm behaves exactly
like :class:`~repro.algorithms.ca_arrow.CAArrow`, collision-freedom
included.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..analysis.bounds import ca_gap_slots
from ..core.errors import ConfigurationError, ProtocolError
from ..core.feedback import Feedback
from ..core.station import (
    LISTEN,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
    Action,
    SlotContext,
    StationAlgorithm,
)
from ..core.timebase import TimeLike, as_time


def _ceil(x: Fraction) -> int:
    return -((-x.numerator) // x.denominator)


def skip_thresholds(max_slot_length: TimeLike, max_skips: int) -> List[tuple]:
    """The ``(A_k, B_k)`` ladder for ``k = 1..max_skips``.

    ``A_1`` must exceed the longest crash-free silence: the successor's
    ``2R``-slot gap lasts at most ``2R * R`` time, during which a unit-
    slot observer counts at most ``2R^2`` silent slots (+2 slack).
    """
    upper = as_time(max_slot_length)
    ladder = []
    a_k = 2 * upper * upper + 2 * upper + 2
    for _ in range(max_skips):
        b_k = upper * a_k + 2 * upper
        ladder.append((_ceil(a_k), _ceil(b_k)))
        a_k = upper * b_k + 2 * upper
    return ladder


@dataclass(slots=True)
class FTCAArrowStats:
    """Counters for the fault-tolerance experiments."""

    turns_taken: int = 0
    packets_sent: int = 0
    empty_signals_sent: int = 0
    skips: int = 0
    recoveries_claimed: int = 0
    unexpected_busy: int = 0


class FaultTolerantCAArrow(StationAlgorithm):
    """CA-ARRoW with the dead-holder skip ladder.

    Args:
        station_id / n_stations / max_slot_length: As CA-ARRoW.
        max_consecutive_skips: Ladder depth; ``n_stations`` suffices
            (some station is alive or the run is over).
    """

    uses_control_messages = True
    collision_free_by_design = True

    def __init__(
        self,
        station_id: int,
        n_stations: int,
        max_slot_length: TimeLike,
        max_consecutive_skips: int | None = None,
    ) -> None:
        if not 1 <= station_id <= n_stations:
            raise ConfigurationError(
                f"station id {station_id} outside [1, {n_stations}]"
            )
        self.station_id = station_id
        self.n_stations = n_stations
        self.max_slot_length = as_time(max_slot_length)
        self.gap_slots = ca_gap_slots(self.max_slot_length)
        depth = (
            max_consecutive_skips
            if max_consecutive_skips is not None
            else n_stations
        )
        self.ladder = skip_thresholds(self.max_slot_length, depth)

        self.turn = 1
        self.state = "wait_end"  # wait_end | gap | transmitting | claim
        self.heard_activity = False
        self.gap_count = 0
        self._noise_turn = False
        #: Consecutive silent slots since the last observed activity.
        self.silent_run = 0
        #: Skips performed in the current quiet period.
        self.skip_count = 0
        #: Conflict mode: set after an own-transmission collision
        #: (turn views have desynchronized, e.g. after jamming).  Claim
        #: thresholds are then staggered by ID so exactly one of the
        #: conflicting claimants speaks first and the rest yield.
        self.conflict_mode = False
        #: Consecutive ladder claims with no natural turn in between —
        #: reaching ``n_stations`` proves the ring is running purely on
        #: recovery claims (views desynchronized or almost all dead)
        #: and triggers a global turn reset to station 1.
        self.ladder_rounds = 0
        #: Whether the activity currently on the air is a recovery
        #: claim (its eventual turn-end must not clear ladder_rounds).
        self._current_activity_is_claim = False
        self.stats = FTCAArrowStats()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _next_turn(self) -> int:
        return self.turn % self.n_stations + 1

    def _begin_my_turn(self, queue_size: int) -> Action:
        self.state = "transmitting"
        self.stats.turns_taken += 1
        if queue_size > 0:
            self._noise_turn = False
            return TRANSMIT_PACKET
        self._noise_turn = True
        return TRANSMIT_CONTROL

    def _on_activity(self) -> None:
        self.silent_run = 0
        self.skip_count = 0

    def _advance_turn_normal(self) -> Action:
        self.turn = self._next_turn()
        self.heard_activity = False
        if self._current_activity_is_claim:
            # The turn that just ended was a recovery claim; its
            # completion is not evidence that the ring is healthy.
            self._current_activity_is_claim = False
        else:
            self.ladder_rounds = 0  # a natural turn: the ring functions
        if self.turn == self.station_id:
            self.state = "gap"
            self.gap_count = 0
        else:
            self.state = "wait_end"
        return LISTEN

    def _register_ladder_round(self) -> None:
        """Count a recovery claim; too many in a row resets the ring.

        ``n`` consecutive ladder claims without a single natural turn
        mean the turn views no longer cohere (post-jamming desync) or
        nearly everyone is dead.  All stations observe the same claim
        pattern (a claim is unmistakable: it follows a silence every
        station counted past ``A_1``), so they reset together:
        ``turn <- 0`` makes the *next* natural advance hand the ring to
        station 1, and conflict mode ends.
        """
        self.ladder_rounds += 1
        if self.ladder_rounds >= self.n_stations:
            self.ladder_rounds = 0
            self.turn = 0
            self.conflict_mode = False

    def _maybe_skip(self, queue_size: int) -> Action:
        """Silence accumulated: climb the ladder if a threshold passed."""
        if self.state == "claim":
            # I skipped onto my own turn as skip number ``skip_count``;
            # claim once that skip's B threshold is reached (by then
            # every station has performed the same skip).  In conflict
            # mode the threshold is additionally staggered by ``(2R)^
            # (id-1)`` so that of several desynchronized claimants the
            # smallest ID provably speaks before any other's claim
            # time, and the rest observe it and yield.
            b_k = self.ladder[self.skip_count - 1][1]
            if self.conflict_mode:
                b_k = _ceil(
                    b_k * (2 * self.max_slot_length) ** (self.station_id - 1)
                )
            if self.silent_run >= b_k:
                self.stats.recoveries_claimed += 1
                self._register_ladder_round()
                self._current_activity_is_claim = True
                self._on_activity()  # my own transmission is activity
                return self._begin_my_turn(queue_size)
            return LISTEN
        if self.skip_count >= len(self.ladder):
            return LISTEN  # ladder exhausted; stay quiet (all dead?)
        a_k = self.ladder[self.skip_count][0]
        if self.silent_run >= a_k:
            self.turn = self._next_turn()
            self.skip_count += 1
            self.stats.skips += 1
            self.heard_activity = False
            if self.turn == self.station_id:
                self.state = "claim"
            else:
                self.state = "wait_end"
        return LISTEN

    # ------------------------------------------------------------------
    # StationAlgorithm interface
    # ------------------------------------------------------------------

    def first_action(self, ctx: SlotContext) -> Action:
        if self.station_id == 1:
            return self._begin_my_turn(ctx.queue_size)
        self.state = "wait_end"
        return LISTEN

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.state == "transmitting":
            return self._step_transmitting(feedback, ctx.queue_size)
        if feedback.is_activity:
            # Classify before clearing silence: activity preceded by a
            # super-threshold quiet period is a recovery claim (every
            # station counted past A_1 during it, so the classification
            # is ring-consistent).
            if self.silent_run >= self.ladder[0][0]:
                self._register_ladder_round()
                self._current_activity_is_claim = True
            self._on_activity()
            if self.state == "claim":
                # Someone else is alive and speaking; fall back to
                # following the ring normally.
                self.state = "wait_end"
            if self.state == "gap":
                self.gap_count = 0
                return LISTEN
            self.heard_activity = True
            return LISTEN

        # Silence.
        self.silent_run += 1
        if self.state == "gap":
            self.gap_count += 1
            if self.gap_count >= self.gap_slots:
                self._on_activity()
                return self._begin_my_turn(ctx.queue_size)
            return LISTEN
        if self.state == "wait_end" and self.heard_activity:
            # Normal turn end: activity then silence.
            self.silent_run = 1  # this silent slot starts the quiet period
            return self._advance_turn_normal()
        return self._maybe_skip(ctx.queue_size)

    def _step_transmitting(self, feedback: Feedback, queue_size: int) -> Action:
        if feedback is Feedback.SILENCE:
            raise ProtocolError(
                "silence feedback on a transmitting slot — broken channel model"
            )
        self._on_activity()
        if feedback is Feedback.BUSY:
            # A collision while we hold the turn means another station
            # believes it holds the turn too — views have diverged
            # (e.g. after jamming).  Retrying forever would livelock;
            # instead back off into conflict mode: everyone yields, the
            # channel quiets down, and the ID-staggered claim ladder
            # hands it to exactly one of the conflicting claimants.
            self.stats.unexpected_busy += 1
            self.conflict_mode = True
            self._current_activity_is_claim = False
            self.state = "wait_end"
            self.heard_activity = True
            return LISTEN
        # Acknowledged: we demonstrably hold the channel alone, so any
        # earlier conflict is resolved from our side.
        self.conflict_mode = False
        if self._noise_turn:
            self.stats.empty_signals_sent += 1
            return self._advance_turn_normal()
        self.stats.packets_sent += 1
        if queue_size > 0:
            return TRANSMIT_PACKET
        return self._advance_turn_normal()
