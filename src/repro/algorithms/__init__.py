"""All channel-access algorithms: the paper's and the baselines.

* ``ABSLeaderElection`` / ``AbsCore`` — Fig. 3 (Section III).
* ``AOArrow`` — Fig. 5 (Section IV), no control messages.
* ``CAArrow`` — Fig. 6 (Section VI), collision-free.
* ``RRW``, ``NaiveTDMA``, ``MBTFLike``, ``SlottedAloha`` —
  synchronous-era baselines for Fig. 1's comparison columns.
"""

from .abs_leader import ABSLeaderElection, AbsCore, id_bit
from .ca_arrow_ft import FaultTolerantCAArrow, FTCAArrowStats, skip_thresholds
from .k_selection import KSelection
from .randomized_sst import RandomizedSST, RandomizedSSTStats
from .unknown_r import DoublingABS, EpochLog, epoch_budget, epoch_guess
from .aloha import AlohaStats, SlottedAloha
from .ao_arrow import AOArrow, AOArrowStats
from .ca_arrow import CAArrow, CAArrowStats
from .mbtf import MBTFLike, TokenRingStats
from .round_robin import RRW, NaiveTDMA, RRWStats

__all__ = [
    "ABSLeaderElection",
    "AbsCore",
    "AlohaStats",
    "AOArrow",
    "AOArrowStats",
    "CAArrow",
    "CAArrowStats",
    "DoublingABS",
    "EpochLog",
    "FaultTolerantCAArrow",
    "FTCAArrowStats",
    "KSelection",
    "MBTFLike",
    "NaiveTDMA",
    "RandomizedSST",
    "RandomizedSSTStats",
    "RRW",
    "RRWStats",
    "SlottedAloha",
    "TokenRingStats",
    "epoch_budget",
    "epoch_guess",
    "id_bit",
    "skip_thresholds",
]
