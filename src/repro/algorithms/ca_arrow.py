"""CA-ARRoW — Collision-Avoidance Asynchronous Round Robin Withholding.

The paper's Section VI algorithm (Fig. 6): dynamic packet transmission
that is **collision-free in every execution** but uses control messages
("empty signals") to keep the round-robin order observable.  Theorem 6
proves universal stability with queue-cost bound
``2nR^2(rho + 1)/(1 - rho)``.

Protocol: stations take turns cyclically by ID, tracked by a local
``turn`` variable that every station updates from channel observations
alone (message *contents* are never read):

* The turn holder transmits all queued packets back-to-back, or one
  *empty signal* if its queue is empty — so every turn produces
  observable activity and uncertainty never accumulates through long
  silences (the failure mode that kills plain round robin under
  asynchrony).
* Every listener detects the end of the holder's "sequence of
  consecutive transmissions" as *activity followed by a silent slot*
  and increments ``turn``.
* The **next** holder additionally waits ``2R`` of its own slots before
  transmitting.  The gap serves two purposes: (a) its own silent-slot
  detection already proves the predecessor finished in real time, and
  (b) ``2R`` slots of the successor last at least as long as any other
  station needs to observe the same boundary (at most two slots of
  length ``<= R``), so every station has incremented ``turn`` before
  the new holder starts — keeping ``turn`` globally consistent and the
  execution collision-free.

Station 1 owns the first turn and transmits immediately at time 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.bounds import ca_gap_slots
from ..core.errors import ConfigurationError, ProtocolError
from ..core.feedback import Feedback
from ..core.station import (
    LISTEN,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
    Action,
    SlotContext,
    StationAlgorithm,
)
from ..core.timebase import TimeLike, as_time


@dataclass(slots=True)
class CAArrowStats:
    """Per-station counters exposed for the stability analyses."""

    turns_taken: int = 0
    packets_sent: int = 0
    empty_signals_sent: int = 0
    unexpected_busy: int = 0


class CAArrow(StationAlgorithm):
    """One CA-ARRoW station (Fig. 6 automaton).

    Args:
        station_id: Unique ID in ``[n]``; turn order is ``1, 2, ..., n``
            cyclically.
        n_stations: ``n``, the size of the ring.
        max_slot_length: The asynchrony bound ``R`` (fixes the ``2R``
            inter-turn gap).
    """

    uses_control_messages = True
    collision_free_by_design = True

    def __init__(
        self,
        station_id: int,
        n_stations: int,
        max_slot_length: TimeLike,
        gap_slots_override: int | None = None,
    ) -> None:
        if not 1 <= station_id <= n_stations:
            raise ConfigurationError(
                f"station id {station_id} outside [1, {n_stations}]"
            )
        self.station_id = station_id
        self.n_stations = n_stations
        self.max_slot_length = as_time(max_slot_length)
        # gap_slots_override is an ablation hook: the bench shows that a
        # gap below the paper's 2R breaks collision-freedom under
        # asynchrony (some station has not observed the turn boundary
        # before the new holder speaks).
        self.gap_slots = (
            gap_slots_override
            if gap_slots_override is not None
            else ca_gap_slots(self.max_slot_length)
        )

        #: Whose turn the station believes it is (starts at station 1).
        self.turn = 1
        #: "wait_end" (listening for the holder's transmissions to end),
        #: "gap" (I am next; counting the 2R-slot gap),
        #: "transmitting" (my turn, on the air).
        self.state = "wait_end"
        #: Whether activity was heard since the last turn change.
        self.heard_activity = False
        self.gap_count = 0
        #: Whether the current transmitting turn started queue-empty
        #: (then it is a single empty signal, not a packet drain).
        self._noise_turn = False
        self.stats = CAArrowStats()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _next_turn(self) -> int:
        return self.turn % self.n_stations + 1

    def _begin_my_turn(self, queue_size: int) -> Action:
        self.state = "transmitting"
        self.stats.turns_taken += 1
        if queue_size > 0:
            self._noise_turn = False
            return TRANSMIT_PACKET
        self._noise_turn = True
        return TRANSMIT_CONTROL

    def _advance_turn(self) -> Action:
        """A turn just ended on the channel (activity then silence)."""
        self.turn = self._next_turn()
        self.heard_activity = False
        if self.turn == self.station_id:
            self.state = "gap"
            self.gap_count = 0
        else:
            self.state = "wait_end"
        return LISTEN

    # ------------------------------------------------------------------
    # StationAlgorithm interface
    # ------------------------------------------------------------------

    def first_action(self, ctx: SlotContext) -> Action:
        if self.station_id == 1:
            # Station 1 opens the very first turn at time 0.
            return self._begin_my_turn(ctx.queue_size)
        self.state = "wait_end"
        return LISTEN

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.state == "transmitting":
            return self._step_transmitting(feedback, ctx.queue_size)
        if self.state == "gap":
            return self._step_gap(feedback, ctx.queue_size)
        if self.state == "wait_end":
            return self._step_wait_end(feedback)
        raise ProtocolError(f"CA-ARRoW in unknown state {self.state!r}")

    # ------------------------------------------------------------------
    # Per-state steps
    # ------------------------------------------------------------------

    def _step_transmitting(self, feedback: Feedback, queue_size: int) -> Action:
        if feedback is Feedback.SILENCE:
            raise ProtocolError(
                "silence feedback on a transmitting slot — broken channel model"
            )
        if feedback is Feedback.BUSY:
            # Collision: impossible in a conforming execution — counted
            # so the test suite can assert it never happens, retried so
            # a perturbed run degrades gracefully.
            self.stats.unexpected_busy += 1
            return TRANSMIT_CONTROL if self._noise_turn else TRANSMIT_PACKET
        # ACK.
        if self._noise_turn:
            self.stats.empty_signals_sent += 1
            return self._advance_turn()
        self.stats.packets_sent += 1
        if queue_size > 0:
            return TRANSMIT_PACKET
        return self._advance_turn()

    def _step_gap(self, feedback: Feedback, queue_size: int) -> Action:
        if feedback.is_activity:
            # Nobody should speak during my gap; be conservative and
            # restart the count so we provably never overlap.
            self.gap_count = 0
            return LISTEN
        self.gap_count += 1
        if self.gap_count >= self.gap_slots:
            return self._begin_my_turn(queue_size)
        return LISTEN

    def _step_wait_end(self, feedback: Feedback) -> Action:
        if feedback.is_activity:
            self.heard_activity = True
            return LISTEN
        if self.heard_activity:
            # Activity followed by silence: the holder's sequence of
            # consecutive transmissions ended.
            return self._advance_turn()
        return LISTEN
