"""MBTF-style synchronous token ring with control messages.

Fig. 1's synchronous reference for the rows that allow control
messages is MBTF (Move-Big-To-Front, Chlebus–Kowalski–Rokicki 2009),
universally stable with queue bound ``2(n^2 + b)``.  Full MBTF relies
on stations reading control *content* attached to transmissions; our
channel model (shared with the paper) is content-opaque, so this module
provides the documented stand-in from DESIGN.md: a withholding token
ring in which **empty turns emit an audible empty signal** instead of
passing silently.

That one difference from :class:`~repro.algorithms.round_robin.RRW`
is exactly the control-message capability of Fig. 1's model axis, and
it preserves the property the table row records: universal stability
for every ``rho < 1`` on the synchronous channel, with queues bounded
by ``O(n^2/(1-rho) + b)``-shaped constants (each idle cycle costs
``2n`` slots instead of ``n``).

The turn-tracking rule is "activity, then a silent slot, advances the
token", which stays well-defined because every turn produces at least
one transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError, ProtocolError
from ..core.feedback import Feedback
from ..core.station import (
    LISTEN,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
    Action,
    SlotContext,
    StationAlgorithm,
)


@dataclass(slots=True)
class TokenRingStats:
    """Counters for the synchronous-baseline experiments."""

    turns_taken: int = 0
    packets_sent: int = 0
    empty_signals_sent: int = 0
    retries: int = 0


class MBTFLike(StationAlgorithm):
    """Withholding token ring with empty signals (synchronous, R = 1).

    States:

    * ``wait`` — not my turn: listen; *activity then silence* advances
      the token.
    * ``transmit`` — my turn: send all packets (or one empty signal),
      then fall silent; my silent slot is what everyone (including me)
      uses to advance.

    Station 1 holds the first turn and transmits at time 0.
    """

    uses_control_messages = True
    collision_free_by_design = True  # ...under synchrony (R = 1)

    def __init__(self, station_id: int, n_stations: int) -> None:
        if not 1 <= station_id <= n_stations:
            raise ConfigurationError(
                f"station id {station_id} outside [1, {n_stations}]"
            )
        self.station_id = station_id
        self.n_stations = n_stations
        self.turn = 1
        self.state = "wait"
        self.heard_activity = False
        self._noise_turn = False
        self.stats = TokenRingStats()

    def _advance(self) -> Action:
        self.turn = self.turn % self.n_stations + 1
        self.heard_activity = False
        if self.turn == self.station_id:
            return self._begin_turn_pending()
        self.state = "wait"
        return LISTEN

    def _begin_turn_pending(self) -> Action:
        # In the synchronous protocol the new holder starts in the very
        # next slot after the turn-ending silence; no gap is needed
        # because unit slots are globally aligned.
        self.state = "transmit_pending"
        return LISTEN

    def _begin_transmission(self, queue_size: int) -> Action:
        self.state = "transmit"
        self.stats.turns_taken += 1
        if queue_size > 0:
            self._noise_turn = False
            return TRANSMIT_PACKET
        self._noise_turn = True
        return TRANSMIT_CONTROL

    def first_action(self, ctx: SlotContext) -> Action:
        if self.station_id == 1:
            return self._begin_transmission(ctx.queue_size)
        return LISTEN

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.state == "transmit":
            return self._step_transmit(feedback, ctx.queue_size)
        if self.state == "transmit_pending":
            # The slot between the turn-ending silence and our first
            # transmission: begin immediately.
            return self._begin_transmission(ctx.queue_size)
        if self.state == "wait":
            return self._step_wait(feedback)
        raise ProtocolError(f"MBTFLike in unknown state {self.state!r}")

    def _step_transmit(self, feedback: Feedback, queue_size: int) -> Action:
        if feedback is Feedback.SILENCE:
            raise ProtocolError(
                "silence feedback on a transmitting slot — broken channel model"
            )
        if feedback is Feedback.BUSY:
            self.stats.retries += 1
            return TRANSMIT_CONTROL if self._noise_turn else TRANSMIT_PACKET
        if self._noise_turn:
            self.stats.empty_signals_sent += 1
        else:
            self.stats.packets_sent += 1
            if queue_size > 0:
                return TRANSMIT_PACKET
        # Done; my next slot is silent and advances everyone's token.
        self.state = "wait"
        self.heard_activity = True  # my own burst counts as activity
        return LISTEN

    def _step_wait(self, feedback: Feedback) -> Action:
        if feedback.is_activity:
            self.heard_activity = True
            return LISTEN
        if self.heard_activity:
            return self._advance()
        return LISTEN
