"""SST when the asynchrony bound R is *not* known (open problem, §VII).

The paper asks: "one may assume that the bound R exists but is not
known".  This module implements a guess-and-double scheme on top of
ABS, built around an observation that makes *safety* free:

**First-success lemma.**  On this channel, the first successful
transmission is heard as an acknowledgment by every other station.
Any station overlapping it with a transmission of its own would have
destroyed it; every other station is listening in some slot whose end
lies at/after the success's end, and that slot reports *ack*.  Hence
an algorithm whose stations (a) exit *with winning* on their own ack
and (b) exit *by elimination* on any ack heard while listening can
never produce two winners — **whatever the slot lengths are**.  ABS
already behaves this way; wrong guesses of R therefore threaten only
*liveness* (perpetual collisions/eliminations), never uniqueness.

``DoublingABS`` exploits this: epochs ``e = 0, 1, 2, ...`` run ABS
with guess ``R_e = 2^e``.  A station eliminated *by busy* (election
noise, possibly an artifact of a too-small guess) is not out — it
idles to the end of its epoch's own-slot budget and re-enters with a
doubled guess.  A station eliminated *by ack* is out for good (SST is
already solved), and an acked transmission of one's own is a committed
win.  Once ``R_e >= r``, ABS's own progress argument applies within an
epoch whose contenders it meets, and experiments show success well
before perfect epoch alignment — the budget
``E_e = R_e * abs_slot_upper_bound(n, R_e)`` paces re-entries so that
contender sets thin out geometrically.

Cost of not knowing R: the failed-epoch budgets sum to an
``O(r^3 log n log r)`` worst case versus Theorem 1's
``O(R^2 log n)`` — the extension bench measures the actual ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.bounds import abs_slot_upper_bound
from ..core.errors import ConfigurationError
from ..core.feedback import Feedback
from ..core.station import LISTEN, Action, SlotContext, StationAlgorithm
from .abs_leader import AbsCore


def epoch_guess(epoch: int) -> int:
    """The epoch's asynchrony guess: ``R_e = 2^e`` (epoch 0 is sync)."""
    return 1 << epoch


def epoch_budget(n: int, epoch: int) -> int:
    """Own-slot budget of one epoch.

    ``R_e`` times the ABS(R_e) slot bound: even against competitors
    whose slots are ``R_e`` times longer, the budget outlasts their
    election; plus slack for boundary effects.
    """
    guess = epoch_guess(epoch)
    return guess * abs_slot_upper_bound(n, guess) + 4 * guess + 4


@dataclass(slots=True)
class EpochLog:
    """What happened in one epoch at one station (for the benches)."""

    epoch: int
    guess: int
    outcome: str  # "won" | "eliminated" | "retry" | "timeout"
    slots_spent: int


class DoublingABS(StationAlgorithm):
    """Guess-and-double SST for unknown R.

    Terminal outcomes: ``"won"`` (own transmission acknowledged) or
    ``"eliminated"`` (someone's success was heard).  Eliminations *by
    busy* within an epoch lead to a retry with a doubled guess.

    Args:
        station_id: Unique id in ``[n]``.
        n_stations: ``n`` (epoch budgets depend on it).
        max_epochs: Cap on doubling; a run against an adversary with
            bound ``r`` commits well before guess ``2^max_epochs``.
    """

    uses_control_messages = True

    def __init__(self, station_id: int, n_stations: int, max_epochs: int = 16):
        if n_stations < 1:
            raise ConfigurationError("need at least one station")
        if max_epochs < 1:
            raise ConfigurationError("need at least one epoch")
        self.station_id = station_id
        self.n_stations = n_stations
        self.max_epochs = max_epochs
        self.epoch = 0
        self.slot_in_epoch = 0
        self.core: Optional[AbsCore] = AbsCore(
            station_id=station_id, max_slot_length=epoch_guess(0)
        )
        #: ``None`` while undecided, then "won" or "eliminated" forever.
        self.outcome: Optional[str] = None
        self.history: List[EpochLog] = []

    @property
    def is_done(self) -> bool:
        return self.outcome is not None

    @property
    def total_slots_spent(self) -> int:
        """Own slots consumed across all epochs (the cost metric)."""
        return sum(log.slots_spent for log in self.history) + self.slot_in_epoch

    # ------------------------------------------------------------------

    def _log(self, outcome: str) -> None:
        self.history.append(
            EpochLog(
                epoch=self.epoch,
                guess=epoch_guess(self.epoch),
                outcome=outcome,
                slots_spent=self.slot_in_epoch,
            )
        )

    def _terminate(self, outcome: str) -> Action:
        self._log(outcome)
        self.outcome = outcome
        self.core = None
        return LISTEN

    def _next_epoch(self, reason: str) -> Action:
        self._log(reason)
        self.epoch += 1
        self.slot_in_epoch = 1
        if self.epoch >= self.max_epochs:
            # Refuse to guess further; become a pure listener.  (Exit
            # on a future ack still applies through on_slot_end.)
            self.core = None
            return LISTEN
        self.core = AbsCore(
            station_id=self.station_id,
            max_slot_length=epoch_guess(self.epoch),
        )
        return self.core.start()

    def first_action(self, ctx: SlotContext) -> Action:
        assert self.core is not None
        self.slot_in_epoch = 1
        return self.core.start()

    def on_slot_end(self, ctx: SlotContext) -> Action:
        feedback = self._require_feedback(ctx)
        if self.outcome is not None:
            return LISTEN

        # First-success lemma: any ack heard while not on the air means
        # SST is solved by someone else.  (A transmitting station's own
        # ack is handled through its core below.)
        on_air = (
            self.core is not None
            and not self.core.done
            and self.core.state == "transmitted"
        )
        if feedback is Feedback.ACK and not on_air:
            return self._terminate("eliminated")

        self.slot_in_epoch += 1
        if self.core is None or self.core.done:
            # Benched until the epoch budget runs out (or cap reached).
            if self.epoch >= self.max_epochs:
                return LISTEN
            if self.slot_in_epoch >= epoch_budget(self.n_stations, self.epoch):
                return self._next_epoch("retry")
            return LISTEN

        action = self.core.step(feedback)
        if action is not None:
            if self.slot_in_epoch >= epoch_budget(self.n_stations, self.epoch):
                # Budget exhausted mid-election: abandon and re-guess.
                return self._next_epoch("timeout")
            return action
        if self.core.outcome == "won":
            return self._terminate("won")
        if self.core.eliminated_by_ack:
            return self._terminate("eliminated")
        # Eliminated by busy: keep listening out the budget, then retry
        # with a doubled guess.
        return LISTEN
