"""Decorator-based registries for the declarative scenario layer.

A scenario names its moving parts — algorithm fleet, slot adversary,
arrival source, fault injectors — and each name resolves through one of
four registries.  Adding a new algorithm family or adversary to every
consumer (CLI, grids, benches, bundled scenario files) is then a
one-entry change::

    from repro.scenarios import ALGORITHMS

    @ALGORITHMS.register("my-protocol", kind="dynamic", family="mine",
                         summary="my shiny protocol")
    def _build(spec):
        return {i: MyProtocol(i, spec.n, spec.max_slot)
                for i in range(1, spec.n + 1)}

Builders receive the full :class:`~repro.scenarios.spec.ScenarioSpec`
(so they can read ``n``, ``max_slot``, ``seed``, …); schedule/source/
fault builders additionally receive the declared JSON parameters.
Lookup failures raise :class:`~repro.core.errors.ConfigurationError`
naming the offending field and listing what *is* registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..core.errors import ConfigurationError

__all__ = [
    "Registry",
    "RegistryEntry",
    "ALGORITHMS",
    "SCHEDULES",
    "SOURCES",
    "FAULTS",
]


@dataclass(frozen=True, slots=True)
class RegistryEntry:
    """One named builder plus its descriptive metadata."""

    name: str
    builder: Callable[..., Any]
    #: Free-form facts (``kind``, ``family``, ``summary``, …).
    meta: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        summary = self.meta.get("summary", "")
        return f"{self.name:<18} {summary}" if summary else self.name


class Registry:
    """A named collection of builders with decorator registration.

    >>> demo = Registry("demo")
    >>> @demo.register("answer", summary="the answer")
    ... def _build():
    ...     return 42
    >>> demo.get("answer").builder()
    42
    >>> "answer" in demo and demo.names() == ["answer"]
    True
    """

    def __init__(self, field_name: str) -> None:
        #: The ScenarioSpec field this registry resolves (used in errors).
        self.field_name = field_name
        self._entries: Dict[str, RegistryEntry] = {}

    def register(
        self, name: str, *, replace: bool = False, **meta: Any
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form of :meth:`add`; returns the builder unchanged."""

        def decorate(builder: Callable[..., Any]) -> Callable[..., Any]:
            self.add(name, builder, replace=replace, **meta)
            return builder

        return decorate

    def add(
        self,
        name: str,
        builder: Callable[..., Any],
        *,
        replace: bool = False,
        **meta: Any,
    ) -> RegistryEntry:
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"{self.field_name}: registry names must be non-empty strings, "
                f"got {name!r}"
            )
        if name in self._entries and not replace:
            raise ConfigurationError(
                f"{self.field_name}: {name!r} is already registered "
                "(pass replace=True to override)"
            )
        entry = RegistryEntry(name=name, builder=builder, meta=dict(meta))
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> RegistryEntry:
        """The entry for ``name``; a clear error naming the field otherwise."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.field_name}: unknown name {name!r} "
                f"(registered: {' | '.join(self.names()) or '<none>'})"
            ) from None

    def names(self, **want_meta: Any) -> List[str]:
        """Sorted names, optionally filtered by metadata equality."""
        return sorted(
            name
            for name, entry in self._entries.items()
            if all(entry.meta.get(k) == v for k, v in want_meta.items())
        )

    def entries(self) -> Iterator[RegistryEntry]:
        for name in self.names():
            yield self._entries[name]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: Algorithm fleets: ``builder(spec) -> Dict[int, StationAlgorithm]``.
ALGORITHMS = Registry("algorithm")

#: Slot adversaries: ``builder(spec, **params) -> SlotAdversary``.
SCHEDULES = Registry("schedule")

#: Arrival sources: ``builder(spec, **params) -> ArrivalSource | None``.
SOURCES = Registry("source")

#: Fault injectors: ``builder(spec, fleet, entries) -> fleet`` where
#: ``entries`` is the list of fault dicts of that kind, in spec order.
FAULTS = Registry("faults")
