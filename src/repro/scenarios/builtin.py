"""Seed the scenario registries with everything the repo ships.

Importing :mod:`repro.scenarios` imports this module, so every bundled
algorithm fleet, slot adversary, arrival source and fault injector is
addressable by name out of the box.  Each builder reproduces, exactly,
the construction the CLI and benches used to hand-wire — bit-for-bit
parity with the pre-scenario call sites is load-bearing (the golden
tests in ``tests/test_golden_parity.py`` pin it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..algorithms import (
    ABSLeaderElection,
    AOArrow,
    CAArrow,
    DoublingABS,
    FaultTolerantCAArrow,
    MBTFLike,
    NaiveTDMA,
    RandomizedSST,
    RRW,
    SlottedAloha,
)
from ..arrivals import BurstyRate, PoissonLike, UniformRate
from ..core.errors import ConfigurationError
from ..faults import PeriodicJammer, ReactiveJammer, crash_fleet
from ..timing import (
    CyclicPattern,
    FixedLength,
    PerStationFixed,
    RandomUniform,
    Synchronous,
    worst_case_for,
)
from .registry import ALGORITHMS, FAULTS, SCHEDULES, SOURCES

__all__: List[str] = []


def _ids(spec) -> List[int]:
    return list(range(1, spec.n + 1))


# -- algorithm fleets ---------------------------------------------------
# kind="dynamic" fleets transmit queued packets (the stability setting);
# kind="sst" fleets solve single-successful-transmission / election.

@ALGORITHMS.register("ao-arrow", kind="dynamic", family="ao-arrow",
                     summary="AO-ARRoW (Thm 3): stable, no control messages")
def _ao_arrow(spec) -> Dict[int, Any]:
    return {i: AOArrow(i, spec.n, spec.max_slot) for i in _ids(spec)}


@ALGORITHMS.register("ca-arrow", kind="dynamic", family="ca-arrow",
                     summary="CA-ARRoW (Thm 6): stable, collision-free")
def _ca_arrow(spec) -> Dict[int, Any]:
    return {i: CAArrow(i, spec.n, spec.max_slot) for i in _ids(spec)}


@ALGORITHMS.register("ca-arrow-ft", kind="dynamic", family="ca-arrow-ft",
                     summary="fault-tolerant CA-ARRoW (survives crashes)")
def _ca_arrow_ft(spec) -> Dict[int, Any]:
    return {i: FaultTolerantCAArrow(i, spec.n, spec.max_slot) for i in _ids(spec)}


@ALGORITHMS.register("rrw", kind="dynamic", family="rrw",
                     summary="round-robin-withholding synchronous baseline")
def _rrw(spec) -> Dict[int, Any]:
    return {i: RRW(i, spec.n) for i in _ids(spec)}


@ALGORITHMS.register("mbtf", kind="dynamic", family="mbtf",
                     summary="move-big-to-front-like token ring baseline")
def _mbtf(spec) -> Dict[int, Any]:
    return {i: MBTFLike(i, spec.n) for i in _ids(spec)}


@ALGORITHMS.register("tdma", kind="dynamic", family="tdma",
                     summary="naive TDMA (breaks under asynchrony)")
def _tdma(spec) -> Dict[int, Any]:
    return {i: NaiveTDMA(i, spec.n) for i in _ids(spec)}


@ALGORITHMS.register("aloha", kind="dynamic", family="aloha",
                     summary="slotted Aloha at p = 1/n (randomized reference)")
def _aloha(spec) -> Dict[int, Any]:
    return {
        i: SlottedAloha(i, transmit_probability=1 / spec.n, seed=spec.seed)
        for i in _ids(spec)
    }


@ALGORITHMS.register("abs", kind="sst", family="abs",
                     summary="ABS leader election (Thm 1, knows R)")
def _abs(spec) -> Dict[int, Any]:
    return {i: ABSLeaderElection(i, spec.max_slot) for i in _ids(spec)}


@ALGORITHMS.register("doubling", kind="sst", family="abs",
                     summary="guess-and-double ABS (R unknown)")
def _doubling(spec) -> Dict[int, Any]:
    return {i: DoublingABS(i, spec.n) for i in _ids(spec)}


@ALGORITHMS.register("randomized", kind="sst", family="randomized",
                     summary="coin-flipping SST at p = 1/n")
def _randomized(spec) -> Dict[int, Any]:
    return {
        i: RandomizedSST(i, transmit_probability=1 / spec.n, seed=spec.seed)
        for i in _ids(spec)
    }


# -- slot adversaries ---------------------------------------------------

@SCHEDULES.register("sync", summary="every slot has length 1 (R irrelevant)")
def _sync(spec):
    return Synchronous()


@SCHEDULES.register("worst", summary="coprime-ish cyclic worst case for R")
def _worst(spec):
    return worst_case_for(spec.max_slot)


@SCHEDULES.register("random", summary="iid uniform rational lengths in [1, R]")
def _random(spec, denominator: int = 8):
    return RandomUniform(spec.max_slot, seed=spec.seed, denominator=denominator)


@SCHEDULES.register("fixed", summary="every slot the same length r <= R")
def _fixed(spec, length):
    return FixedLength(length)


@SCHEDULES.register("per-station-fixed",
                    summary="constant per-station speeds (linear drift)")
def _per_station_fixed(spec, lengths: Mapping[str, Any]):
    return PerStationFixed({int(sid): value for sid, value in lengths.items()})


@SCHEDULES.register("cyclic", summary="explicit per-station length patterns")
def _cyclic(spec, patterns: Mapping[str, Any]):
    return CyclicPattern({int(sid): value for sid, value in patterns.items()})


# -- arrival sources ----------------------------------------------------

def _require_rho(spec, source_name: str):
    if spec.rho is None:
        raise ConfigurationError(
            f"rho: source {source_name!r} needs an injection rate, "
            "but the spec has rho = null"
        )
    return spec.rho


@SOURCES.register("none", summary="no arrivals (the SST setting)")
def _none(spec):
    return None


@SOURCES.register("uniform", summary="evenly spaced injections at rate rho")
def _uniform(spec, targets=None, assumed_cost=None, start=0, limit=None):
    return UniformRate(
        rho=_require_rho(spec, "uniform"),
        targets=list(targets) if targets is not None else _ids(spec),
        assumed_cost=assumed_cost if assumed_cost is not None else spec.max_slot,
        start=start,
        limit=limit,
    )


@SOURCES.register("bursty", summary="periodic bursts of `burst` packets")
def _bursty(spec, targets=None, assumed_cost=None, start=0, limit=None):
    return BurstyRate(
        rho=_require_rho(spec, "bursty"),
        burst_size=spec.burst,
        targets=list(targets) if targets is not None else _ids(spec),
        assumed_cost=assumed_cost if assumed_cost is not None else spec.max_slot,
        start=start,
        limit=limit,
    )


@SOURCES.register("poisson", summary="admissibility-clamped random gaps")
def _poisson(spec, burstiness=None, targets=None, assumed_cost=None,
             start=0, limit=None, denominator: int = 16):
    cost = assumed_cost if assumed_cost is not None else spec.max_slot
    return PoissonLike(
        rho=_require_rho(spec, "poisson"),
        burstiness=burstiness if burstiness is not None else spec.burst * cost,
        targets=list(targets) if targets is not None else _ids(spec),
        assumed_cost=cost,
        seed=spec.seed,
        start=start,
        limit=limit,
        denominator=denominator,
    )


# -- fault injectors ----------------------------------------------------
# A builder receives every entry of its kind at once (in spec order) so
# e.g. all crashes land in a single `crash_fleet` wrap.

@FAULTS.register("crash", summary="fail-stop crash: station <s> at slot <t>")
def _crash(spec, fleet, entries):
    crashes: Dict[int, int] = {}
    for entry in entries:
        try:
            station = int(entry["station"])
            at_slot = int(entry["at_slot"])
        except KeyError as exc:
            raise ConfigurationError(
                f"faults: crash entry {dict(entry)!r} is missing {exc}"
            ) from None
        crashes[station] = at_slot
    return crash_fleet(fleet, crashes)


def _jammer_station(spec, fleet, entry) -> int:
    station = entry.get("station")
    if station is None:
        return max(fleet) + 1
    station = int(station)
    if station in fleet:
        raise ConfigurationError(
            f"faults: jammer station {station} collides with an existing station"
        )
    return station


@FAULTS.register("jam-periodic",
                 summary="duty-cycle jammer: <burst> of every <period> slots")
def _jam_periodic(spec, fleet, entries):
    fleet = dict(fleet)
    for entry in entries:
        try:
            burst = int(entry["burst"])
            period = int(entry["period"])
        except KeyError as exc:
            raise ConfigurationError(
                f"faults: jam-periodic entry {dict(entry)!r} is missing {exc}"
            ) from None
        jammer = PeriodicJammer(
            burst=burst, period=period, budget=int(entry.get("budget", 10**9))
        )
        fleet[_jammer_station(spec, fleet, entry)] = jammer
    return fleet


@FAULTS.register("jam-reactive",
                 summary="carrier-sensing jammer: <burst> slots after activity")
def _jam_reactive(spec, fleet, entries):
    fleet = dict(fleet)
    for entry in entries:
        try:
            burst = int(entry["burst"])
        except KeyError as exc:
            raise ConfigurationError(
                f"faults: jam-reactive entry {dict(entry)!r} is missing {exc}"
            ) from None
        jammer = ReactiveJammer(
            burst=burst,
            budget=int(entry.get("budget", 10**9)),
            cooldown=int(entry.get("cooldown", 0)),
        )
        fleet[_jammer_station(spec, fleet, entry)] = jammer
    return fleet
