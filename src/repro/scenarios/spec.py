"""The frozen, JSON-serializable description of one simulation run.

The paper's model is a small tuple — stations ``[n]``, bound ``R``, a
slot adversary, an arrival process at rate ``rho`` — and a
:class:`ScenarioSpec` is exactly that tuple as *data*: every field is
JSON-representable, every name resolves through a
:mod:`~repro.scenarios.registry`, and ``build()`` turns the spec into a
ready :class:`~repro.core.simulator.Simulator`.  Because a spec is
data, it can

* cross a process boundary without pickling closures,
* key the :mod:`repro.exec` result cache by canonical JSON (cosmetic
  edits to calling code no longer invalidate cached results),
* ride inside a run artifact's manifest so any saved run is replayable
  with ``repro scenario run``, and
* live in a ``scenarios/*.json`` file next to the repo.

Validation is strict and eager: unknown JSON keys, ``R < 1``,
``rho >= 1`` and unregistered names all raise
:class:`~repro.core.errors.ConfigurationError` naming the offending
field.

>>> spec = ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2", horizon=800)
>>> ScenarioSpec.from_json(spec.to_json()) == spec
True
>>> sim = spec.build()
>>> _ = sim.run(until_time=spec.horizon)
>>> sim.channel.stats.collisions
0
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigurationError
from ..core.simulator import Simulator
from ..core.timebase import TimeLike, as_time
from .registry import ALGORITHMS, FAULTS, SCHEDULES, SOURCES

__all__ = ["SCHEMA_VERSION", "ScenarioSpec", "load_spec"]

#: Bump when the JSON field set changes shape.
SCHEMA_VERSION = 1

#: Every key accepted by :meth:`ScenarioSpec.from_json`.
_JSON_KEYS = (
    "scenario",
    "name",
    "algorithm",
    "n",
    "max_slot",
    "schedule",
    "rho",
    "burst",
    "source",
    "horizon",
    "seed",
    "faults",
    "labels",
)


def _canon_params(value: Any, where: str) -> Any:
    """Canonicalize a parameter tree to JSON-native values.

    Fractions become fraction strings; mappings get string keys and
    sorted order; sequences become lists.  The result round-trips
    through JSON unchanged, which is what makes
    ``from_json(to_json(s)) == s`` hold for every valid spec.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, Mapping):
        return {
            str(key): _canon_params(item, where)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canon_params(item, where) for item in value]
    raise ConfigurationError(
        f"{where}: {value!r} is not JSON-representable"
    )


def _canon_named(
    value: Union[str, Mapping[str, Any]], field_name: str
) -> Dict[str, Any]:
    """Canonicalize a ``name-or-dict`` field to its dict form."""
    if isinstance(value, str):
        return {"name": value}
    if isinstance(value, Mapping):
        if "name" not in value:
            raise ConfigurationError(
                f"{field_name}: missing 'name' in {dict(value)!r}"
            )
        if not isinstance(value["name"], str):
            raise ConfigurationError(
                f"{field_name}: 'name' must be a string, got {value['name']!r}"
            )
        return _canon_params(dict(value), field_name)
    raise ConfigurationError(
        f"{field_name}: expected a name or a mapping, got {value!r}"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified run of the paper's model, as plain data.

    Args:
        algorithm: Registered fleet name (see ``ALGORITHMS.names()``).
        n: Number of stations (the paper's ``[n]``).
        max_slot: The asynchrony bound ``R`` (slot lengths live in
            ``[1, R]``); anything :func:`~repro.core.timebase.as_time`
            accepts.
        schedule: Slot-adversary name or ``{"name": ..., **params}``.
        rho: Injection rate in ``(0, 1)``, or ``None`` for no arrivals
            (the SST setting).
        burst: Packets per burst; ``1`` means evenly spaced arrivals.
        source: Optional explicit arrival-source name/dict; ``None``
            picks ``uniform``/``bursty`` from ``burst``.
        horizon: Default run length for ``build()``-and-run consumers.
        seed: Seed for randomized fleets/schedules/sources.
        faults: Fault-injection entries, each
            ``{"kind": <registered>, **params}``.
        labels: Free-form strings copied into results and artifacts.
        name: Display name; derived from algorithm/rho when empty.
    """

    algorithm: str
    n: int
    max_slot: TimeLike = Fraction(2)
    schedule: Union[str, Mapping[str, Any]] = "worst"
    rho: Optional[TimeLike] = None
    burst: int = 1
    source: Optional[Union[str, Mapping[str, Any]]] = None
    horizon: TimeLike = Fraction(5000)
    seed: int = 0
    faults: Sequence[Mapping[str, Any]] = ()
    labels: Mapping[str, str] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise ConfigurationError(
                f"algorithm: expected a registered name, got {self.algorithm!r}"
            )
        ALGORITHMS.get(self.algorithm)  # unregistered -> clear error
        if not isinstance(self.n, int) or isinstance(self.n, bool) or self.n < 1:
            raise ConfigurationError(f"n: must be an integer >= 1, got {self.n!r}")
        try:
            set_(self, "max_slot", as_time(self.max_slot))
        except (ValueError, ZeroDivisionError, ConfigurationError) as exc:
            raise ConfigurationError(f"max_slot: {exc}") from None
        if self.max_slot < 1:
            raise ConfigurationError(
                f"max_slot: the bound R must be >= 1, got {self.max_slot}"
            )
        set_(self, "schedule", _canon_named(self.schedule, "schedule"))
        SCHEDULES.get(self.schedule["name"])
        if self.rho is not None:
            try:
                set_(self, "rho", as_time(self.rho))
            except (ValueError, ZeroDivisionError, ConfigurationError) as exc:
                raise ConfigurationError(f"rho: {exc}") from None
            if self.rho <= 0:
                raise ConfigurationError(f"rho: must be > 0, got {self.rho}")
            if self.rho >= 1:
                raise ConfigurationError(
                    f"rho: no algorithm is stable at rho >= 1 (Theorem 5); "
                    f"got {self.rho}"
                )
        if (
            not isinstance(self.burst, int)
            or isinstance(self.burst, bool)
            or self.burst < 1
        ):
            raise ConfigurationError(
                f"burst: must be an integer >= 1, got {self.burst!r}"
            )
        if self.source is not None:
            set_(self, "source", _canon_named(self.source, "source"))
            SOURCES.get(self.source["name"])
        try:
            set_(self, "horizon", as_time(self.horizon))
        except (ValueError, ZeroDivisionError, ConfigurationError) as exc:
            raise ConfigurationError(f"horizon: {exc}") from None
        if self.horizon <= 0:
            raise ConfigurationError(
                f"horizon: must be > 0, got {self.horizon}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(f"seed: must be an integer, got {self.seed!r}")
        faults: List[Dict[str, Any]] = []
        for index, entry in enumerate(self.faults):
            where = f"faults[{index}]"
            if not isinstance(entry, Mapping):
                raise ConfigurationError(
                    f"{where}: expected a mapping with a 'kind', got {entry!r}"
                )
            if "kind" not in entry:
                raise ConfigurationError(f"{where}: missing 'kind'")
            kind = entry["kind"]
            if not isinstance(kind, str):
                raise ConfigurationError(
                    f"{where}.kind: must be a string, got {kind!r}"
                )
            FAULTS.get(kind)
            faults.append(_canon_params(dict(entry), where))
        set_(self, "faults", tuple(faults))
        if not isinstance(self.labels, Mapping):
            raise ConfigurationError(
                f"labels: expected a mapping of strings, got {self.labels!r}"
            )
        labels = {}
        for key, value in self.labels.items():
            if not isinstance(key, str) or not isinstance(value, str):
                raise ConfigurationError(
                    f"labels: keys and values must be strings, "
                    f"got {key!r}: {value!r}"
                )
            labels[key] = value
        set_(self, "labels", labels)
        if not isinstance(self.name, str):
            raise ConfigurationError(f"name: must be a string, got {self.name!r}")
        if not self.name:
            derived = (
                self.algorithm
                if self.rho is None
                else f"{self.algorithm}@rho={self.rho}"
            )
            set_(self, "name", derived)

    # -- serialization --------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """The canonical JSON-native form (stable across processes).

        This exact dictionary is what ``to_json`` writes, what run
        manifests embed, and what the :mod:`repro.exec` cache hashes
        for spec-backed tasks.
        """
        return {
            "scenario": SCHEMA_VERSION,
            "name": self.name,
            "algorithm": self.algorithm,
            "n": self.n,
            "max_slot": str(self.max_slot),
            "schedule": self.schedule,
            "rho": None if self.rho is None else str(self.rho),
            "burst": self.burst,
            "source": self.source,
            "horizon": str(self.horizon),
            "seed": self.seed,
            "faults": list(self.faults),
            "labels": dict(self.labels),
        }

    def __cache_form__(self) -> Dict[str, Any]:
        """Hook consumed by :func:`repro.exec.cache.fingerprint`."""
        return {"scenario-spec": self.canonical()}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.canonical(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(
        cls, document: Union[str, bytes, Mapping[str, Any]]
    ) -> "ScenarioSpec":
        """Parse and strictly validate a spec document.

        ``document`` may be JSON text or an already-parsed mapping.
        Unknown keys are rejected by name so a typo (``"rbo"``) cannot
        silently fall back to a default.
        """
        if isinstance(document, (str, bytes)):
            try:
                document = json.loads(document)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"scenario JSON is malformed: {exc}") from None
        if not isinstance(document, Mapping):
            raise ConfigurationError(
                f"scenario document must be a JSON object, got {document!r}"
            )
        unknown = sorted(set(document) - set(_JSON_KEYS))
        if unknown:
            raise ConfigurationError(
                f"unknown scenario key(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(_JSON_KEYS)})"
            )
        version = document.get("scenario", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"scenario: unsupported schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        for required in ("algorithm", "n"):
            if required not in document:
                raise ConfigurationError(f"{required}: required key is missing")
        kwargs: Dict[str, Any] = {
            "algorithm": document["algorithm"],
            "n": document["n"],
        }
        for key in ("name", "max_slot", "schedule", "rho", "burst", "source",
                    "horizon", "seed", "faults", "labels"):
            if key in document and document[key] is not None:
                kwargs[key] = document[key]
        return cls(**kwargs)

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy with ``changes`` applied (re-validated from scratch)."""
        return dataclasses.replace(self, **changes)

    # -- construction ---------------------------------------------------

    def build_fleet(self) -> Dict[int, Any]:
        """The station algorithms, with every fault entry applied."""
        fleet = ALGORITHMS.get(self.algorithm).builder(self)
        by_kind: Dict[str, List[Mapping[str, Any]]] = {}
        for entry in self.faults:
            by_kind.setdefault(entry["kind"], []).append(entry)
        for kind, entries in by_kind.items():
            fleet = FAULTS.get(kind).builder(self, fleet, entries)
        return fleet

    def build_schedule(self) -> Any:
        """The slot adversary."""
        entry = SCHEDULES.get(self.schedule["name"])
        params = {k: v for k, v in self.schedule.items() if k != "name"}
        try:
            return entry.builder(self, **params)
        except TypeError as exc:
            raise ConfigurationError(
                f"schedule: {self.schedule['name']!r} rejected its "
                f"parameters: {exc}"
            ) from None

    def build_source(self) -> Optional[Any]:
        """The arrival source (``None`` when ``rho`` is ``None``)."""
        if self.source is not None:
            entry = SOURCES.get(self.source["name"])
            params = {k: v for k, v in self.source.items() if k != "name"}
            try:
                return entry.builder(self, **params)
            except TypeError as exc:
                raise ConfigurationError(
                    f"source: {self.source['name']!r} rejected its "
                    f"parameters: {exc}"
                ) from None
        if self.rho is None:
            return None
        name = "bursty" if self.burst > 1 else "uniform"
        return SOURCES.get(name).builder(self)

    def build(
        self,
        *,
        initial_packets: int = 0,
        trace: Optional[Any] = None,
        keep_channel_history: bool = False,
        probes: Optional[Any] = None,
        profiler: Optional[Any] = None,
        timebase: Any = "auto",
        engine: str = "auto",
    ) -> Simulator:
        """A ready :class:`~repro.core.simulator.Simulator` for this spec.

        ``timebase`` selects the simulator's internal time
        representation (``"auto"`` / ``"lattice"`` / ``"fraction"`` or
        an adapter instance) and ``engine`` the run loop
        (``"auto"`` / ``"batch"`` / ``"object"``).  Both are *run*
        options, not part of the spec: the observable execution is
        bit-for-bit identical either way, so they never participate in
        serialization or cache keys.
        """
        return Simulator(
            self.build_fleet(),
            self.build_schedule(),
            max_slot_length=self.max_slot,
            arrival_source=self.build_source(),
            initial_packets=initial_packets,
            trace=trace,
            keep_channel_history=keep_channel_history,
            probes=probes,
            profiler=profiler,
            timebase=timebase,
            engine=engine,
        )

    def to_cell(
        self,
        *,
        name: Optional[str] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        """This spec as a grid :class:`~repro.analysis.ExperimentCell`."""
        from ..analysis.experiments import ExperimentCell

        return ExperimentCell.from_spec(self, name=name, labels=labels)

    def schedule_display(self) -> str:
        """Compact human form of the schedule (``worst``, ``fixed{...}``)."""
        params = {k: v for k, v in self.schedule.items() if k != "name"}
        if not params:
            return self.schedule["name"]
        rendered = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        return f"{self.schedule['name']}[{rendered}]"


def load_spec(path: Union[str, pathlib.Path]) -> ScenarioSpec:
    """Load a spec from a ``.json`` file *or* a JSONL run artifact.

    Run artifacts written by ``repro run --emit-jsonl`` embed the spec
    in their manifest, so any saved run replays with
    ``repro scenario run <artifact>``.
    """
    resolved = pathlib.Path(path)
    try:
        text = resolved.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read {str(resolved)!r}: {exc}") from None
    first_line = text.lstrip().split("\n", 1)[0]
    try:
        probe = json.loads(first_line)
    except json.JSONDecodeError:
        probe = None
    if isinstance(probe, Mapping) and probe.get("type") == "manifest":
        embedded = probe.get("spec") or (probe.get("config") or {}).get("spec")
        if embedded is None:
            raise ConfigurationError(
                f"{str(resolved)!r} is a run artifact without an embedded "
                "scenario spec (written before the scenario layer?)"
            )
        return ScenarioSpec.from_json(embedded)
    return ScenarioSpec.from_json(text)
