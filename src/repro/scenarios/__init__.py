"""Declarative scenarios: registries + serializable run specifications.

The model of the paper is a tuple — stations ``[n]``, bound ``R``, a
slot adversary, an arrival process at rate ``rho`` — and this package
makes that tuple *data* instead of hand-wired closures:

* :class:`ScenarioSpec` — a frozen, strictly-validated, JSON-round-
  trippable description of one run, with ``build()`` producing a ready
  :class:`~repro.core.simulator.Simulator`;
* :data:`ALGORITHMS` / :data:`SCHEDULES` / :data:`SOURCES` /
  :data:`FAULTS` — decorator-based registries resolving every name a
  spec uses (seeded with everything the repo ships; one decorator adds
  a new family everywhere at once);
* :func:`load_spec` — read a spec from a ``scenarios/*.json`` file or
  straight out of a JSONL run artifact's manifest.

Every run-construction path — ``repro run``/``grid``/``sst``, the
Theorem 3/6 grid benches, the ablation and extension benches, bundled
``scenarios/*.json`` files — goes through this layer, and the
:mod:`repro.exec` cache keys spec-backed tasks by the spec's canonical
JSON (see ``docs/scenarios.md``).

>>> spec = ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2", horizon=600)
>>> sim = spec.build()
>>> _ = sim.run(until_time=spec.horizon)
>>> sim.channel.stats.collisions
0
>>> ScenarioSpec.from_json(spec.to_json()) == spec
True
"""

from .registry import ALGORITHMS, FAULTS, SCHEDULES, SOURCES, Registry, RegistryEntry
from .spec import SCHEMA_VERSION, ScenarioSpec, load_spec
from . import builtin as _builtin  # noqa: F401  (seeds the registries)

__all__ = [
    "ALGORITHMS",
    "FAULTS",
    "Registry",
    "RegistryEntry",
    "SCHEDULES",
    "SCHEMA_VERSION",
    "SOURCES",
    "ScenarioSpec",
    "load_spec",
]
