"""Content-addressed result cache for experiment cells and sweep samples.

Re-running an unchanged grid should cost nothing.  Each task (one
experiment cell, one seed sample) is keyed by a SHA-256 over its
*canonicalized* configuration — algorithm factories, adversary, rate,
horizon, seed, backlog stride — plus a **code-version salt**: a hash
of every ``repro`` source file.  Any change to the package's code, or
to any knob that could change the simulation, changes the key; the old
entries simply stop being addressed (content addressing *is* the
invalidation rule).  Explicit invalidation is still available via
:meth:`ResultCache.invalidate` / :meth:`ResultCache.clear` and the
``repro cache clear`` CLI, and every consumer exposes a ``--no-cache``
escape hatch.

Entries are pickled (protocol-highest) under ``.repro-cache/`` —
pickle, not JSON, because results carry exact
:class:`~fractions.Fraction` values that must round-trip losslessly::

    .repro-cache/
      ab/abcdef0123....pkl      # two-level fan-out by key prefix

Fingerprinting callables: factories are usually lambdas closing over
plain values (``n``, ``R``, ``"1/2"``).  A function is fingerprinted
by its qualified name, bytecode, constants, default arguments, and the
values in its closure (recursively).  Anything whose identity cannot
be captured stably — an object whose ``repr`` embeds a memory address,
an open file — raises :class:`UncacheableValue`; callers treat that
task as simply not cacheable and execute it every time.

Canonical-form fast path: an object exposing ``__cache_form__()`` (a
method returning a JSON-native description of everything behavior-
relevant) is keyed by that form instead of any bytecode walking.
:class:`repro.scenarios.ScenarioSpec` uses this, so spec-backed grid
cells keep their cache keys across cosmetic edits to the closures and
modules around them — and the key is identical whether the spec was
built in Python or parsed from a ``scenarios/*.json`` file.

Crash and concurrency hardening (see ``docs/robustness.md``): entries
are written scratch-file-then-rename (atomic on POSIX) under a
process-unique scratch name (pid + a monotonic counter — two
processes can never collide the way the old ``id(self)`` naming
could), writers serialize on an advisory ``fcntl`` file lock, and
every entry carries its own SHA-256 digest so a torn write is
*detected*, not deserialized: ``get`` treats it as a miss and drops
it, and :meth:`ResultCache.verify` (``repro cache verify``) re-hashes
every entry and quarantines the corrupt ones.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
import os
import pickle
import shutil
import types
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

try:  # Advisory inter-process locking is POSIX-only; degrade quietly.
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

from ..obs.tracing import current_tracer

__all__ = [
    "MISS",
    "CacheVerification",
    "ResultCache",
    "UncacheableValue",
    "canonical_key",
    "code_salt",
    "fingerprint",
]


class UncacheableValue(ValueError):
    """A value whose content cannot be fingerprinted stably."""


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cache MISS>"


MISS = _Miss()


def _code_fingerprint(code: types.CodeType) -> Dict[str, Any]:
    """Stable content description of a code object (recursive)."""
    return {
        "name": code.co_name,
        "bytecode": hashlib.sha256(code.co_code).hexdigest(),
        "consts": [
            _code_fingerprint(const)
            if isinstance(const, types.CodeType)
            else fingerprint(const)
            for const in code.co_consts
        ],
        "names": list(code.co_names),
    }


def _function_fingerprint(fn: types.FunctionType) -> Dict[str, Any]:
    closure = [
        fingerprint(cell.cell_contents) for cell in (fn.__closure__ or ())
    ]
    return {
        "kind": "function",
        "module": fn.__module__,
        "qualname": fn.__qualname__,
        "code": _code_fingerprint(fn.__code__),
        "closure": closure,
        "defaults": fingerprint(fn.__defaults__),
        "kwdefaults": fingerprint(fn.__kwdefaults__),
    }


def fingerprint(value: Any) -> Any:
    """Canonical, JSON-serializable content description of ``value``.

    Equal configurations map to equal fingerprints across processes
    and runs; configurations that differ in any behavior-relevant way
    map to different ones.  Raises :class:`UncacheableValue` when no
    stable description exists.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    form = getattr(value, "__cache_form__", None)
    if form is not None and callable(form):
        # The canonical-form fast path: objects (notably
        # repro.scenarios.ScenarioSpec) that know their own stable JSON
        # identity are keyed by it directly — no bytecode walking, so
        # cosmetic edits to calling code cannot change the key.
        return {
            "kind": "cache-form",
            "class": f"{type(value).__module__}.{type(value).__qualname__}",
            "form": fingerprint(form()),
        }
    if isinstance(value, float):
        return {"float": repr(value)}
    if isinstance(value, Fraction):
        return {"fraction": str(value)}
    if isinstance(value, bytes):
        return {"bytes": hashlib.sha256(value).hexdigest()}
    if isinstance(value, (list, tuple)):
        return [fingerprint(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"set": sorted(json.dumps(fingerprint(v), sort_keys=True) for v in value)}
    if isinstance(value, Mapping):
        return {
            "mapping": {
                json.dumps(fingerprint(k), sort_keys=True): fingerprint(v)
                for k, v in value.items()
            }
        }
    if isinstance(value, functools.partial):
        return {
            "kind": "partial",
            "func": fingerprint(value.func),
            "args": fingerprint(value.args),
            "keywords": fingerprint(value.keywords),
        }
    if isinstance(value, types.FunctionType):  # includes lambdas & closures
        return _function_fingerprint(value)
    if isinstance(value, types.MethodType):
        return {
            "kind": "method",
            "func": _function_fingerprint(value.__func__),
            "self": fingerprint(value.__self__),
        }
    if isinstance(value, type):
        return {"kind": "class", "module": value.__module__, "qualname": value.__qualname__}
    if isinstance(value, types.BuiltinFunctionType):
        return {"kind": "builtin", "module": value.__module__, "name": value.__qualname__}
    # Arbitrary instances: their attribute dict, when they have one,
    # plus the class identity; otherwise a repr that must be stable.
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "kind": "instance",
            "class": f"{type(value).__module__}.{type(value).__qualname__}",
            "state": fingerprint(state),
        }
    text = repr(value)
    if " at 0x" in text or "object at" in text:
        raise UncacheableValue(
            f"cannot fingerprint {type(value).__qualname__}: repr embeds identity"
        )
    return {"kind": "repr", "class": type(value).__qualname__, "text": text}


def canonical_key(payload: Mapping[str, Any], salt: str = "") -> str:
    """SHA-256 hex digest of a canonicalized payload (plus a salt)."""
    document = {"salt": salt, "payload": fingerprint(payload)}
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


_CODE_SALT: Optional[str] = None


def code_salt() -> str:
    """Hash of every ``repro`` source file — the code-version salt.

    Computed once per process.  Because the salt is folded into every
    cache key, editing any module under ``src/repro/`` atomically
    invalidates the entire cache: stale results are never addressed
    again.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_SALT = digest.hexdigest()
    return _CODE_SALT


#: Entry format marker; bumping it orphans (never mis-reads) old entries.
_ENTRY_MAGIC = b"repro-cache-1 "

#: Scratch files are unique per (process, put): pid + monotonic counter.
_SCRATCH_COUNTER = itertools.count()


def _encode_entry(value: Any) -> bytes:
    """Self-verifying on-disk form: magic + SHA-256(payload) + payload."""
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest().encode("ascii")
    return _ENTRY_MAGIC + digest + b"\n" + blob


def _decode_entry(data: bytes) -> Any:
    """Inverse of :func:`_encode_entry`; raises ``ValueError`` on damage."""
    if not data.startswith(_ENTRY_MAGIC):
        raise ValueError("not a repro cache entry (bad magic)")
    header, newline, blob = data.partition(b"\n")
    if not newline:
        raise ValueError("truncated cache entry (no payload)")
    digest = header[len(_ENTRY_MAGIC):].decode("ascii", "replace")
    if hashlib.sha256(blob).hexdigest() != digest:
        raise ValueError("cache entry digest mismatch (torn write?)")
    return pickle.loads(blob)


class _CacheLock:
    """Advisory inter-process lock on ``<root>/.lock`` (``fcntl.flock``).

    Serializes writers (``put``/``clear``/``verify``) across
    processes; readers stay lock-free — the write-then-rename protocol
    plus per-entry digests already make reads safe.  On platforms
    without ``fcntl`` the lock degrades to a no-op.
    """

    def __init__(self, root: Path) -> None:
        self.path = root / ".lock"
        self._handle = None

    def __enter__(self) -> "_CacheLock":
        if fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a+b")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *_exc: Any) -> None:
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            finally:
                self._handle.close()
                self._handle = None


@dataclass(slots=True)
class CacheVerification:
    """Outcome of one :meth:`ResultCache.verify` pass."""

    checked: int = 0
    ok: int = 0
    quarantined: List[Path] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.quarantined


class ResultCache:
    """Pickle-backed content-addressed store under one root directory.

    >>> import tempfile
    >>> cache = ResultCache(tempfile.mkdtemp(), salt="s1")
    >>> key = cache.key_for({"kind": "demo", "n": 3})
    >>> cache.get(key) is MISS
    True
    >>> cache.put(key, Fraction(22, 7))
    >>> cache.get(key)
    Fraction(22, 7)
    >>> (cache.hits, cache.misses, cache.stores)
    (1, 1, 1)
    """

    def __init__(
        self, root: "str | Path" = ".repro-cache", *, salt: Optional[str] = None
    ) -> None:
        self.root = Path(root)
        self.salt = code_salt() if salt is None else salt
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, payload: Mapping[str, Any]) -> str:
        """Content-address a task configuration (salt included)."""
        return canonical_key(payload, salt=self.salt)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def lock(self) -> _CacheLock:
        """The cache's advisory inter-process writer lock."""
        return _CacheLock(self.root)

    def get(self, key: str) -> Any:
        """The cached value, or :data:`MISS`.  Corrupt entries = miss.

        Corruption (torn write, digest mismatch, version skew) can
        never surface as data: the entry's own SHA-256 is checked
        before unpickling, and a damaged entry is dropped so the next
        run recomputes and re-stores it.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._get(key)
        with tracer.span("cache.get", key=key[:16]) as span:
            value = self._get(key)
            span.set(outcome="miss" if value is MISS else "hit")
            return value

    def _get(self, key: str) -> Any:
        path = self.path_for(key)
        try:
            value = _decode_entry(path.read_bytes())
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except Exception:
            # Truncated write, version skew — drop it and recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Persist atomically (write-then-rename) under the key.

        The scratch name embeds this process's pid and a monotonic
        counter, so concurrent writers (two grid runs sharing one
        cache) can never scribble on each other's scratch file; the
        advisory lock additionally serializes the writes themselves.
        """
        tracer = current_tracer()
        if tracer is None:
            self._put(key, value)
            return
        with tracer.span("cache.store", key=key[:16]):
            self._put(key, value)

    def _put(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        with self.lock():
            path.parent.mkdir(parents=True, exist_ok=True)
            scratch = self._scratch_for(path)
            scratch.write_bytes(_encode_entry(value))
            scratch.replace(path)
        self.stores += 1

    @staticmethod
    def _scratch_for(path: Path) -> Path:
        return path.with_suffix(
            f".tmp.{os.getpid()}.{next(_SCRATCH_COUNTER)}"
        )

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        path = self.path_for(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def clear(self) -> int:
        """Remove every entry; returns the number dropped."""
        with self.lock():
            dropped = sum(1 for _ in self.entries())
            if self.root.exists():
                shutil.rmtree(self.root)
        return dropped

    def verify(self) -> CacheVerification:
        """Re-hash every entry; quarantine the ones that fail.

        Each entry's stored SHA-256 is recomputed over its payload and
        the payload is test-unpickled.  Entries that fail either check
        (torn writes, bit rot, format skew) are moved — not deleted —
        to ``<root>/quarantine/`` with a ``.corrupt`` suffix, where
        :meth:`entries` no longer sees them, so the evidence survives
        while the cache returns to a provably-sound state.
        """
        report = CacheVerification()
        with self.lock():
            for path in list(self.entries()):
                report.checked += 1
                try:
                    _decode_entry(path.read_bytes())
                except Exception:
                    quarantine = self.root / "quarantine"
                    quarantine.mkdir(parents=True, exist_ok=True)
                    target = quarantine / f"{path.name}.corrupt"
                    path.replace(target)
                    report.quarantined.append(target)
                else:
                    report.ok += 1
        return report

    def entries(self) -> Iterator[Path]:
        """Every persisted entry file currently on disk."""
        if self.root.exists():
            yield from sorted(
                path
                for path in self.root.glob("*/*.pkl")
                if path.parent.name != "quarantine"
            )

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())
