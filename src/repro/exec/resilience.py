"""Fault-tolerance primitives for the execution engine.

Adversarial grids and fuzzing sweeps run for hours, and their
worst-case cells are *designed* to be pathological — a single hung or
OOM-killed worker must not abort the whole run, and a Ctrl-C must not
discard every finished-but-unreported cell.  This module holds the
pieces the resilient engine is built from:

* :class:`RunHealth` — the structured bookkeeping block (retries,
  timeouts, worker crashes, pool respawns, degraded mode) that
  :func:`repro.exec.pool.run_tasks` fills in and grid reports /
  bench ``meta`` blocks carry.
* :class:`TaskError` — a worker failure *as a value*: when a caller
  opts into ``on_error="capture"``, a task that exhausts its retries
  yields a ``TaskError`` (index, attempts, traceback text) in its
  result slot instead of tearing down the run.
* :func:`backoff_delay` — deterministic exponential backoff.  No
  jitter on purpose: re-running a grid with the same failures sleeps
  the same schedule, so wall-time comparisons stay meaningful.
* :class:`GridJournal` — an append-only JSONL checkpoint of completed
  grid cells.  ``repro grid`` writes it as cells finish (flushed and
  fsynced per record, in the spirit of dnf's history/lock machinery),
  so an interrupted or crashed run resumes with ``repro grid
  --resume`` recomputing only the missing cells.

See ``docs/robustness.md`` for the failure model end-to-end.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from ..obs.tracing import current_tracer

__all__ = [
    "GridJournal",
    "JournalMismatch",
    "JournalState",
    "RunHealth",
    "TaskError",
    "backoff_delay",
]


@dataclass(slots=True)
class RunHealth:
    """What it took to complete a run — the resilience ledger.

    All-zero (and ``degraded=False``) means the run was undisturbed.
    ``retries`` counts re-dispatched attempts of any cause;
    ``timeouts``/``worker_crashes`` classify the causes; each
    ``pool_respawns`` is a replacement worker forked after a kill or
    crash; ``degraded`` is set when fork kept failing and the engine
    fell back to in-process serial execution; ``failures`` counts
    tasks that exhausted their retry budget.
    """

    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    pool_respawns: int = 0
    degraded: bool = False
    failures: int = 0

    def merge(self, other: "RunHealth") -> None:
        """Fold another run's ledger into this one (for multi-pool runs)."""
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.worker_crashes += other.worker_crashes
        self.pool_respawns += other.pool_respawns
        self.degraded = self.degraded or other.degraded
        self.failures += other.failures

    @property
    def disturbed(self) -> bool:
        """True when anything at all went wrong (or was retried)."""
        return bool(
            self.retries
            or self.timeouts
            or self.worker_crashes
            or self.pool_respawns
            or self.degraded
            or self.failures
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-native form for bench ``meta`` blocks and manifests."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "pool_respawns": self.pool_respawns,
            "degraded": self.degraded,
            "failures": self.failures,
        }

    def render(self) -> str:
        """One human-readable line for CLI output."""
        return (
            f"retries={self.retries} timeouts={self.timeouts} "
            f"crashes={self.worker_crashes} respawns={self.pool_respawns} "
            f"degraded={'yes' if self.degraded else 'no'} "
            f"failures={self.failures}"
        )

    def brief(self) -> str:
        """Only the nonzero counters, for live progress lines.

        Empty string when the run is undisturbed, so progress output
        stays byte-identical to the pre-health format in the common
        case.
        """
        parts = []
        if self.retries:
            parts.append(f"retries={self.retries}")
        if self.timeouts:
            parts.append(f"timeouts={self.timeouts}")
        if self.worker_crashes:
            parts.append(f"crashes={self.worker_crashes}")
        if self.pool_respawns:
            parts.append(f"respawns={self.pool_respawns}")
        if self.failures:
            parts.append(f"failures={self.failures}")
        if self.degraded:
            parts.append("degraded")
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class TaskError:
    """A task failure carried as a result value.

    ``kind`` is ``"error"`` (the task raised), ``"crash"`` (the worker
    process died mid-task) or ``"timeout"`` (the task exceeded the
    per-task wall-clock budget).  ``attempts`` is how many times the
    task was tried before giving up; ``traceback_text`` is the worker's
    formatted traceback when one exists (crashes and timeouts have
    none — the process was killed, not unwound).
    """

    index: int
    attempts: int
    kind: str
    error_type: str
    message: str
    traceback_text: str = ""

    def summary(self) -> str:
        return (
            f"task {self.index} failed after {self.attempts} attempt(s): "
            f"[{self.kind}] {self.error_type}: {self.message}"
        )


def backoff_delay(base: float, attempt: int, cap: float = 2.0) -> float:
    """Deterministic exponential backoff before re-trying ``attempt``.

    ``attempt`` is the 1-based attempt that just failed; the delay
    doubles per failure and saturates at ``cap`` seconds.  Determinism
    (no jitter) is deliberate — the engine's single writer per task
    means thundering herds cannot happen, and reproducible sleep
    schedules keep wall-time numbers comparable across runs.

    >>> [backoff_delay(0.05, a) for a in (1, 2, 3)]
    [0.05, 0.1, 0.2]
    >>> backoff_delay(0.5, 10)
    2.0
    """
    if base <= 0:
        return 0.0
    return min(cap, base * (2 ** (attempt - 1)))


class JournalMismatch(ValueError):
    """The journal on disk was written by a *different* grid."""


@dataclass(slots=True)
class JournalState:
    """Parsed contents of a grid journal file."""

    grid_key: str
    total: int
    results: Dict[int, Any] = field(default_factory=dict)
    names: Dict[int, str] = field(default_factory=dict)


class GridJournal:
    """Append-only JSONL checkpoint of completed grid cells.

    Layout: a header line identifying the grid (a content hash over
    every cell's configuration plus the code salt), then one record
    per completed cell.  Results are pickled (they carry exact
    :class:`~fractions.Fraction` values) and base64-wrapped so each
    record stays one JSON line.  Every record is flushed and fsynced —
    a SIGKILL can lose at most the cell in flight, and a torn final
    line is detected and dropped on load.
    """

    VERSION = 1

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._handle = None

    # -- reading ------------------------------------------------------

    def load(self) -> Optional[JournalState]:
        """Parse the journal; ``None`` when absent or headerless.

        Corrupt or torn lines end the parse: everything before them is
        trusted (records are append-only), everything after is not.
        """
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except (FileNotFoundError, OSError):
            return None
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
            if header.get("kind") != "grid-journal":
                return None
            state = JournalState(
                grid_key=str(header["grid"]), total=int(header["cells"])
            )
        except (ValueError, KeyError, TypeError):
            return None
        for line in lines[1:]:
            try:
                record = json.loads(line)
                index = int(record["index"])
                value = pickle.loads(base64.b64decode(record["result"]))
            except Exception:
                break  # torn tail — nothing after it is trustworthy
            state.results[index] = value
            state.names[index] = str(record.get("name", ""))
        return state

    # -- writing ------------------------------------------------------

    def start(
        self, grid_key: str, total: int, *, resume: bool = False
    ) -> Dict[int, Any]:
        """Open the journal for appending; return already-recorded results.

        A fresh start truncates any previous journal.  ``resume=True``
        re-reads the existing journal, raises :class:`JournalMismatch`
        if it belongs to a different grid, compacts it (dropping any
        torn tail so appends stay line-aligned) and returns the results
        recorded so far.
        """
        recorded: Dict[int, Any] = {}
        names: Dict[int, str] = {}
        if resume:
            state = self.load()
            if state is not None:
                if state.grid_key != grid_key:
                    raise JournalMismatch(
                        f"{self.path}: journal belongs to a different grid "
                        f"(recorded {state.grid_key[:12]}…, this grid is "
                        f"{grid_key[:12]}…); pass a fresh --journal path or "
                        "drop --resume"
                    )
                recorded = state.results
                names = state.names
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._write_line(
            {
                "kind": "grid-journal",
                "version": self.VERSION,
                "grid": grid_key,
                "cells": total,
            }
        )
        for index in sorted(recorded):
            self._append(index, names.get(index, ""), recorded[index])
        return recorded

    def record(self, index: int, name: str, result: Any) -> None:
        """Checkpoint one completed cell (flushed and fsynced)."""
        if self._handle is None:
            raise RuntimeError("journal not started; call start() first")
        self._append(index, name, result)

    def _append(self, index: int, name: str, result: Any) -> None:
        tracer = current_tracer()
        if tracer is None:
            self._append_record(index, name, result)
            return
        with tracer.span("journal.append", index=index):
            self._append_record(index, name, result)

    def _append_record(self, index: int, name: str, result: Any) -> None:
        self._write_line(
            {
                "index": index,
                "name": name,
                "result": base64.b64encode(
                    pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                ).decode("ascii"),
            }
        )

    def _write_line(self, record: Dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "GridJournal":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
