"""Process-pool task execution with deterministic reassembly.

Every sweep and experiment grid in this repository is embarrassingly
parallel: cells are independent simulations that share no state.  This
module turns a list of zero-argument task callables into a list of
results, either serially or across a ``ProcessPoolExecutor``, with one
hard guarantee: **the output is bit-identical regardless of ``jobs``**.

Determinism comes from two rules:

1. *Deterministic sharding* — tasks are identified by their submission
   index; whatever order workers finish in, results are re-assembled
   in submission order, so ``jobs=4`` output equals ``jobs=1`` output
   element-for-element (exact :class:`~fractions.Fraction` values
   included — they pickle losslessly).
2. *No shared mutable state* — each task runs in a forked child that
   inherits the parent's memory at pool creation and returns a single
   picklable value.  Tasks must not rely on side effects in the
   parent.

The pool uses the ``fork`` start method so task *closures* (lambdas
over ``n, R, rho`` and friends — the idiom everywhere in
``benchmarks/``) never need to be pickled: workers inherit the task
list via fork and are sent only integer indices.  On platforms
without fork (Windows, some macOS configurations) — or when
``jobs=1`` — execution falls back to a plain serial loop with the
same semantics.

Worker-side observability: each task may build its own
:class:`repro.obs.SimulationMetrics` pack and fold its snapshot into
the returned value; :func:`run_tasks` additionally records which
worker (pid) ran each task so callers can aggregate per-worker.  The
parent reports progress through the existing rate-limited
:class:`repro.obs.ProgressReporter` via its :meth:`tick` hook.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.profiling import ProgressReporter

#: Task list the forked workers inherit; only indices cross the pipe.
_FORK_TASKS: Optional[Sequence[Callable[[], Any]]] = None


def fork_available() -> bool:
    """Whether the deterministic fork-based pool can run here."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs


def _run_indexed(index: int) -> Tuple[int, int, Any]:
    """Worker body: execute one inherited task by submission index."""
    assert _FORK_TASKS is not None, "worker forked without a task list"
    return index, os.getpid(), _FORK_TASKS[index]()


@dataclass(slots=True)
class PoolRun:
    """Outcome of one :func:`run_tasks` call.

    ``values`` is in submission order.  ``workers`` maps each worker
    pid to the number of tasks it completed (a single entry — the
    parent pid — for serial runs).  ``task_workers[i]`` is the pid
    that ran task ``i``.
    """

    values: List[Any]
    jobs: int
    mode: str  # "serial" | "fork-pool"
    wall_s: float
    workers: Dict[int, int] = field(default_factory=dict)
    task_workers: List[int] = field(default_factory=list)


def run_tasks(
    tasks: Sequence[Callable[[], Any]],
    jobs: int = 1,
    *,
    progress: Optional[ProgressReporter] = None,
    label: str = "tasks",
) -> PoolRun:
    """Run every task; return results re-assembled in submission order.

    ``jobs=1`` (the default) runs serially in-process.  ``jobs>1``
    runs on a fork-based process pool when the platform supports it
    and falls back to serial otherwise — same results either way.
    ``jobs=0``/``None`` means one job per CPU core.

    ``progress``, when given, is ticked once per completed task; its
    rate limiting (``every_events`` / ``min_interval_s``) applies
    unchanged.
    """
    global _FORK_TASKS
    jobs = resolve_jobs(jobs)
    tasks = list(tasks)
    started = time.perf_counter()
    total = len(tasks)

    def describe(reporter: ProgressReporter) -> str:
        return (
            f"[repro] {label} {reporter.events}/{total} done "
            f"rate={reporter.window_rate:.2f}/s"
        )

    # Serial path: jobs=1, nothing to do, no fork, or we *are* a worker
    # (nested run_tasks inside a task must not fork a pool of its own).
    if jobs == 1 or total <= 1 or not fork_available() or _FORK_TASKS is not None:
        pid = os.getpid()
        values = []
        for task in tasks:
            values.append(task())
            if progress is not None:
                progress.tick(describe)
        return PoolRun(
            values=values,
            jobs=1,
            mode="serial",
            wall_s=time.perf_counter() - started,
            workers={pid: total} if total else {},
            task_workers=[pid] * total,
        )

    context = multiprocessing.get_context("fork")
    _FORK_TASKS = tasks
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, total), mp_context=context
        ) as executor:
            futures = [executor.submit(_run_indexed, i) for i in range(total)]
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                if progress is not None:
                    for _ in done:
                        progress.tick(describe)
            # Re-assemble in submission order — the determinism contract.
            outcomes = [future.result() for future in futures]
    finally:
        _FORK_TASKS = None

    values: List[Any] = [None] * total
    task_workers: List[int] = [0] * total
    workers: Dict[int, int] = {}
    for index, pid, value in outcomes:
        values[index] = value
        task_workers[index] = pid
        workers[pid] = workers.get(pid, 0) + 1
    return PoolRun(
        values=values,
        jobs=jobs,
        mode="fork-pool",
        wall_s=time.perf_counter() - started,
        workers=workers,
        task_workers=task_workers,
    )
