"""Fault-tolerant process-pool task execution with deterministic reassembly.

Every sweep and experiment grid in this repository is embarrassingly
parallel: cells are independent simulations that share no state.  This
module turns a list of zero-argument task callables into a list of
results, either serially or across a pool of forked workers, with one
hard guarantee: **the output is bit-identical regardless of ``jobs``**.

Determinism comes from two rules:

1. *Deterministic sharding* — tasks are identified by their submission
   index; whatever order workers finish in (and however many times a
   task had to be retried), results are re-assembled in submission
   order, so ``jobs=4`` output equals ``jobs=1`` output
   element-for-element (exact :class:`~fractions.Fraction` values
   included — they pickle losslessly).
2. *No shared mutable state* — each task runs in a forked child that
   inherits the parent's memory and returns a single picklable value.
   Tasks must not rely on side effects in the parent.

The pool uses the ``fork`` start method so task *closures* (lambdas
over ``n, R, rho`` and friends — the idiom everywhere in
``benchmarks/``) never need to be pickled: workers inherit the task
list via fork and are sent only integer indices.  On platforms
without fork (Windows, some macOS configurations) — or when
``jobs=1`` — execution falls back to a plain serial loop with the
same semantics.

Fault tolerance (see ``docs/robustness.md`` for the failure model):

* **Per-task wall-clock timeouts** — ``task_timeout`` kills a worker
  whose task overruns the budget (pool mode only; serial execution
  cannot preempt) and re-dispatches or fails the task.
* **Bounded retries with deterministic backoff** — ``retries`` extra
  attempts per task, spaced by :func:`~repro.exec.resilience.backoff_delay`
  (exponential, jitter-free).
* **Worker-crash recovery** — a worker that dies mid-task (OOM kill,
  segfault, ``os._exit``) loses only that task: the parent detects the
  death via the process sentinel, forks a replacement, and
  re-dispatches the unfinished index.  No ``BrokenProcessPool``, no
  lost siblings.
* **Graceful degradation** — if forking replacement workers keeps
  failing and no workers remain, the engine finishes the remaining
  tasks serially in-process (``health.degraded``) rather than abort.
* **Failure capture** — with ``on_error="capture"``, a task that
  exhausts its attempts yields a :class:`~repro.exec.TaskError` in its
  result slot; the default ``"raise"`` aborts the run like a plain
  loop would.

Everything the recovery machinery did is reported in
:class:`~repro.exec.RunHealth` on the returned :class:`PoolRun`.

Worker-side observability: each task may build its own
:class:`repro.obs.SimulationMetrics` pack and fold its snapshot into
the returned value; :func:`run_tasks` additionally records which
worker (pid) ran each task so callers can aggregate per-worker.  The
parent reports progress through the existing rate-limited
:class:`repro.obs.ProgressReporter` via its :meth:`tick` hook, and an
``on_result`` hook fires in the parent as each task completes — the
grid journal checkpoints through it.
"""

from __future__ import annotations

import heapq
import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.profiling import ProgressReporter
from ..obs.tracing import current_tracer
from .resilience import RunHealth, TaskError, backoff_delay

#: Task list the forked workers inherit; only indices cross the pipe.
_FORK_TASKS: Optional[Sequence[Callable[[], Any]]] = None

#: How many consecutive fork failures before degrading to serial.
_SPAWN_ATTEMPTS = 3

#: Default base for the deterministic exponential retry backoff.
DEFAULT_BACKOFF_S = 0.05


def fork_available() -> bool:
    """Whether the deterministic fork-based pool can run here."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs


def _portable_error(exc: BaseException) -> Tuple[Any, str, str, str]:
    """An exception as it can cross the pipe: (object-or-None, type, msg, tb)."""
    text = traceback.format_exc()
    try:
        pickle.dumps(exc)
        carried: Any = exc
    except Exception:
        carried = None
    return carried, type(exc).__name__, str(exc), text


def _worker_loop(conn) -> None:
    """Child body: execute dispatched task indices until told to stop."""
    assert _FORK_TASKS is not None, "worker forked without a task list"
    tracer = current_tracer()  # inherited through fork; usually None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index = message
        span = (
            tracer.begin("task", tid=index, task=index)
            if tracer is not None
            else None
        )
        try:
            reply = ("ok", index, os.getpid(), _FORK_TASKS[index]())
        except BaseException as exc:
            reply = ("err", index, os.getpid(), _portable_error(exc))
            if span is not None:
                span.set(outcome="error")
        if span is not None:
            span.args.setdefault("outcome", "ok")
            tracer.end(span)
            # Spool before replying: once the parent has the result it
            # may kill this worker at any moment (timeout, teardown).
            tracer.flush()
        try:
            conn.send(reply)
        except Exception as exc:
            # The *value* would not pickle — report that as the failure.
            conn.send(("err", index, os.getpid(), _portable_error(exc)))


class _Worker:
    """Parent-side handle for one forked worker process."""

    __slots__ = (
        "process", "conn", "index", "attempt", "deadline",
        "dispatch_ts", "spawn_ts", "ordinal",
    )

    def __init__(self, context) -> None:
        parent_conn, child_conn = multiprocessing.Pipe()
        self.spawn_ts = time.perf_counter_ns() // 1000
        self.process = context.Process(
            target=_worker_loop, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.index: Optional[int] = None
        self.attempt = 0
        self.deadline: Optional[float] = None
        self.dispatch_ts = 0
        self.ordinal = 0

    @property
    def busy(self) -> bool:
        return self.index is not None

    def dispatch(
        self, index: int, attempt: int, task_timeout: Optional[float]
    ) -> None:
        self.dispatch_ts = time.perf_counter_ns() // 1000
        self.conn.send(index)
        self.index = index
        self.attempt = attempt
        self.deadline = (
            time.monotonic() + task_timeout if task_timeout else None
        )

    def settle(self) -> None:
        self.index = None
        self.attempt = 0
        self.deadline = None

    def stop(self, graceful: bool) -> None:
        """Tear the worker down; ``graceful`` asks it to exit first."""
        if graceful and not self.busy and self.process.is_alive():
            try:
                self.conn.send(None)
            except Exception:
                pass
            self.process.join(timeout=1.0)
        if self.process.is_alive():
            try:
                self.process.kill()
            except Exception:  # pragma: no cover - already dead
                pass
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - defensive
            pass


def _spawn_worker(context) -> _Worker:
    """Fork one worker (separate function so tests can fail it on cue)."""
    return _Worker(context)


@dataclass(slots=True)
class PoolRun:
    """Outcome of one :func:`run_tasks` call.

    ``values`` is in submission order; with ``on_error="capture"`` a
    slot may hold a :class:`~repro.exec.TaskError` instead of a task's
    value.  ``workers`` maps each worker pid to the number of tasks it
    completed (a single entry — the parent pid — for serial runs).
    ``task_workers[i]`` is the pid that ran task ``i`` (0 for a failed
    task).  ``health`` is the resilience ledger for the run.
    """

    values: List[Any]
    jobs: int
    mode: str  # "serial" | "fork-pool"
    wall_s: float
    workers: Dict[int, int] = field(default_factory=dict)
    task_workers: List[int] = field(default_factory=list)
    health: RunHealth = field(default_factory=RunHealth)


def run_tasks(
    tasks: Sequence[Callable[[], Any]],
    jobs: int = 1,
    *,
    progress: Optional[ProgressReporter] = None,
    label: str = "tasks",
    task_timeout: Optional[float] = None,
    retries: int = 0,
    backoff_base: float = DEFAULT_BACKOFF_S,
    on_error: str = "raise",
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> PoolRun:
    """Run every task; return results re-assembled in submission order.

    ``jobs=1`` (the default) runs serially in-process.  ``jobs>1``
    runs on a fork-based worker pool when the platform supports it
    and falls back to serial otherwise — same results either way.
    ``jobs=0``/``None`` means one job per CPU core.

    ``task_timeout`` (seconds) bounds each attempt's wall clock (pool
    mode only — serial execution cannot preempt a running task);
    ``retries`` grants each task that many extra attempts after a
    failure, crash or timeout, spaced by deterministic exponential
    backoff from ``backoff_base``.  ``on_error="raise"`` (default)
    aborts on the first task that exhausts its attempts, re-raising
    the worker's exception when it could cross the pipe;
    ``on_error="capture"`` records a :class:`~repro.exec.TaskError` in
    the task's result slot and keeps going.

    ``progress``, when given, is ticked once per completed task; its
    rate limiting applies unchanged.  ``on_result(index, value)``
    fires in the parent as each task settles (completion order, not
    submission order) — callers checkpoint through it.

    When a tracer is active (see :mod:`repro.obs.tracing`) the whole
    call is wrapped in a ``pool`` span and every attempt, dispatch and
    worker lifetime is recorded; with tracing off the only cost is one
    module-global ``None`` check.
    """
    tracer = current_tracer()
    if tracer is None:
        return _run_tasks(
            tasks,
            jobs,
            progress=progress,
            label=label,
            task_timeout=task_timeout,
            retries=retries,
            backoff_base=backoff_base,
            on_error=on_error,
            on_result=on_result,
        )
    with tracer.span("pool", label=label) as span:
        run = _run_tasks(
            tasks,
            jobs,
            progress=progress,
            label=label,
            task_timeout=task_timeout,
            retries=retries,
            backoff_base=backoff_base,
            on_error=on_error,
            on_result=on_result,
        )
        span.set(
            tasks=len(run.values),
            jobs=run.jobs,
            mode=run.mode,
            retries=run.health.retries,
            timeouts=run.health.timeouts,
            crashes=run.health.worker_crashes,
            failures=run.health.failures,
            degraded=run.health.degraded,
        )
        return run


def _run_tasks(
    tasks: Sequence[Callable[[], Any]],
    jobs: int = 1,
    *,
    progress: Optional[ProgressReporter] = None,
    label: str = "tasks",
    task_timeout: Optional[float] = None,
    retries: int = 0,
    backoff_base: float = DEFAULT_BACKOFF_S,
    on_error: str = "raise",
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> PoolRun:
    """The engine behind :func:`run_tasks` (which adds the trace span)."""
    if on_error not in ("raise", "capture"):
        raise ValueError(
            f"on_error must be 'raise' or 'capture', got {on_error!r}"
        )
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    global _FORK_TASKS
    jobs = resolve_jobs(jobs)
    tasks = list(tasks)
    started = time.perf_counter()
    total = len(tasks)
    health = RunHealth()

    def describe(reporter: ProgressReporter) -> str:
        line = (
            f"[repro] {label} {reporter.events}/{total} done "
            f"rate={reporter.window_rate:.2f}/s"
        )
        disturbances = health.brief()
        return f"{line} | {disturbances}" if disturbances else line

    # Serial path: jobs=1, nothing to gain, no fork, or we *are* a
    # worker (nested run_tasks inside a task must not fork its own pool).
    if jobs == 1 or total <= 1 or not fork_available() or _FORK_TASKS is not None:
        values = _run_serial(
            tasks,
            range(total),
            retries=retries,
            backoff_base=backoff_base,
            on_error=on_error,
            on_result=on_result,
            progress=progress,
            describe=describe,
            health=health,
        )
        pid = os.getpid()
        completed = sum(1 for v in values if not isinstance(v, TaskError))
        return PoolRun(
            values=values,
            jobs=1,
            mode="serial",
            wall_s=time.perf_counter() - started,
            workers={pid: completed} if completed else {},
            task_workers=[
                0 if isinstance(v, TaskError) else pid for v in values
            ],
            health=health,
        )

    context = multiprocessing.get_context("fork")
    _FORK_TASKS = tasks
    try:
        values, task_workers, workers = _run_pool(
            tasks,
            context,
            max_workers=min(jobs, total),
            task_timeout=task_timeout,
            retries=retries,
            backoff_base=backoff_base,
            on_error=on_error,
            on_result=on_result,
            progress=progress,
            describe=describe,
            health=health,
        )
    finally:
        _FORK_TASKS = None
    return PoolRun(
        values=values,
        jobs=jobs,
        mode="fork-pool",
        wall_s=time.perf_counter() - started,
        workers=workers,
        task_workers=task_workers,
        health=health,
    )


def _run_serial(
    tasks: Sequence[Callable[[], Any]],
    indices: Sequence[int],
    *,
    retries: int,
    backoff_base: float,
    on_error: str,
    on_result: Optional[Callable[[int, Any], None]],
    progress: Optional[ProgressReporter],
    describe,
    health: RunHealth,
    values: Optional[List[Any]] = None,
) -> List[Any]:
    """In-process execution with the same retry/capture semantics.

    ``values`` lets the degraded path fill an existing result array;
    fresh serial runs allocate one.  Timeouts are not enforced here —
    a single thread cannot preempt the task it is running.
    """
    if values is None:
        values = [None] * len(tasks)
    tracer = current_tracer()
    for index in indices:
        attempt = 1
        while True:
            span = (
                tracer.begin("attempt", tid=index, task=index, attempt=attempt)
                if tracer is not None
                else None
            )
            try:
                value: Any = tasks[index]()
                if span is not None:
                    tracer.end(span, outcome="ok", retried=False)
                break
            except KeyboardInterrupt:
                if span is not None:
                    tracer.end(span, outcome="interrupted", retried=False)
                raise
            except Exception as exc:
                retrying = attempt <= retries
                if span is not None:
                    tracer.end(span, outcome="error", retried=retrying)
                if retrying:
                    health.retries += 1
                    time.sleep(backoff_delay(backoff_base, attempt))
                    attempt += 1
                    continue
                health.failures += 1
                if on_error == "raise":
                    raise
                value = TaskError(
                    index=index,
                    attempts=attempt,
                    kind="error",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback_text=traceback.format_exc(),
                )
                break
        values[index] = value
        if on_result is not None:
            on_result(index, value)
        if progress is not None:
            progress.tick(describe)
    return values


def _run_pool(
    tasks: Sequence[Callable[[], Any]],
    context,
    *,
    max_workers: int,
    task_timeout: Optional[float],
    retries: int,
    backoff_base: float,
    on_error: str,
    on_result: Optional[Callable[[int, Any], None]],
    progress: Optional[ProgressReporter],
    describe,
    health: RunHealth,
) -> Tuple[List[Any], List[int], Dict[int, int]]:
    """The resilient worker-pool loop (see module docstring)."""
    total = len(tasks)
    values: List[Any] = [None] * total
    task_workers: List[int] = [0] * total
    worker_counts: Dict[int, int] = {}
    done = [False] * total
    completed = 0
    todo: deque = deque((index, 1) for index in range(total))
    retry_heap: List[Tuple[float, int, int]] = []  # (ready_at, index, attempt)
    workers: List[_Worker] = []
    spawn_failures = 0
    need_respawn = 0
    spawn_ordinal = 0
    tracer = current_tracer()

    def trace_attempt(index: int, attempt: int, ts: int,
                      outcome: str, retried: bool) -> None:
        """Parent-side attempt span, dispatch → settle (worker may be dead)."""
        if tracer is not None and ts:
            tracer.add_span(
                "attempt",
                ts=ts,
                dur=tracer.now_us() - ts,
                tid=index,
                task=index,
                attempt=attempt,
                outcome=outcome,
                retried=retried,
            )

    def trace_worker_end(worker: _Worker) -> None:
        """Worker-lifetime span, drawn in the worker's own process lane."""
        if tracer is not None and worker.process.pid is not None:
            tracer.add_span(
                "worker",
                ts=worker.spawn_ts,
                dur=tracer.now_us() - worker.spawn_ts,
                pid=worker.process.pid,
                tid=0,
                ordinal=worker.ordinal,
            )

    def settle(index: int, value: Any, pid: int) -> None:
        nonlocal completed
        if done[index]:  # pragma: no cover - defensive double-settle guard
            return
        done[index] = True
        completed += 1
        values[index] = value
        task_workers[index] = pid
        if pid:
            worker_counts[pid] = worker_counts.get(pid, 0) + 1
        if on_result is not None:
            on_result(index, value)
        if progress is not None:
            progress.tick(describe)

    def failed(index: int, attempt: int, kind: str,
               error: Tuple[Any, str, str, str],
               dispatch_ts: int = 0) -> None:
        """A failed attempt: schedule a retry or settle the failure."""
        carried, type_name, message, tb_text = error
        trace_attempt(index, attempt, dispatch_ts, kind, attempt <= retries)
        if attempt <= retries:
            health.retries += 1
            ready_at = time.monotonic() + backoff_delay(backoff_base, attempt)
            heapq.heappush(retry_heap, (ready_at, index, attempt + 1))
            return
        health.failures += 1
        if on_error == "raise":
            if carried is not None:
                raise carried
            raise RuntimeError(
                f"task {index} failed after {attempt} attempt(s) "
                f"[{kind}] {type_name}: {message}\n{tb_text}".rstrip()
            )
        settle(
            index,
            TaskError(
                index=index,
                attempts=attempt,
                kind=kind,
                error_type=type_name,
                message=message,
                traceback_text=tb_text,
            ),
            0,
        )

    def retire(worker: _Worker, graceful: bool) -> None:
        nonlocal need_respawn
        trace_worker_end(worker)
        workers.remove(worker)
        worker.stop(graceful)
        need_respawn += 1

    def handle_reply(worker: _Worker, reply) -> None:
        status, index, pid, payload = reply
        dispatch_ts = worker.dispatch_ts
        worker.settle()
        attempt = worker_attempts.pop(index, 1)
        if status == "ok":
            trace_attempt(index, attempt, dispatch_ts, "ok", False)
            settle(index, payload, pid)
        else:
            failed(index, attempt, "error", payload, dispatch_ts)

    # Attempt numbers live parent-side (workers don't know them).
    worker_attempts: Dict[int, int] = {}

    try:
        while completed < total:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, index, attempt = heapq.heappop(retry_heap)
                todo.append((index, attempt))

            # Prune workers that died while idle (no task was lost, so
            # this is not a crash — just free the slot for a respawn).
            for worker in [
                w for w in workers if not w.busy and not w.process.is_alive()
            ]:
                retire(worker, graceful=False)

            # Dispatch: fill idle workers, spawning up to max_workers.
            while todo:
                worker = next(
                    (w for w in workers if not w.busy and w.process.is_alive()),
                    None,
                )
                if worker is None:
                    if len(workers) >= max_workers:
                        break
                    try:
                        worker = _spawn_worker(context)
                    except OSError:
                        spawn_failures += 1
                        if spawn_failures >= _SPAWN_ATTEMPTS and not workers:
                            # Fork is gone for good: finish serially.
                            health.degraded = True
                            _drain_serially(
                                tasks, todo, retry_heap, done,
                                retries=retries,
                                backoff_base=backoff_base,
                                on_error=on_error,
                                on_result=on_result,
                                progress=progress,
                                describe=describe,
                                health=health,
                                values=values,
                                task_workers=task_workers,
                                worker_counts=worker_counts,
                            )
                            return values, task_workers, worker_counts
                        break
                    spawn_failures = 0
                    if need_respawn:
                        health.pool_respawns += 1
                        need_respawn -= 1
                    spawn_ordinal += 1
                    worker.ordinal = spawn_ordinal
                    if tracer is not None and worker.process.pid is not None:
                        tracer.worker_pids[worker.process.pid] = (
                            f"worker-{worker.ordinal}"
                        )
                    workers.append(worker)
                index, attempt = todo.popleft()
                worker_attempts[index] = attempt
                try:
                    worker.dispatch(index, attempt, task_timeout)
                except (BrokenPipeError, OSError):
                    # Died between fork and dispatch — put the task back.
                    health.worker_crashes += 1
                    todo.appendleft((index, attempt))
                    retire(worker, graceful=False)
                else:
                    if tracer is not None:
                        tracer.add_span(
                            "pool.dispatch",
                            ts=worker.dispatch_ts,
                            dur=tracer.now_us() - worker.dispatch_ts,
                            tid=index,
                            task=index,
                            attempt=attempt,
                            worker=worker.ordinal,
                        )

            busy = [w for w in workers if w.busy]
            if not busy:
                if retry_heap:
                    time.sleep(
                        max(0.0, retry_heap[0][0] - time.monotonic())
                    )
                    continue
                if todo:
                    # No worker could be spawned this round; try again.
                    time.sleep(0.01)
                    continue
                continue  # all settled; loop condition ends the run

            timeout = _wait_timeout(busy, retry_heap)
            waitables: List[Any] = [w.conn for w in busy]
            waitables.extend(w.process.sentinel for w in busy)
            ready = multiprocessing.connection.wait(waitables, timeout)
            ready_set = set(ready)

            for worker in list(busy):
                if worker.conn in ready_set:
                    try:
                        reply = worker.conn.recv()
                    except (EOFError, OSError):
                        # Died mid-send: treat like a crash below.
                        pass
                    else:
                        handle_reply(worker, reply)
                        continue
                if worker.process.sentinel in ready_set or not worker.process.is_alive():
                    if worker.conn.poll():
                        # Result landed just before the process died.
                        try:
                            handle_reply(worker, worker.conn.recv())
                            retire(worker, graceful=False)
                            continue
                        except (EOFError, OSError):
                            pass
                    health.worker_crashes += 1
                    index, attempt = worker.index, worker.attempt
                    dispatch_ts = worker.dispatch_ts
                    # Reap before reading the exit code — the sentinel
                    # fires before the process object knows it.
                    worker.process.join(timeout=1.0)
                    exitcode = worker.process.exitcode
                    retire(worker, graceful=False)
                    if index is not None:
                        worker_attempts.pop(index, None)
                        failed(
                            index,
                            attempt,
                            "crash",
                            (None, "WorkerCrash",
                             f"worker exited with code {exitcode}", ""),
                            dispatch_ts,
                        )

            if task_timeout is not None:
                now = time.monotonic()
                for worker in [w for w in workers if w.busy]:
                    if worker.deadline is not None and now >= worker.deadline:
                        health.timeouts += 1
                        index, attempt = worker.index, worker.attempt
                        dispatch_ts = worker.dispatch_ts
                        retire(worker, graceful=False)
                        worker_attempts.pop(index, None)
                        failed(
                            index,
                            attempt,
                            "timeout",
                            (None, "TaskTimeout",
                             f"exceeded task_timeout={task_timeout}s", ""),
                            dispatch_ts,
                        )
    except BaseException:
        # KeyboardInterrupt or a task failure in raise mode: tear the
        # pool down *promptly* — kill, don't wait for running cells.
        for worker in workers:
            trace_worker_end(worker)
            worker.stop(graceful=False)
        workers.clear()
        raise
    finally:
        for worker in workers:
            trace_worker_end(worker)
            worker.stop(graceful=True)
    return values, task_workers, worker_counts


def _wait_timeout(
    busy: Sequence[_Worker], retry_heap: Sequence[Tuple[float, int, int]]
) -> Optional[float]:
    """Sleep until the nearest deadline or retry becomes due."""
    now = time.monotonic()
    horizon: Optional[float] = None
    for worker in busy:
        if worker.deadline is not None:
            horizon = (
                worker.deadline
                if horizon is None
                else min(horizon, worker.deadline)
            )
    if retry_heap:
        horizon = (
            retry_heap[0][0]
            if horizon is None
            else min(horizon, retry_heap[0][0])
        )
    if horizon is None:
        return None
    return max(0.0, horizon - now) + 0.001


def _drain_serially(
    tasks: Sequence[Callable[[], Any]],
    todo: deque,
    retry_heap: List[Tuple[float, int, int]],
    done: List[bool],
    *,
    retries: int,
    backoff_base: float,
    on_error: str,
    on_result,
    progress,
    describe,
    health: RunHealth,
    values: List[Any],
    task_workers: List[int],
    worker_counts: Dict[int, int],
) -> None:
    """Degraded mode: finish every unfinished task in-process."""
    remaining = sorted(
        {index for index, _ in todo}
        | {index for _, index, _ in retry_heap}
        | {index for index, settled in enumerate(done) if not settled}
    )
    pid = os.getpid()
    _run_serial(
        tasks,
        remaining,
        retries=retries,
        backoff_base=backoff_base,
        on_error=on_error,
        on_result=on_result,
        progress=progress,
        describe=describe,
        health=health,
        values=values,
    )
    for index in remaining:
        if not isinstance(values[index], TaskError):
            task_workers[index] = pid
            worker_counts[pid] = worker_counts.get(pid, 0) + 1
