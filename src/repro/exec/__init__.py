"""Execution engine: parallel task pools, result caching, bench diffs.

The layer between "a list of independent simulation configurations"
and "results, fast — and *despite failures*".  Five pieces,
composable but independently usable:

* :mod:`repro.exec.pool` — :func:`run_tasks`, a fork-based process
  pool with deterministic sharding: output is bit-identical whatever
  ``jobs`` is, because results are re-assembled in submission order
  and exact :class:`~fractions.Fraction` values pickle losslessly.
  Fault-tolerant: per-task wall-clock timeouts, bounded retries with
  deterministic backoff, worker-crash recovery (a dead worker loses
  only its own task), and graceful degradation to serial execution
  when fork keeps failing — all reported in a structured
  :class:`RunHealth` ledger.
* :mod:`repro.exec.cache` — :class:`ResultCache`, a content-addressed
  store under ``.repro-cache/`` keyed by a canonical fingerprint of
  each task's configuration plus a hash of the ``repro`` sources (so
  editing code invalidates everything automatically).  Hardened:
  advisory inter-process locking, self-verifying digest entries, and
  a ``verify``/quarantine pass for corrupt files.
* :mod:`repro.exec.resilience` — the fault-tolerance primitives:
  :class:`RunHealth`, :class:`TaskError`, deterministic
  :func:`backoff_delay`, and :class:`GridJournal`, the append-only
  checkpoint behind ``repro grid --resume``.
* :mod:`repro.exec.chaos` — deterministic fault *injection* (worker
  crashes, hangs, torn cache writes) so the recovery paths above are
  proven, not hoped for.
* :mod:`repro.exec.diff` — :func:`diff_results`, the engine behind
  ``repro bench diff``: compares two ``benchmarks/results`` artifact
  directories table-by-table and fails on any value drift (an optional
  relative ``tolerance`` relaxes numeric cells for perf trajectories).
* :mod:`repro.exec.perf` — :func:`run_perf`, the core perf suite
  behind ``repro bench perf``: events/sec on the fraction vs
  tick-lattice timebase with inline parity assertions, plus the
  engine-bookkeeping overhead measurement CI polices.

The high-level entry points most callers want live one layer up, in
:mod:`repro.analysis`: ``run_grid(cells, jobs=4, cache=...)`` and
``sweep_seeds(measure, seeds, jobs=4)`` delegate here.  See
``docs/experiments.md`` for the end-to-end workflow and
``docs/robustness.md`` for the failure model.
"""

from .cache import (
    MISS,
    CacheVerification,
    ResultCache,
    UncacheableValue,
    canonical_key,
    code_salt,
    fingerprint,
)
from .chaos import (
    CRASH_EXIT_CODE,
    ChaosError,
    ChaosEvent,
    ChaosPlan,
    TruncatingCache,
    chaos_tasks,
)
from .diff import DiffReport, ReportDiff, diff_results, load_results
from .perf import DEFAULT_CASES, PerfCase, run_perf, write_report
from .pool import PoolRun, fork_available, resolve_jobs, run_tasks
from .resilience import (
    GridJournal,
    JournalMismatch,
    RunHealth,
    TaskError,
    backoff_delay,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "CacheVerification",
    "ChaosError",
    "ChaosEvent",
    "ChaosPlan",
    "DEFAULT_CASES",
    "DiffReport",
    "GridJournal",
    "JournalMismatch",
    "MISS",
    "PerfCase",
    "PoolRun",
    "ReportDiff",
    "ResultCache",
    "RunHealth",
    "TaskError",
    "TruncatingCache",
    "UncacheableValue",
    "backoff_delay",
    "canonical_key",
    "chaos_tasks",
    "code_salt",
    "diff_results",
    "fingerprint",
    "fork_available",
    "load_results",
    "resolve_jobs",
    "run_perf",
    "run_tasks",
    "write_report",
]
