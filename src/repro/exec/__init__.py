"""Execution engine: parallel task pools, result caching, bench diffs.

The layer between "a list of independent simulation configurations"
and "results, fast".  Three pieces, composable but independently
usable:

* :mod:`repro.exec.pool` — :func:`run_tasks`, a fork-based process
  pool with deterministic sharding: output is bit-identical whatever
  ``jobs`` is, because results are re-assembled in submission order
  and exact :class:`~fractions.Fraction` values pickle losslessly.
* :mod:`repro.exec.cache` — :class:`ResultCache`, a content-addressed
  store under ``.repro-cache/`` keyed by a canonical fingerprint of
  each task's configuration plus a hash of the ``repro`` sources (so
  editing code invalidates everything automatically).
* :mod:`repro.exec.diff` — :func:`diff_results`, the engine behind
  ``repro bench diff``: compares two ``benchmarks/results`` artifact
  directories table-by-table and fails on any value drift (an optional
  relative ``tolerance`` relaxes numeric cells for perf trajectories).
* :mod:`repro.exec.perf` — :func:`run_perf`, the core perf suite
  behind ``repro bench perf``: events/sec on the fraction vs
  tick-lattice timebase with inline parity assertions.

The high-level entry points most callers want live one layer up, in
:mod:`repro.analysis`: ``run_grid(cells, jobs=4, cache=...)`` and
``sweep_seeds(measure, seeds, jobs=4)`` delegate here.  See
``docs/experiments.md`` for the end-to-end workflow.
"""

from .cache import (
    MISS,
    ResultCache,
    UncacheableValue,
    canonical_key,
    code_salt,
    fingerprint,
)
from .diff import DiffReport, ReportDiff, diff_results, load_results
from .perf import DEFAULT_CASES, PerfCase, run_perf, write_report
from .pool import PoolRun, fork_available, resolve_jobs, run_tasks

__all__ = [
    "DEFAULT_CASES",
    "DiffReport",
    "MISS",
    "PerfCase",
    "PoolRun",
    "ReportDiff",
    "ResultCache",
    "UncacheableValue",
    "canonical_key",
    "code_salt",
    "diff_results",
    "fingerprint",
    "fork_available",
    "load_results",
    "resolve_jobs",
    "run_perf",
    "run_tasks",
    "write_report",
]
