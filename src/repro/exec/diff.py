"""Bench-trajectory diffing over ``benchmarks/results/*.json`` artifacts.

PR 2 made every bench table machine-readable: each report mirrors to
``benchmarks/results/<name>.json`` as ``{"name", "preamble",
"tables": [{"headers", "rows"}, ...]}`` (plus an optional ``"meta"``
block carrying timing/environment facts such as ``wall_s`` and
``jobs``).  This module compares two such directories table-by-table
so a bench trajectory becomes *enforceable*: CI can re-run the
benches and fail when any reproduced value drifts.

Severity model:

* value / header / preamble / row-count changes → **changed** (fails);
* a report present in old but absent in new → **missing** (fails);
* a report only in new → **added** (informational — new benches are
  not regressions);
* ``meta`` differences (wall time, jobs, cache counters) are reported
  as deltas but never fail — timing is environment, not behavior.

Used by ``repro bench diff <old> <new>`` and importable directly::

    from repro.exec import diff_results
    report = diff_results("results-main", "results-pr")
    print("\\n".join(report.render()))
    raise SystemExit(report.exit_code())
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List

__all__ = ["DiffReport", "ReportDiff", "diff_results", "load_results"]

#: Per-report cap on rendered drift lines; the count is always exact.
MAX_DETAIL_LINES = 20


def load_results(directory: "str | Path") -> Dict[str, Dict[str, Any]]:
    """Parse every ``<name>.json`` artifact in a results directory."""
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"not a results directory: {root}")
    out: Dict[str, Dict[str, Any]] = {}
    for path in sorted(root.glob("*.json")):
        with open(path) as handle:
            document = json.load(handle)
        out[document.get("name", path.stem)] = document
    return out


@dataclass(slots=True)
class ReportDiff:
    """Comparison outcome for one named report."""

    name: str
    status: str  # "identical" | "changed" | "missing" | "added"
    notes: List[str] = field(default_factory=list)
    drift_count: int = 0  # exact number of changed cells/lines

    @property
    def fails(self) -> bool:
        return self.status in ("changed", "missing")


def _cell_text(value: Any) -> str:
    return json.dumps(value) if not isinstance(value, str) else value


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _cells_match(old_cell: Any, new_cell: Any, tolerance: float) -> bool:
    """Exact equality, or numeric cells within relative ``tolerance``.

    Non-numeric cells (strings, bools, nulls) always compare exactly —
    tolerance is for measured quantities, not identities.  An old value
    of exactly 0 admits no relative error, so only ``new == 0`` matches.
    """
    if old_cell == new_cell:
        return True
    if tolerance > 0 and _is_number(old_cell) and _is_number(new_cell):
        if old_cell == 0:
            return False
        return abs(new_cell - old_cell) / abs(old_cell) <= tolerance
    return False


def _diff_tables(
    old: Dict[str, Any], new: Dict[str, Any], tolerance: float = 0.0
) -> "tuple[List[str], int]":
    """Detail lines + exact drift count for one report body."""
    notes: List[str] = []
    drifts = 0

    old_pre, new_pre = old.get("preamble", []), new.get("preamble", [])
    if old_pre != new_pre:
        drifts += 1
        notes.append(f"preamble changed: {old_pre!r} -> {new_pre!r}")

    old_tables, new_tables = old.get("tables", []), new.get("tables", [])
    if len(old_tables) != len(new_tables):
        drifts += 1
        notes.append(f"table count {len(old_tables)} -> {len(new_tables)}")
    for t, (old_t, new_t) in enumerate(zip(old_tables, new_tables)):
        headers = old_t.get("headers", [])
        if headers != new_t.get("headers", []):
            drifts += 1
            notes.append(
                f"table {t}: headers {headers!r} -> {new_t.get('headers')!r}"
            )
            continue
        old_rows, new_rows = old_t.get("rows", []), new_t.get("rows", [])
        if len(old_rows) != len(new_rows):
            drifts += 1
            notes.append(f"table {t}: row count {len(old_rows)} -> {len(new_rows)}")
        for r, (old_row, new_row) in enumerate(zip(old_rows, new_rows)):
            for c in range(max(len(old_row), len(new_row))):
                old_cell = old_row[c] if c < len(old_row) else "<absent>"
                new_cell = new_row[c] if c < len(new_row) else "<absent>"
                if not _cells_match(old_cell, new_cell, tolerance):
                    drifts += 1
                    column = headers[c] if c < len(headers) else f"col{c}"
                    notes.append(
                        f"table {t} row {r} [{column}]: "
                        f"{_cell_text(old_cell)} -> {_cell_text(new_cell)}"
                    )
    return notes, drifts


def _meta_notes(old: Dict[str, Any], new: Dict[str, Any]) -> List[str]:
    """Informational deltas (wall time etc.) — never counted as drift."""
    old_meta, new_meta = old.get("meta") or {}, new.get("meta") or {}
    notes: List[str] = []
    old_wall, new_wall = old_meta.get("wall_s"), new_meta.get("wall_s")
    if isinstance(old_wall, (int, float)) and isinstance(new_wall, (int, float)):
        if old_wall > 0:
            notes.append(
                f"wall time {old_wall:.3f}s -> {new_wall:.3f}s "
                f"({new_wall / old_wall:.2f}x)"
            )
        elif old_wall != new_wall:
            notes.append(f"wall time {old_wall}s -> {new_wall}s")
    for key in sorted(set(old_meta) | set(new_meta)):
        if key == "wall_s":
            continue
        if old_meta.get(key) != new_meta.get(key):
            notes.append(f"meta[{key}]: {old_meta.get(key)!r} -> {new_meta.get(key)!r}")
    return notes


@dataclass(slots=True)
class DiffReport:
    """Full comparison of two results directories."""

    old_dir: str
    new_dir: str
    entries: List[ReportDiff]

    def by_status(self, status: str) -> List[ReportDiff]:
        return [entry for entry in self.entries if entry.status == status]

    @property
    def clean(self) -> bool:
        """True when nothing changed or went missing."""
        return not any(entry.fails for entry in self.entries)

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def render(self) -> List[str]:
        """Human-readable report, failures first."""
        lines = [f"bench diff: {self.old_dir} -> {self.new_dir}"]
        order = {"changed": 0, "missing": 1, "added": 2, "identical": 3}
        for entry in sorted(
            self.entries, key=lambda e: (order.get(e.status, 9), e.name)
        ):
            marker = {"changed": "!", "missing": "-", "added": "+"}.get(
                entry.status, "="
            )
            suffix = f" ({entry.drift_count} drifts)" if entry.drift_count else ""
            lines.append(f"{marker} {entry.name}: {entry.status}{suffix}")
            shown = entry.notes[:MAX_DETAIL_LINES]
            lines.extend(f"    {note}" for note in shown)
            if len(entry.notes) > len(shown):
                lines.append(f"    ... and {len(entry.notes) - len(shown)} more")
        changed, missing = self.by_status("changed"), self.by_status("missing")
        added = self.by_status("added")
        lines.append(
            f"{len(self.entries)} reports: "
            f"{len(self.by_status('identical'))} identical, "
            f"{len(changed)} changed, {len(missing)} missing, {len(added)} added"
        )
        return lines


def diff_results(
    old_dir: "str | Path", new_dir: "str | Path", tolerance: float = 0.0
) -> DiffReport:
    """Compare two ``benchmarks/results`` directories report-by-report.

    ``tolerance`` relaxes the comparison for *numeric* table cells: a
    new value within ``tolerance * |old|`` (relative) of the old one is
    not drift.  The default ``0.0`` keeps the historical exact-identity
    semantics; perf-smoke CI passes e.g. ``0.25`` so throughput numbers
    may wobble while structural cells (names, counts, booleans) stay
    byte-exact.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    old_docs = load_results(old_dir)
    new_docs = load_results(new_dir)
    entries: List[ReportDiff] = []
    for name in sorted(set(old_docs) | set(new_docs)):
        if name not in new_docs:
            entries.append(
                ReportDiff(name=name, status="missing", notes=["absent in new run"])
            )
            continue
        if name not in old_docs:
            entries.append(
                ReportDiff(name=name, status="added", notes=["new report"])
            )
            continue
        notes, drifts = _diff_tables(old_docs[name], new_docs[name], tolerance)
        notes.extend(_meta_notes(old_docs[name], new_docs[name]))
        entries.append(
            ReportDiff(
                name=name,
                status="changed" if drifts else "identical",
                notes=notes,
                drift_count=drifts,
            )
        )
    return DiffReport(old_dir=str(old_dir), new_dir=str(new_dir), entries=entries)
