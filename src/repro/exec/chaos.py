"""Deterministic fault injection for the exec engine's recovery paths.

Testing crash tolerance with real crashes is the only honest way to do
it, but real crashes must be *scheduled*, not random, or the test
suite becomes the flaky thing it is guarding against.  This module
injects three failure modes on a fixed per-task schedule:

* ``crash`` — the worker process dies mid-task (``os._exit``), the
  way an OOM kill or a segfaulting extension would take it down;
* ``hang``  — the task stalls past any reasonable ``task_timeout``
  before proceeding (a deadlocked or runaway cell);
* ``raise`` — the task raises :class:`ChaosError` (an ordinary worker
  exception).

Determinism across *retries* needs shared state: a retried task runs
in a fresh process, so "fail the first attempt, succeed on the
second" is coordinated through a per-task attempt counter on disk
(one ``O_APPEND`` byte per attempt — atomic, ordered, inherited by
every fork).  Build wrapped tasks with :func:`chaos_tasks` (or wrap
individual callables with :meth:`ChaosPlan.wrap`) and hand them to
:func:`repro.exec.pool.run_tasks` exactly like the real ones.

Safety: a ``crash`` only calls ``os._exit`` when it is running in a
*forked child*.  In serial (or degraded-serial) execution the same
schedule raises :class:`ChaosError` instead — injecting a real crash
into the parent would take the test runner down with it.

:class:`TruncatingCache` covers the third failure family from the
issue: torn cache writes.  It is a :class:`~repro.exec.cache.ResultCache`
that truncates scheduled stores mid-file, so tests can prove that
``get`` quarantines-by-miss and ``repro cache verify`` quarantines
explicitly, and that a re-run recomputes and re-stores the entry.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .cache import ResultCache

__all__ = [
    "CRASH_EXIT_CODE",
    "ChaosError",
    "ChaosEvent",
    "ChaosPlan",
    "TruncatingCache",
    "chaos_tasks",
]

#: Exit status of an injected worker crash — distinctive on purpose,
#: so a chaos-test failure log reads unambiguously.
CRASH_EXIT_CODE = 87


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` (or in-process crash) throws."""


@dataclass(frozen=True, slots=True)
class ChaosEvent:
    """Misbehave on task ``index`` for its first ``attempts`` attempts.

    ``kind`` is ``"crash"``, ``"hang"`` or ``"raise"``.  With
    ``attempts=1`` the first attempt fails and a retry succeeds; with
    ``attempts`` at or beyond the retry budget the task fails for
    good and must surface as a :class:`~repro.exec.TaskError`.
    """

    kind: str
    index: int
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "hang", "raise"):
            raise ValueError(
                f"unknown chaos kind {self.kind!r} (use crash | hang | raise)"
            )


@dataclass(frozen=True, slots=True)
class ChaosPlan:
    """A fixed schedule of :class:`ChaosEvent` injections.

    ``hang_s`` is how long a ``hang`` stalls before letting the task
    proceed — set it beyond the engine's ``task_timeout`` to exercise
    the kill-and-retry path, or below it to model a slow-but-fine task.
    """

    events: Tuple[ChaosEvent, ...] = ()
    hang_s: float = 30.0

    def event_for(self, index: int) -> Optional[ChaosEvent]:
        for event in self.events:
            if event.index == index:
                return event
        return None

    def wrap(
        self,
        index: int,
        fn: Callable[[], Any],
        state_dir: "str | Path",
    ) -> Callable[[], Any]:
        """One callable that misbehaves per this plan, then runs ``fn``."""
        return functools.partial(
            _chaos_body, fn, index, self, str(state_dir), os.getpid()
        )


def chaos_tasks(
    tasks: Sequence[Callable[[], Any]],
    plan: ChaosPlan,
    state_dir: "str | Path",
) -> List[Callable[[], Any]]:
    """Wrap every task with the plan's scheduled misbehaviour.

    ``state_dir`` holds the per-task attempt counters; use a fresh
    (tmp) directory per run — reusing one replays a *later* point in
    the schedule.
    """
    root = Path(state_dir)
    root.mkdir(parents=True, exist_ok=True)
    return [plan.wrap(index, task, root) for index, task in enumerate(tasks)]


def _attempt_number(state_dir: str, index: int) -> int:
    """Bump and read the cross-process attempt counter (1-based)."""
    path = os.path.join(state_dir, f"task-{index}.attempts")
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, b"x")
        return os.fstat(fd).st_size
    finally:
        os.close(fd)


def _chaos_body(
    fn: Callable[[], Any],
    index: int,
    plan: ChaosPlan,
    state_dir: str,
    parent_pid: int,
) -> Any:
    os.makedirs(state_dir, exist_ok=True)
    attempt = _attempt_number(state_dir, index)
    event = plan.event_for(index)
    if event is not None and attempt <= event.attempts:
        if event.kind == "crash":
            if os.getpid() != parent_pid:
                os._exit(CRASH_EXIT_CODE)
            # Serial execution: a real exit would kill the caller, so
            # the schedule degrades to an ordinary raised failure.
            raise ChaosError(
                f"injected crash (in-process) on task {index} "
                f"attempt {attempt}"
            )
        if event.kind == "raise":
            raise ChaosError(
                f"injected failure on task {index} attempt {attempt}"
            )
        time.sleep(plan.hang_s)  # kind == "hang": stall, then proceed
    return fn()


class TruncatingCache(ResultCache):
    """A :class:`ResultCache` whose scheduled stores are torn mid-write.

    ``truncate_stores`` names 1-based store ordinals: the Nth ``put``
    on this instance writes normally and is then truncated to half its
    bytes, simulating a writer killed mid-flush.  Reads and the
    ``verify`` pass must treat such an entry as corrupt, never as data.
    """

    def __init__(
        self,
        root: "str | Path",
        *,
        truncate_stores: Iterable[int] = (),
        salt: Optional[str] = None,
    ) -> None:
        super().__init__(root, salt=salt)
        self.truncate_stores = frozenset(truncate_stores)
        self.torn_keys: List[str] = []
        self._store_ordinal = 0

    def put(self, key: str, value: Any) -> None:
        self._store_ordinal += 1
        super().put(key, value)
        if self._store_ordinal in self.truncate_stores:
            path = self.path_for(key)
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
            self.torn_keys.append(key)
