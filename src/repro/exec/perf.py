"""The core perf benchmark suite: the timebase fast path, measured.

This module gives the repo a *perf trajectory*: a small, fixed set of
representative runs (AO-ARRoW, CA-ARRoW, slotted Aloha and the ABS SST
election at several ``n`` / ``R``), each executed on both internal
timebases —

* ``fraction``: the historical always-correct exact-rational path, and
* ``lattice``: the scaled-integer tick path of
  :class:`~repro.core.timebase.TickLattice` —

with an inline parity assertion that the two executions are
observably identical (events, deliveries with exact delivery times,
channel counters, final clock).  The result is one report document in
the ``benchmarks/results`` form (``{"name", "preamble", "tables",
"meta"}``), so ``repro bench diff --tolerance`` can police events/sec
regressions across PRs while the deterministic columns stay
byte-exact.

Two tables:

* ``cases`` — deterministic identity: event counts, deliveries,
  the detected lattice denominator, parity.  Exact at any tolerance.
* ``speedup`` — one row: the geometric mean of the per-case
  lattice-over-fraction wall-time ratios.  Numeric, compared within
  ``--tolerance`` by CI.  The ratio (not events/sec) is the
  *machine-portable* regression signal — absolute throughput differs
  by far more than any sane tolerance between a dev box and a CI
  runner — and the geomean (not the per-case ratios) is the
  *noise-proof* one: individual short quick-mode cases wobble past
  25% on a busy runner, while averaging across six cases is stable
  and still drops when the fast path rots.

Per-case speedups and absolute events/sec (plus wall seconds,
repeats, the quick flag) ride in the identity-exempt ``meta`` block:
reported, rendered for humans, never failed on.

Entry points: ``repro bench perf`` (CLI) and
``benchmarks/bench_perf_core.py`` (pytest-benchmark wrapper) both call
:func:`run_perf` / :func:`write_report`.
"""

from __future__ import annotations

import json
import pathlib
import sys
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ADAPTIVE_WIN_MIN",
    "DEFAULT_CASES",
    "FLEET_CASES",
    "FLEET_WIN_MIN",
    "PerfCase",
    "geometric_mean_speedup",
    "run_perf",
    "write_report",
]

#: Report name — keys the results artifact and the CI baseline.
REPORT_NAME = "perf_core"


@dataclass(frozen=True)
class PerfCase:
    """One benchmarked configuration.

    ``horizon`` / ``quick_horizon`` bound dynamic runs; SST cases run
    ``elections`` / ``quick_elections`` back-to-back elections instead
    (one ABS election is far too short to time on its own).  The quick
    variants keep CI smoke runs under a second per case while the row
    set — and therefore the diffable table shape — stays identical to
    a full run.
    """

    name: str
    algorithm: str
    n: int
    max_slot: str = "2"
    rho: Optional[str] = "1/2"
    seed: int = 0
    horizon: int = 2500
    quick_horizon: int = 600
    kind: str = "dynamic"  # "dynamic" | "sst"
    elections: int = 40
    quick_elections: int = 8
    schedule: str = "worst"
    #: Fleet cases only: minimum policed batch-over-object speedup.
    #: ``None`` means the case is informational — its ``win`` cell stays
    #: "-" and ``repro bench diff`` never fails on it.
    win_min: Optional[float] = None


#: The default lattice-eligible suite (the acceptance set for the
#: tentpole's >= 3x events/sec criterion).  All cases use the ``worst``
#: cyclic schedule, which declares a time lattice, so ``timebase="auto"``
#: resolves to the tick path.
DEFAULT_CASES: Tuple[PerfCase, ...] = (
    PerfCase(name="ao-arrow-n8-R2", algorithm="ao-arrow", n=8),
    PerfCase(name="ca-arrow-n8-R2", algorithm="ca-arrow", n=8),
    PerfCase(
        name="ca-arrow-n16-R2",
        algorithm="ca-arrow",
        n=16,
        horizon=1500,
        quick_horizon=400,
    ),
    PerfCase(
        name="ca-arrow-n8-R5/2", algorithm="ca-arrow", n=8, max_slot="5/2"
    ),
    PerfCase(name="aloha-n8-R2", algorithm="aloha", n=8, seed=3),
    # 16 quick elections, not fewer: the speedup ratio of a shorter
    # batch is noisy enough to trip the CI diff tolerance either way.
    PerfCase(
        name="abs-sst-n64-R2",
        algorithm="abs",
        n=64,
        rho=None,
        kind="sst",
        quick_elections=16,
    ),
)


#: Fleet-scaling suite: lattice-eligible fleet scenarios at
#: n = 1e2 .. 1e5 stations, run once on each engine (object vs the
#: vectorized batch kernel) with parity asserted.  The n=1e4 rows are
#: the headline: each ``win`` cell is "yes" only while the batch kernel
#: beats the object loop by that case's ``win_min`` — an exact-compare
#: cell, so ``repro bench diff`` fails the moment the vectorized win
#: rots, at any tolerance.  The non-adaptive token ring (``rrw``) is
#: held to :data:`FLEET_WIN_MIN`; the adaptive families (ARRoW, ABS) run
#: masked-update programs with bounded per-tick sub-step chains and more
#: synchronization, so their policed floor is the ISSUE's
#: :data:`ADAPTIVE_WIN_MIN`.  Horizons shrink as n grows to hold events
#: per case (and the object-path wall time) roughly constant.

#: The policed batch-over-object speedup at the non-adaptive fleet
#: headline (rrw, n=1e4).
FLEET_WIN_MIN = 10.0

#: The policed floor for the adaptive-family headlines (n=1e4): the
#: ISSUE's >= 5x acceptance criterion for ARRoW and ABS under the
#: masked-update batch programs.
ADAPTIVE_WIN_MIN = 5.0

FLEET_CASES: Tuple[PerfCase, ...] = (
    PerfCase(name="fleet-rrw-n1e2", algorithm="rrw", n=100,
             schedule="sync", horizon=1200, quick_horizon=300),
    PerfCase(name="fleet-rrw-n1e3", algorithm="rrw", n=1_000,
             schedule="sync", horizon=150, quick_horizon=50),
    PerfCase(name="fleet-rrw-n1e4", algorithm="rrw", n=10_000,
             schedule="sync", horizon=16, quick_horizon=12,
             win_min=FLEET_WIN_MIN),
    PerfCase(name="fleet-rrw-n1e5", algorithm="rrw", n=100_000,
             schedule="sync", horizon=6, quick_horizon=2),
    PerfCase(name="fleet-ao-arrow-n1e3", algorithm="ao-arrow", n=1_000,
             schedule="sync", horizon=150, quick_horizon=50),
    PerfCase(name="fleet-ao-arrow-n1e4", algorithm="ao-arrow", n=10_000,
             schedule="sync", horizon=24, quick_horizon=20,
             win_min=ADAPTIVE_WIN_MIN),
    PerfCase(name="fleet-abs-n1e3", algorithm="abs", n=1_000,
             schedule="sync", rho=None, horizon=150, quick_horizon=50),
    PerfCase(name="fleet-abs-n1e4", algorithm="abs", n=10_000,
             schedule="sync", rho=None, horizon=16, quick_horizon=12,
             win_min=ADAPTIVE_WIN_MIN),
)


def _case_spec(case: PerfCase):
    from ..scenarios import ScenarioSpec

    return ScenarioSpec(
        algorithm=case.algorithm,
        n=case.n,
        max_slot=case.max_slot,
        schedule=case.schedule,
        rho=case.rho,
        seed=case.seed,
        horizon=max(case.horizon, 1),
    )


def _stats_tuple(sim) -> Tuple[Any, ...]:
    stats = sim.channel.stats
    return (
        stats.transmissions,
        stats.successes,
        stats.collisions,
        stats.control_transmissions,
        stats.busy_time,
        stats.success_time,
    )


def _run_dynamic(case: PerfCase, timebase: str, horizon: int):
    """One timed dynamic run; returns (fingerprint, events, wall_s).

    The engine is pinned to the object loop: this suite isolates the
    timebase effect, and letting ``engine="auto"`` promote eligible
    cases to the batch kernel would fold the vectorization win into the
    fraction-vs-lattice ratio.  The batch kernel has its own suite
    (:data:`FLEET_CASES`).
    """
    spec = _case_spec(case)
    sim = spec.build(timebase=timebase, engine="object")
    began = perf_counter()
    sim.run(until_time=horizon)
    wall = perf_counter() - began
    sim.channel.drain_all(sim.now)
    fingerprint = (
        sim.events_processed,
        sim.now,
        sim.total_backlog,
        sim.trace.max_backlog,
        tuple(p.delivered_time for p in sim.delivered_packets),
        _stats_tuple(sim),
    )
    return fingerprint, sim.events_processed, wall, sim.timebase


def _run_sst(case: PerfCase, timebase: str, elections: int):
    """``elections`` back-to-back ABS elections, timed as one sample."""
    spec = _case_spec(case)
    events = 0
    ends = []
    slots = []
    began = perf_counter()
    for _ in range(elections):
        sim = spec.build(timebase=timebase, engine="object")
        end = sim.run_until_success(max_events=5_000_000)
        events += sim.events_processed
        ends.append(end)
        slots.append(sim.max_slots_elapsed())
    wall = perf_counter() - began
    fingerprint = (events, tuple(ends), tuple(slots))
    return fingerprint, events, wall, sim.timebase


def _run_case(
    case: PerfCase, timebase: str, quick: bool, repeats: int
):
    """Best-of-``repeats`` timing for one case on one timebase."""
    best = None
    for _ in range(max(repeats, 1)):
        if case.kind == "sst":
            sample = _run_sst(
                case,
                timebase,
                case.quick_elections if quick else case.elections,
            )
        else:
            sample = _run_dynamic(
                case,
                timebase,
                case.quick_horizon if quick else case.horizon,
            )
        if best is None or sample[2] < best[2]:
            best = sample
        if best is not None and sample[0] != best[0]:
            raise RuntimeError(
                f"{case.name}: non-deterministic repeat on the "
                f"{timebase} timebase"
            )
    return best


def _run_fleet(case: PerfCase, engine: str, horizon: int):
    """One timed fleet run on one engine; construction excluded.

    ``sim.run(until_time=0)`` forces station setup (every station's
    first slot) before the clock starts: that cost is identical for
    both engines and, at n=1e5, would otherwise swamp the short
    horizons these cases use.  The timed section still includes the
    batch kernel's array load/store — that is a real per-run cost of
    the fast path and the reported events/sec must own it.
    """
    spec = _case_spec(case)
    sim = spec.build(engine=engine)
    sim.run(until_time=0)
    began = perf_counter()
    sim.run(until_time=horizon)
    wall = perf_counter() - began
    sim.channel.drain_all(sim.now)
    fingerprint = (
        sim.events_processed,
        sim.now,
        sim.total_backlog,
        sim.trace.max_backlog,
        tuple(p.delivered_time for p in sim.delivered_packets),
        _stats_tuple(sim),
    )
    return fingerprint, sim.events_processed, wall, sim.engine


def _run_fleet_case(case: PerfCase, engine: str, quick: bool, repeats: int):
    """Best-of-``repeats`` timing for one fleet case on one engine."""
    horizon = case.quick_horizon if quick else case.horizon
    best = None
    for _ in range(max(repeats, 1)):
        sample = _run_fleet(case, engine, horizon)
        if best is None or sample[2] < best[2]:
            best = sample
        if sample[0] != best[0]:
            raise RuntimeError(
                f"{case.name}: non-deterministic repeat on the "
                f"{engine} engine"
            )
    return best


def _measure_fleet(
    suite: Sequence[PerfCase], quick: bool, repeats: int
) -> List[Dict[str, Any]]:
    """Object-vs-batch measurements with per-case parity asserted."""
    measured: List[Dict[str, Any]] = []
    for case in suite:
        obj_fp, events, obj_s, obj_engine = _run_fleet_case(
            case, "object", quick, repeats
        )
        bat_fp, bat_events, bat_s, bat_engine = _run_fleet_case(
            case, "batch", quick, repeats
        )
        if obj_fp != bat_fp or events != bat_events:
            raise RuntimeError(
                f"{case.name}: batch/object parity violation — the "
                "vectorized kernel changed the observable execution"
            )
        if (obj_engine, bat_engine) != ("object", "batch"):
            raise RuntimeError(
                f"{case.name}: expected object vs batch, got "
                f"{obj_engine} vs {bat_engine}"
            )
        speedup = round(obj_s / bat_s, 2)
        win = "-"
        if case.win_min is not None:
            win = "yes" if speedup >= case.win_min else f"NO ({speedup}x)"
        measured.append(
            {
                "case": case.name,
                "algorithm": case.algorithm,
                "n": case.n,
                "R": case.max_slot,
                "work": (
                    f"horizon {case.quick_horizon if quick else case.horizon}"
                ),
                "events": events,
                "object_s": obj_s,
                "batch_s": bat_s,
                "object_evps": round(events / obj_s),
                "batch_evps": round(events / bat_s),
                "speedup": speedup,
                "win_min": (
                    "-" if case.win_min is None else f">={case.win_min:g}x"
                ),
                "win": win,
            }
        )
    return measured


def _measure_exec_overhead(quick: bool, repeats: int) -> Dict[str, Any]:
    """The engine's bookkeeping tax: ``run_tasks(jobs=1)`` vs a bare loop.

    The resilience machinery (retry accounting, health ledger, result
    callbacks) must stay effectively free on the serial fast path — CI
    asserts the ratio reported here stays under 5%.  Tasks are small
    real simulations, not no-ops: the policed quantity is the tax on
    realistic work, and a no-op loop would measure pure dispatch (noise
    on any shared runner).
    """
    from ..scenarios import ScenarioSpec
    from .pool import run_tasks

    # Enough work that scheduler noise cannot read as bookkeeping: the
    # policed ratio divides by raw_s, so raw_s must dwarf timer jitter.
    horizon = 300 if quick else 500
    count = 12 if quick else 16
    repeats = max(repeats, 3)
    spec = ScenarioSpec(
        algorithm="ca-arrow",
        n=4,
        max_slot="2",
        schedule="worst",
        rho="1/2",
        seed=0,
        horizon=horizon,
    )

    def one_run() -> int:
        sim = spec.build()
        sim.run(until_time=horizon)
        return sim.events_processed

    tasks = [one_run] * count
    raw_s = engine_s = best_ratio = None
    # Noise defenses, because the gate is one-sided (fail only when
    # overhead > 5%) while shared runners jitter far more than the true
    # cost (~0.1%).  GC pauses (the sims allocate heavily) are
    # milliseconds — enough to masquerade as bookkeeping — so GC is
    # collected before and disabled during each timed section.  Machine
    # speed also drifts *between* sections (frequency scaling, noisy
    # neighbours), so each repeat times raw/engine/raw back to back and
    # compares the engine against the *slower* raw sandwich half: a
    # spike that slows the engine section also shows in a neighbouring
    # raw section, while a sustained regression inflates every repeat
    # and still trips the gate.  Best repeat wins.
    import gc

    gc_was_enabled = gc.isenabled()

    def timed_raw():
        gc.collect()
        gc.disable()
        began = perf_counter()
        values = [task() for task in tasks]
        elapsed = perf_counter() - began
        gc.enable()
        return values, elapsed

    try:
        for _ in range(max(repeats, 3)):
            raw_values, raw_before = timed_raw()

            gc.collect()
            gc.disable()
            began = perf_counter()
            run = run_tasks(tasks, jobs=1)
            engine_elapsed = perf_counter() - began
            gc.enable()
            if run.values != raw_values:
                raise RuntimeError(
                    "exec overhead probe: engine and bare loop disagreed"
                )

            _, raw_after = timed_raw()
            denominator = max(raw_before, raw_after)
            ratio = engine_elapsed / denominator
            if best_ratio is None or ratio < best_ratio:
                best_ratio = ratio
                raw_s, engine_s = denominator, engine_elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "tasks": count,
        "raw_s": round(raw_s, 4),
        "engine_s": round(engine_s, 4),
        "overhead": round(max(0.0, best_ratio - 1.0), 4),
    }


def geometric_mean_speedup(rows: Sequence[Dict[str, Any]]) -> float:
    """Geometric mean of per-case speedups (ratio of ratios safe)."""
    product = 1.0
    for row in rows:
        product *= row["speedup"]
    return product ** (1.0 / len(rows)) if rows else 0.0


def run_perf(
    cases: Optional[Sequence[PerfCase]] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
    fleet_cases: Optional[Sequence[PerfCase]] = None,
) -> Dict[str, Any]:
    """Run the suite; returns the results-form report document.

    Every case is executed on both timebases (and every fleet case on
    both engines) and the observable executions are asserted identical
    before any number is reported — a perf result that broke parity
    would be worthless.  Pass ``fleet_cases=()`` to skip the fleet
    block (e.g. when benchmarking a custom case list).
    """
    suite = tuple(DEFAULT_CASES if cases is None else cases)
    if fleet_cases is None:
        # A custom `cases` list opts out of the default fleet block too:
        # tests and ad-hoc benchmarking pass tiny cases and should not
        # pay for 1e5-station runs they never asked for.
        fleet_suite = FLEET_CASES if cases is None else ()
    else:
        fleet_suite = tuple(fleet_cases)
    if repeats is None:
        # Even quick mode takes best-of-2: a single noisy sample can
        # swing the speedup ratio past any reasonable CI tolerance.
        repeats = 2 if quick else 3
    measured: List[Dict[str, Any]] = []
    for case in suite:
        frac_fp, events, frac_s, _ = _run_case(case, "fraction", quick, repeats)
        lat_fp, lat_events, lat_s, lattice = _run_case(
            case, "lattice", quick, repeats
        )
        if frac_fp != lat_fp or events != lat_events:
            raise RuntimeError(
                f"{case.name}: lattice/fraction parity violation — "
                "the fast timebase changed the observable execution"
            )
        if not lattice.is_lattice:
            raise RuntimeError(
                f"{case.name}: expected a tick lattice, got "
                f"{lattice.describe()}"
            )
        measured.append(
            {
                "case": case.name,
                "algorithm": case.algorithm,
                "n": case.n,
                "R": case.max_slot,
                "work": (
                    f"{case.quick_elections if quick else case.elections}"
                    " elections"
                    if case.kind == "sst"
                    else f"horizon {case.quick_horizon if quick else case.horizon}"
                ),
                "denominator": lattice.denominator,
                "events": events,
                "fraction_s": frac_s,
                "lattice_s": lat_s,
                "fraction_evps": round(events / frac_s),
                "lattice_evps": round(events / lat_s),
                "speedup": round(frac_s / lat_s, 2),
            }
        )

    fleet = _measure_fleet(fleet_suite, quick, repeats)

    case_rows = [
        [
            row["case"],
            row["algorithm"],
            row["n"],
            row["R"],
            row["work"],
            row["denominator"],
            row["events"],
            "object",
            "ok",
        ]
        for row in measured
    ]
    geomean = round(geometric_mean_speedup(measured), 2)
    tables: List[Dict[str, Any]] = [
        {
            "headers": [
                "case",
                "algorithm",
                "n",
                "R",
                "work",
                "D",
                "events",
                "engine",
                "parity",
            ],
            "rows": case_rows,
        },
        {
            "headers": ["case", "speedup"],
            "rows": [["geomean", geomean]],
        },
    ]
    if fleet:
        # The fleet table is all exact-compare cells: deterministic
        # event counts plus each headline's "win" marker next to the
        # exact floor it is policed against.  Machine-varying
        # throughput and speedups live in meta["fleet"].
        tables.append(
            {
                "headers": [
                    "case",
                    "algorithm",
                    "n",
                    "R",
                    "work",
                    "events",
                    "engines",
                    "parity",
                    "win_min",
                    "win",
                ],
                "rows": [
                    [
                        row["case"],
                        row["algorithm"],
                        row["n"],
                        row["R"],
                        row["work"],
                        row["events"],
                        "object/batch",
                        "ok",
                        row["win_min"],
                        row["win"],
                    ]
                    for row in fleet
                ],
            }
        )
    document: Dict[str, Any] = {
        "name": REPORT_NAME,
        "preamble": [
            "core perf suite: events/sec on the fraction vs tick-lattice "
            "timebase",
            "fleet suite: events/sec on the object vs vectorized batch "
            "engine at n = 1e2..1e5",
            "parity asserted per case: both paths produce identical "
            "executions",
            f"mode: {'quick (CI smoke)' if quick else 'full'}",
        ],
        "tables": tables,
        "meta": {
            "quick": quick,
            "repeats": repeats,
            "geomean_speedup": geomean,
            # Identity-exempt like everything else in meta; CI's
            # perf-smoke job asserts overhead stays under 5%.
            "exec_overhead": _measure_exec_overhead(quick, repeats),
            "wall_s": round(
                sum(r["fraction_s"] + r["lattice_s"] for r in measured)
                + sum(r["object_s"] + r["batch_s"] for r in fleet),
                3,
            ),
            "python": sys.version.split()[0],
            # Absolute throughput is a fact about the machine, not the
            # code — informational only, never diffed as drift.
            "throughput": {
                row["case"]: {
                    "fraction_ev/s": row["fraction_evps"],
                    "lattice_ev/s": row["lattice_evps"],
                    "speedup": row["speedup"],
                }
                for row in measured
            },
            "fleet": {
                row["case"]: {
                    "object_ev/s": row["object_evps"],
                    "batch_ev/s": row["batch_evps"],
                    "speedup": row["speedup"],
                }
                for row in fleet
            },
        },
    }
    return document


def _render_table(block: Dict[str, Any]) -> List[str]:
    headers = [str(h) for h in block["headers"]]
    rows = [[str(cell) for cell in row] for row in block["rows"]]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def render_report(document: Dict[str, Any]) -> List[str]:
    """Human-readable lines for one report document.

    Includes the (diff-exempt) per-case events/sec from ``meta`` —
    humans want the absolute numbers even though CI only polices the
    speedup ratios.
    """
    lines = list(document.get("preamble", []))
    for block in document.get("tables", []):
        lines.append("")
        lines.extend(_render_table(block))
    throughput = (document.get("meta") or {}).get("throughput") or {}
    if throughput:
        lines.append("")
        lines.extend(
            _render_table(
                {
                    "headers": ["case", "fraction_ev/s", "lattice_ev/s",
                                "speedup"],
                    "rows": [
                        [case, cell["fraction_ev/s"], cell["lattice_ev/s"],
                         cell["speedup"]]
                        for case, cell in throughput.items()
                    ],
                }
            )
        )
    fleet = (document.get("meta") or {}).get("fleet") or {}
    if fleet:
        lines.append("")
        lines.extend(
            _render_table(
                {
                    "headers": ["case", "object_ev/s", "batch_ev/s",
                                "speedup"],
                    "rows": [
                        [case, cell["object_ev/s"], cell["batch_ev/s"],
                         cell["speedup"]]
                        for case, cell in fleet.items()
                    ],
                }
            )
        )
    return lines


def write_report(
    document: Dict[str, Any], results_dir: "str | pathlib.Path"
) -> Tuple[pathlib.Path, pathlib.Path]:
    """Persist ``<name>.json`` + ``<name>.txt`` under ``results_dir``.

    The JSON mirror is exactly what :func:`repro.exec.diff_results`
    consumes; the text file is for humans and EXPERIMENTS.md links.
    """
    root = pathlib.Path(results_dir)
    root.mkdir(parents=True, exist_ok=True)
    name = document["name"]
    json_path = root / f"{name}.json"
    json_path.write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n"
    )
    txt_path = root / f"{name}.txt"
    txt_path.write_text("\n".join(render_report(document)) + "\n")
    return json_path, txt_path
