"""Text-based rendering: execution timelines and automaton diagrams."""

from .automata import (
    ABS_DIAGRAM,
    ALL_DIAGRAMS,
    AO_ARROW_DIAGRAM,
    CA_ARROW_DIAGRAM,
    AutomatonDiagram,
    Transition,
    render_all_text,
)
from .timeline import render_phases, render_timeline

__all__ = [
    "ABS_DIAGRAM",
    "ALL_DIAGRAMS",
    "AO_ARROW_DIAGRAM",
    "AutomatonDiagram",
    "CA_ARROW_DIAGRAM",
    "Transition",
    "render_all_text",
    "render_phases",
    "render_timeline",
]
