"""The paper's automaton diagrams (Figs. 3, 5, 6) as data + renderings.

Each diagram is described as an explicit transition table —
``(state) --[input]--> (state)`` with the emitted channel action — and
rendered either as fixed-width text or as Graphviz DOT (write the
``.dot`` out and run ``dot -Tpng`` wherever Graphviz exists; this repo
assumes no plotting stack).

The tables double as machine-checkable documentation: the conformance
tests assert that every state named here is exactly the state set the
implementation can reach, so the diagrams cannot silently drift from
the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class Transition:
    """One labelled edge of an automaton diagram."""

    source: str
    inputs: str       # channel feedback / local condition label
    target: str
    action: str       # what the station does in the next slot


@dataclass(frozen=True, slots=True)
class AutomatonDiagram:
    """A named automaton: states, start state, and labelled edges."""

    name: str
    figure: str
    start: str
    states: Tuple[str, ...]
    terminals: Tuple[str, ...]
    transitions: Tuple[Transition, ...]

    def to_text(self) -> str:
        """Fixed-width rendering of the transition table."""
        width_source = max(len(t.source) for t in self.transitions)
        width_inputs = max(len(t.inputs) for t in self.transitions)
        width_target = max(len(t.target) for t in self.transitions)
        lines = [
            f"{self.name}  ({self.figure})",
            f"start: {self.start}"
            + (f"   terminals: {', '.join(self.terminals)}" if self.terminals else ""),
            "",
        ]
        for t in self.transitions:
            lines.append(
                f"  {t.source.ljust(width_source)} --[{t.inputs.ljust(width_inputs)}]--> "
                f"{t.target.ljust(width_target)}  : {t.action}"
            )
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz DOT source for the diagram."""
        lines = [
            f'digraph "{self.name}" {{',
            "  rankdir=LR;",
            '  node [shape=box, fontname="Helvetica"];',
            f'  "{self.start}" [style=bold];',
        ]
        for terminal in self.terminals:
            lines.append(f'  "{terminal}" [shape=doubleoctagon];')
        for t in self.transitions:
            label = t.inputs.replace('"', "'")
            action = t.action.replace('"', "'")
            lines.append(
                f'  "{t.source}" -> "{t.target}" '
                f'[label="{label}\\n{action}"];'
            )
        lines.append("}")
        return "\n".join(lines)


ABS_DIAGRAM = AutomatonDiagram(
    name="ABS (Asymmetric Binary Search)",
    figure="Fig. 3 of the paper",
    start="wait_silence",
    states=("wait_silence", "listen_threshold", "transmitted"),
    terminals=("won", "eliminated"),
    transitions=(
        Transition("wait_silence", "busy", "wait_silence", "listen (box 1)"),
        Transition("wait_silence", "silence", "listen_threshold",
                   "arm 3R / 4R^2+3R by next ID bit (boxes 2-4)"),
        Transition("wait_silence", "ack", "eliminated", "someone won SST"),
        Transition("listen_threshold", "silence < threshold",
                   "listen_threshold", "listen"),
        Transition("listen_threshold", "silence = threshold",
                   "transmitted", "transmit one slot (box 5)"),
        Transition("listen_threshold", "busy", "eliminated", "exit (box 6)"),
        Transition("listen_threshold", "ack", "eliminated", "someone won SST"),
        Transition("transmitted", "ack", "won", "exit with winning (box 7)"),
        Transition("transmitted", "busy", "wait_silence",
                   "collision: next phase (box 1)"),
    ),
)

AO_ARROW_DIAGRAM = AutomatonDiagram(
    name="AO-ARRoW",
    figure="Fig. 5 of the paper",
    start="observe",
    states=("observe", "election", "drain", "sync_wait", "sync_tx"),
    terminals=(),
    transitions=(
        Transition("observe", "queue>0 & wait=0 at round boundary",
                   "election", "run ABS with packet transmissions (box 2)"),
        Transition("observe", "ack then silence", "observe",
                   "round boundary: wait -= 1 (boxes 3/6/8)"),
        Transition("observe", "silence x threshold", "sync_wait",
                   "long silence: wait <- 0 (box 7; needs queue>0)"),
        Transition("observe", "activity after crossed threshold",
                   "election", "sync signal heard: rejoin (box 9 edge)"),
        Transition("sync_wait", "silence x R*threshold", "sync_tx",
                   "transmit the sync packet (box 9)"),
        Transition("sync_wait", "activity", "election",
                   "someone signalled first"),
        Transition("sync_tx", "ack | busy", "election",
                   "everyone rejoins together"),
        Transition("election", "ABS won, queue>0", "drain",
                   "transmit all packets (box 4)"),
        Transition("election", "ABS won, queue empty", "observe",
                   "wait <- n-1 (box 6)"),
        Transition("election", "ABS eliminated", "observe",
                   "loser listens for the round to end (box 5)"),
        Transition("drain", "ack, queue>0", "drain", "next packet"),
        Transition("drain", "ack, queue empty", "observe",
                   "wait <- n-1 (box 6)"),
    ),
)

CA_ARROW_DIAGRAM = AutomatonDiagram(
    name="CA-ARRoW",
    figure="Fig. 6 of the paper",
    start="wait_end",
    states=("wait_end", "gap", "transmitting"),
    terminals=(),
    transitions=(
        Transition("wait_end", "activity", "wait_end", "listen; mark activity"),
        Transition("wait_end", "activity then silence, next != me",
                   "wait_end", "turn += 1"),
        Transition("wait_end", "activity then silence, next = me",
                   "gap", "turn += 1; count 2R slots"),
        Transition("gap", "silence x 2R", "transmitting",
                   "transmit packets, or one empty signal"),
        Transition("gap", "activity", "gap", "restart the count"),
        Transition("transmitting", "ack, queue>0", "transmitting",
                   "next packet"),
        Transition("transmitting", "ack, done", "wait_end",
                   "turn += 1; fall silent"),
    ),
)

ALL_DIAGRAMS: Dict[str, AutomatonDiagram] = {
    "abs": ABS_DIAGRAM,
    "ao-arrow": AO_ARROW_DIAGRAM,
    "ca-arrow": CA_ARROW_DIAGRAM,
}


def render_all_text() -> str:
    """Every diagram, as one text document."""
    return "\n\n".join(d.to_text() for d in ALL_DIAGRAMS.values())
