"""ASCII timeline rendering of executions (Figs. 2 and 4 of the paper).

No plotting stack is assumed: schedules render as fixed-width text,
one lane per station, glyph-coded per slot:

====== ==========================================
glyph  meaning
====== ==========================================
``.``  listening, channel silent
``b``  listening, channel busy
``A``  listening, acknowledgment heard
``#``  transmitting, collided / unacknowledged
``*``  transmitting, acknowledged (success)
``|``  slot boundary
====== ==========================================

The Fig. 2 bench prints a synchronous and an asynchronous execution of
three stations side by side; the Fig. 4 bench renders AO-ARRoW's
phase/subphase segmentation as a second annotation row.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from ..core.feedback import Feedback
from ..core.timebase import Time, TimeLike, as_time
from ..core.trace import SlotRecord, Trace
from ..analysis.stability import PhaseSegment


def _glyph(record: SlotRecord) -> str:
    if record.action.is_transmit:
        return "*" if record.feedback is Feedback.ACK else "#"
    if record.feedback is Feedback.ACK:
        return "A"
    if record.feedback is Feedback.BUSY:
        return "b"
    return "."


def _column(t: Fraction, t0: Fraction, t1: Fraction, width: int) -> int:
    if t1 <= t0:
        return 0
    position = (t - t0) / (t1 - t0) * width
    return max(0, min(width, int(position)))


def render_timeline(
    trace: Trace,
    stations: Optional[Sequence[int]] = None,
    start: TimeLike = 0,
    end: Optional[TimeLike] = None,
    width: int = 96,
) -> str:
    """Render recorded slots as one fixed-width lane per station.

    Requires the trace to have been recorded with ``record_slots=True``.
    Slots outside ``[start, end]`` are clipped; ``end`` defaults to the
    trace horizon.
    """
    if not trace.slots:
        return "(empty trace — record_slots was off or nothing ran)"
    t0 = as_time(start)
    t1 = as_time(end) if end is not None else trace.horizon()
    ids = sorted(stations if stations is not None else {s.station_id for s in trace.slots})

    lanes: Dict[int, List[str]] = {sid: [" "] * (width + 1) for sid in ids}
    for record in trace.slots:
        if record.station_id not in lanes:
            continue
        if record.interval.end <= t0 or record.interval.start >= t1:
            continue
        a = _column(record.interval.start, t0, t1, width)
        b = _column(record.interval.end, t0, t1, width)
        lane = lanes[record.station_id]
        glyph = _glyph(record)
        for column in range(a, max(b, a + 1)):
            lane[column] = glyph
        lane[a] = "|"

    ruler = [" "] * (width + 1)
    marks = 8
    header_positions = []
    for k in range(marks + 1):
        t = t0 + (t1 - t0) * k / marks
        column = _column(t, t0, t1, width)
        ruler[column] = "+"
        header_positions.append((column, t))
    ruler_line = "t     " + "".join(ruler)
    labels = [" "] * (width + 12)
    for column, t in header_positions:
        text = f"{float(t):g}"
        for offset, ch in enumerate(text):
            if 6 + column + offset < len(labels):
                labels[6 + column + offset] = ch
    label_line = "".join(labels).rstrip()

    lines = [label_line, ruler_line]
    for sid in ids:
        lines.append(f"s{sid:<4d} " + "".join(lanes[sid]).rstrip())
    lines.append("")
    lines.append("legend: .=listen/silent  b=listen/busy  A=listen/ack  "
                 "#=transmit/collided  *=transmit/acked  |=slot boundary")
    return "\n".join(lines)


def render_phases(
    phases: Sequence[PhaseSegment],
    start: TimeLike = 0,
    end: Optional[TimeLike] = None,
    width: int = 96,
) -> str:
    """Render AO-ARRoW phases (Fig. 4): rounds as winner digits, gaps blank.

    Each round paints its winner's id digit across its span; phase
    boundaries are marked ``[`` ``)``.
    """
    if not phases:
        return "(no phases detected)"
    t0 = as_time(start)
    t1 = as_time(end) if end is not None else max(p.end for p in phases)
    lane = [" "] * (width + 1)
    for phase in phases:
        a = _column(phase.start, t0, t1, width)
        b = _column(phase.end, t0, t1, width)
        for round_segment in phase.rounds:
            ra = _column(round_segment.start, t0, t1, width)
            rb = _column(round_segment.end, t0, t1, width)
            digit = str(round_segment.winner % 10)
            for column in range(ra, max(rb, ra + 1)):
                lane[column] = digit
        lane[a] = "["
        if b <= width:
            lane[b] = ")"
    header = (
        f"phases={len(phases)}  "
        f"rounds={sum(len(p.rounds) for p in phases)}  "
        f"(digits are round winners; [ ) phase boundaries)"
    )
    return header + "\n" + "".join(lane).rstrip()
