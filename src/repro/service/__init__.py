"""The transport-agnostic run-service layer.

Every way of executing simulations that this repository ships — the
CLI subcommands (``repro run`` / ``scenario run`` / ``grid`` /
``sst``), the benchmark drivers, and the ``repro serve`` HTTP daemon —
is a thin *transport* over one shared pipeline:

    :class:`RunRequest`  --plan()-->  :class:`RunPlan`  --execute()-->  :class:`RunResult`

* :mod:`repro.service.request` — :class:`RunRequest`: a frozen,
  JSON-round-trippable description of what to run (one
  :class:`~repro.scenarios.ScenarioSpec`, or a grid of them) plus
  :class:`RunOptions` (engine, timebase, jobs, cache, journal/resume,
  timeouts/retries, trace/artifact paths).  Validation is strict and
  eager, naming the offending field, exactly like the scenario layer.
* :mod:`repro.service.runner` — :func:`plan` resolves a request
  against the local environment (cache directory, journal default,
  registries) and :func:`execute` runs it on the :mod:`repro.exec`
  engine, returning a uniform :class:`RunResult` envelope: manifest,
  metrics, :class:`~repro.exec.RunHealth`, run-history id,
  artifact/trace paths, and cache/journal provenance.
* :mod:`repro.service.server` — ``repro serve``: a stdlib-only HTTP
  daemon accepting ``RunRequest`` JSON, streaming JSONL artifacts
  incrementally and serving repeat requests from the
  :class:`~repro.exec.ResultCache`.
* :mod:`repro.service.client` — ``repro submit``: the matching HTTP
  client.

Because the pipeline is one function, the transports cannot drift:
the CLI's golden fixtures pin the service's output byte-for-byte, and
the daemon's streamed artifacts are record-identical to a local
``repro run --emit-jsonl``.  See ``docs/service.md``.
"""

from .request import (
    COMMANDS,
    OPTION_FIELDS,
    SERVICE_SCHEMA_VERSION,
    RunOptions,
    RunRequest,
    options_from_args,
)
from .runner import RunPlan, RunResult, execute, plan
from .client import ServiceError, fetch_version, submit_request
from .server import create_server, serve_forever

__all__ = [
    "COMMANDS",
    "OPTION_FIELDS",
    "RunOptions",
    "RunPlan",
    "RunRequest",
    "RunResult",
    "SERVICE_SCHEMA_VERSION",
    "ServiceError",
    "create_server",
    "execute",
    "fetch_version",
    "options_from_args",
    "plan",
    "serve_forever",
    "submit_request",
]
