"""``repro serve`` — the run service over HTTP, stdlib only.

A long-lived :class:`~http.server.ThreadingHTTPServer` that accepts
:class:`~repro.service.RunRequest` JSON and executes it on the same
:func:`~repro.service.execute` pipeline the CLI uses.  No third-party
dependencies: requests ride ``http.server``, responses stream as
HTTP/1.1 chunked NDJSON (one JSON record per line, one chunk per
record, so clients see events as they happen).

Endpoints:

* ``GET /version`` — package version, git SHA, schema versions.
* ``GET /healthz`` — liveness probe.
* ``POST /run`` — a ``RunRequest`` document.  ``run`` requests stream
  the JSONL artifact (manifest, event records, summary) incrementally
  and finish with one ``{"type": "service", ...}`` envelope record;
  ``grid``/``sst`` requests execute first and then stream one
  ``{"type": "result", ...}`` record per cell plus the envelope.
  Malformed requests get a 400 whose ``error`` names the offending
  field, exactly like local validation.

Cache semantics: a repeated ``run`` submission is served straight from
the daemon's content-addressed :class:`~repro.exec.ResultCache`
(``X-Repro-Served-From: cache``, no simulation); grids reuse the
per-cell cache the CLI shares.  Every submission is recorded in the
daemon's run-history index (kind ``serve``) next to its cache, so
``repro history query --served cache`` audits what the daemon
answered without executing.

Client-supplied *paths* never touch the server's filesystem: incoming
options are sanitized — artifact/trace/csv/journal paths dropped, the
cache pinned to the daemon's own directory — before planning.  Bind to
localhost (the default) unless you trust the network; there is no
authentication layer.
"""

from __future__ import annotations

import io
import json
import pathlib
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, IO, Optional

from ..core.errors import ConfigurationError
from ..exec import MISS, JournalMismatch, ResultCache
from ..obs import git_sha, record_completion
from .request import SERVICE_SCHEMA_VERSION, RunRequest
from .runner import execute

__all__ = ["ServiceServer", "create_server", "serve_forever"]


def _version_payload() -> Dict[str, Any]:
    from .. import __version__
    from ..scenarios.spec import SCHEMA_VERSION as SCENARIO_SCHEMA_VERSION

    return {
        "version": __version__,
        "git_sha": git_sha(),
        "request_schema": SERVICE_SCHEMA_VERSION,
        "scenario_schema": SCENARIO_SCHEMA_VERSION,
    }


def _sanitize(request: RunRequest, cache_dir: str) -> RunRequest:
    """Strip every client-supplied path from an incoming request.

    The daemon decides where artifacts, caches and journals live; a
    remote request must not be able to write (or resume from) an
    arbitrary server path.  Tracing and progress are per-process
    facilities that make no sense over the wire, so they are dropped
    too.
    """
    return request.replace_options(
        emit_jsonl=None,
        trace=None,
        csv=None,
        journal=None,
        resume=False,
        progress=0,
        cache_dir=cache_dir,
        cache=request.command == "grid",
    )


class _ChunkedWriter:
    """A text sink framing each ``write()`` as one HTTP/1.1 chunk."""

    def __init__(self, raw: IO[bytes]) -> None:
        self._raw = raw

    def write(self, text: str) -> int:
        data = text.encode("utf-8")
        if data:
            self._raw.write(f"{len(data):X}\r\n".encode("ascii"))
            self._raw.write(data)
            self._raw.write(b"\r\n")
        return len(text)

    def flush(self) -> None:
        self._raw.flush()

    def finish(self) -> None:
        """Terminate the chunked body."""
        self._raw.write(b"0\r\n\r\n")
        self._raw.flush()


class _TeeStream:
    """Duplicate writes to the wire and an in-memory buffer (for caching)."""

    def __init__(self, primary: _ChunkedWriter, buffer: io.StringIO) -> None:
        self._primary = primary
        self._buffer = buffer

    def write(self, text: str) -> int:
        self._buffer.write(text)
        return self._primary.write(text)

    def flush(self) -> None:
        self._primary.flush()


class ServiceServer(ThreadingHTTPServer):
    """The daemon: one thread per connection, shared cache + history."""

    daemon_threads = True
    #: Serialize executions so concurrent submissions cannot interleave
    #: fork-pool scheduling; queued requests wait their turn (the
    #: streaming protocol keeps their connections alive meanwhile).
    execute_lock: threading.Lock

    def __init__(self, address, handler, cache_dir: str, quiet: bool) -> None:
        super().__init__(address, handler)
        self.cache_dir = cache_dir
        self.artifact_cache = ResultCache(cache_dir)
        self.history_db = pathlib.Path(cache_dir) / "history.db"
        self.quiet = quiet
        self.execute_lock = threading.Lock()


class ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    server: ServiceServer  # narrowed for type checkers

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _begin_stream(self, served_from: str) -> _ChunkedWriter:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Repro-Served-From", served_from)
        self.end_headers()
        return _ChunkedWriter(self.wfile)

    def _record_serve(
        self,
        name: str,
        *,
        status: str,
        cells: int,
        cache_hits: int,
        journal_hits: int = 0,
        wall_s: Optional[float] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Optional[int]:
        """One history row per submission (kind ``serve``), best-effort."""
        return record_completion(
            "serve",
            name,
            db_path=self.server.history_db,
            status=status,
            cells=cells,
            cache_hits=cache_hits,
            journal_hits=journal_hits,
            wall_s=wall_s,
            jobs=1,
            mode="daemon",
            git_sha=git_sha(),
            extra=extra,
        )

    # -- endpoints ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self.path == "/version":
            self._send_json(200, _version_payload())
        elif self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        else:
            self._send_json(
                404,
                {"error": f"no such endpoint {self.path!r} "
                          "(use /version, /healthz, or POST /run)"},
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if self.path != "/run":
            self._send_json(
                404, {"error": f"no such endpoint {self.path!r} (POST /run)"}
            )
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return
        body = self.rfile.read(length) if length else b""
        try:
            request = _sanitize(
                RunRequest.from_json(body.decode("utf-8")),
                self.server.cache_dir,
            )
        except (ConfigurationError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            if request.command == "run":
                self._serve_run(request)
            else:
                self._serve_bulk(request)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to answer

    # -- run: incremental artifact stream with artifact-level cache -----

    def _serve_run(self, request: RunRequest) -> None:
        cache = self.server.artifact_cache
        key: Optional[str] = None
        try:
            key = cache.key_for(
                {"kind": "serve-artifact", "request": request.canonical()}
            )
        except Exception:
            key = None
        stored = cache.get(key) if key is not None else MISS
        if isinstance(stored, dict) and "artifact" in stored:
            envelope = dict(stored.get("envelope") or {})
            envelope["served_from"] = "cache"
            chunks = self._begin_stream("cache")
            chunks.write(stored["artifact"])
            envelope["history_id"] = self._record_serve(
                envelope.get("name", request.spec.name),
                status=envelope.get("status", "ok"),
                cells=1,
                cache_hits=1,
                extra=_serve_extra(request, envelope),
            )
            chunks.write(json.dumps({"type": "service", **envelope}) + "\n")
            chunks.finish()
            return
        chunks = self._begin_stream("exec")
        buffer = io.StringIO()
        tee = _TeeStream(chunks, buffer)
        started = time.perf_counter()
        try:
            with self.server.execute_lock:
                result = execute(
                    request,
                    artifact_stream=tee,
                    history_db=self.server.history_db,
                )
        except Exception as exc:  # stream already open: report in-band
            chunks.write(
                json.dumps({"type": "error", "error": str(exc)}) + "\n"
            )
            chunks.finish()
            self._record_serve(
                request.spec.name,
                status="failed",
                cells=1,
                cache_hits=0,
                wall_s=time.perf_counter() - started,
                extra=_serve_extra(request, {"error": str(exc)}),
            )
            return
        envelope = result.envelope()
        if key is not None:
            cache.put(
                key, {"artifact": buffer.getvalue(), "envelope": envelope}
            )
        envelope["history_id"] = self._record_serve(
            result.name,
            status=result.status,
            cells=1,
            cache_hits=0,
            wall_s=result.wall_s,
            extra=_serve_extra(request, envelope),
        )
        chunks.write(json.dumps({"type": "service", **envelope}) + "\n")
        chunks.finish()

    # -- grid / sst: execute, then stream result records ----------------

    def _serve_bulk(self, request: RunRequest) -> None:
        try:
            with self.server.execute_lock:
                result = execute(request, history_db=self.server.history_db)
        except (ConfigurationError, JournalMismatch) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except Exception as exc:
            self._send_json(500, {"error": str(exc)})
            return
        envelope = result.envelope()
        chunks = self._begin_stream(result.served_from)
        if result.report is not None:
            for row in result.report.results:
                record = {"type": "result", **row.as_row()}
                if row.timebase:
                    record["engine"] = row.engine
                    record["timebase"] = row.timebase
                chunks.write(json.dumps(record) + "\n")
        envelope["history_id"] = self._record_serve(
            result.name,
            status=result.status,
            cells=(
                len(result.report.results) if result.report is not None else 1
            ),
            cache_hits=result.cache_hits,
            journal_hits=result.journal_hits,
            wall_s=result.wall_s,
            extra=_serve_extra(request, envelope),
        )
        chunks.write(json.dumps({"type": "service", **envelope}) + "\n")
        chunks.finish()


def _serve_extra(
    request: RunRequest, envelope: Dict[str, Any]
) -> Dict[str, Any]:
    """The ``extra`` payload of a serve history row (query filters)."""
    extra: Dict[str, Any] = {"command": request.command}
    for field in ("engine", "timebase", "engines"):
        if envelope.get(field):
            extra[field] = envelope[field]
    # Fall back to the *requested* engine/timebase (cache hits replay a
    # stored envelope that already carries the resolved values).
    extra.setdefault("engine", request.options.engine)
    extra.setdefault("timebase", request.options.timebase)
    return extra


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: str = ".repro-cache",
    *,
    quiet: bool = False,
) -> ServiceServer:
    """Bind the daemon (``port=0`` picks a free port; see ``server_port``)."""
    return ServiceServer((host, port), ServiceHandler, cache_dir, quiet)


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir: str = ".repro-cache",
    *,
    quiet: bool = False,
) -> int:
    """Run the daemon until interrupted — the ``repro serve`` body."""
    try:
        server = create_server(host, port, cache_dir, quiet=quiet)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot bind {host}:{port}: {exc}"
        ) from None
    print(
        f"repro serve: listening on http://{host}:{server.server_port} "
        f"(cache: {cache_dir})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
