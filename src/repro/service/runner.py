"""Resolve and execute a :class:`~repro.service.RunRequest`.

:func:`plan` turns a request into a :class:`RunPlan` — the request
plus everything resolved against the local environment: the
:class:`~repro.exec.ResultCache` instance, the journal path (including
the cache-adjacent ``--resume`` default), the grid cells.  :func:`execute`
runs the plan on the :mod:`repro.exec` engine and returns a uniform
:class:`RunResult` envelope whatever the command was: metrics,
manifest, :class:`~repro.exec.RunHealth`, history id, artifact/trace
paths, cache/journal provenance.

Two things are deliberately *not* managed here:

* **Tracing** — a run executes under whatever
  :func:`~repro.obs.current_tracer` is active.  Transports own the
  tracer lifecycle (the CLI's ``--trace`` context manager, a daemon's
  ambient tracer); ``options.trace`` is still recorded as provenance.
* **Rendering** — the result carries everything the CLI prints
  (including pre-rendered metric/profile lines) but prints nothing
  itself; the golden fixtures pin the CLI's rendering of these fields
  byte-for-byte.

Failures follow the scenario layer's convention:
:class:`~repro.core.errors.ConfigurationError` for anything wrong with
the request, :class:`~repro.exec.JournalMismatch` for a foreign resume
journal; transports translate those to their own error surface.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from ..analysis import abs_slot_upper_bound, collect_metrics, write_csv
from ..analysis.experiments import ExperimentCell, GridReport, run_grid_report
from ..analysis.metrics import RunMetrics
from ..core import Trace
from ..core.errors import ConfigurationError
from ..exec import ResultCache
from ..exec.resilience import RunHealth
from ..obs import (
    JsonlRunWriter,
    PhaseProfiler,
    ProbeBus,
    ProgressReporter,
    RunManifest,
    SimulationMetrics,
    current_tracer,
    git_sha,
    record_completion,
)
from ..scenarios import ALGORITHMS, ScenarioSpec
from .request import RunRequest

__all__ = ["RunPlan", "RunResult", "execute", "plan"]

PathLike = Union[str, pathlib.Path]


def _spec_hash(spec: ScenarioSpec) -> Optional[str]:
    """A stable short hash of a spec's canonical form (history key)."""
    try:
        canonical = json.dumps(spec.canonical(), sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    except Exception:
        return None


@dataclass(frozen=True)
class RunPlan:
    """A request resolved against the local environment, ready to run."""

    request: RunRequest
    #: The grid's result cache, or None when caching is off.
    cache: Optional[ResultCache] = None
    #: The journal path in effect (the ``--resume`` default applied).
    journal: Optional[str] = None
    #: One cell per spec, in spec order (grid command only).
    cells: Tuple[ExperimentCell, ...] = ()


@dataclass
class RunResult:
    """The uniform envelope every executed request returns.

    ``command``-specific payloads (``metrics`` for a run, ``report``
    for a grid, ``sst`` for a solve) are optional; the provenance
    fields — wall time, engine, cache/journal counters, history id,
    artifact paths — are always populated when they apply.
    """

    command: str
    name: str
    status: str
    wall_s: float
    engine: str = ""
    timebase: str = ""
    engine_detail: str = ""
    metrics: Optional[RunMetrics] = None
    manifest: Optional[Dict[str, Any]] = None
    report: Optional[GridReport] = None
    health: Optional[RunHealth] = None
    history_id: Optional[int] = None
    artifact_path: Optional[pathlib.Path] = None
    trace_path: Optional[str] = None
    csv_path: Optional[str] = None
    journal_path: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    journal_hits: int = 0
    #: Pre-rendered ``--metrics`` / ``--profile`` report lines.
    metrics_lines: Tuple[str, ...] = ()
    profile_lines: Tuple[str, ...] = ()
    #: SST payload: solved_at / winner / max_slots / bound.
    sst: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def served_from(self) -> str:
        """Provenance: ``cache`` / ``journal`` / ``mixed`` / ``exec``."""
        cells = len(self.report.results) if self.report is not None else 1
        if cells and self.cache_hits >= cells:
            return "cache"
        if cells and self.journal_hits >= cells:
            return "journal"
        if self.cache_hits or self.journal_hits:
            return "mixed"
        return "exec"

    def envelope(self) -> Dict[str, Any]:
        """A JSON-safe summary (the daemon's trailing service record)."""
        body: Dict[str, Any] = {
            "command": self.command,
            "name": self.name,
            "status": self.status,
            "wall_s": round(self.wall_s, 6),
            "served_from": self.served_from,
            "history_id": self.history_id,
        }
        if self.engine:
            body["engine"] = self.engine
            body["timebase"] = self.timebase
        if self.metrics is not None:
            body["delivered"] = self.metrics.delivered
            body["backlog"] = self.metrics.backlog
            body["collisions"] = self.metrics.collisions
        if self.report is not None:
            body["cells"] = len(self.report.results)
            body["cache_hits"] = self.cache_hits
            body["cache_misses"] = self.cache_misses
            body["journal_hits"] = self.journal_hits
            body["failures"] = len(self.report.failures)
        if self.sst is not None:
            body["sst"] = {
                key: (str(value) if value is not None else None)
                if key in ("solved_at", "bound")
                else value
                for key, value in self.sst.items()
            }
        if self.health is not None and self.health.disturbed:
            body["health"] = self.health.as_dict()
        if self.artifact_path is not None:
            body["artifact_path"] = str(self.artifact_path)
        for key, value in (
            ("trace_path", self.trace_path),
            ("csv_path", self.csv_path),
            ("journal_path", self.journal_path),
        ):
            if value:
                body[key] = value
        if self.extra:
            body.update(self.extra)
        return body


def plan(request: RunRequest) -> RunPlan:
    """Resolve a request against the local environment.

    Pure resolution, no execution: validates command/spec fit (an SST
    request must name an SST algorithm), instantiates the result
    cache, applies the resume-journal default, and builds the grid
    cells.  Raises :class:`~repro.core.errors.ConfigurationError` on
    anything unresolvable.
    """
    options = request.options
    if request.command == "sst":
        spec = request.spec
        if spec.algorithm not in ALGORITHMS.names(kind="sst"):
            raise ConfigurationError(
                f"specs[0].algorithm: {spec.algorithm!r} is not an SST "
                f"algorithm (use {' | '.join(ALGORITHMS.names(kind='sst'))})"
            )
    cache = None
    journal = options.journal
    cells: Tuple[ExperimentCell, ...] = ()
    if request.command == "grid":
        if options.cache:
            cache = ResultCache(options.cache_dir)
        if journal is None and options.resume:
            # --resume with no explicit path uses the cache-adjacent
            # default the previous (journalled) run would have written.
            journal = str(
                pathlib.Path(options.cache_dir) / "grid-journal.jsonl"
            )
        cells = tuple(
            ExperimentCell.from_spec(spec) for spec in request.specs
        )
    return RunPlan(request=request, cache=cache, journal=journal, cells=cells)


def execute(
    request: RunRequest,
    *,
    artifact_stream: Optional[IO[str]] = None,
    history_db: Optional[PathLike] = None,
) -> RunResult:
    """Run a request end to end and return its :class:`RunResult`.

    ``artifact_stream`` streams the run's JSONL artifact (manifest,
    event records, summary) to an open text stream *instead of* the
    ``options.emit_jsonl`` path — the daemon's incremental-streaming
    hook.  ``history_db`` overrides where the completion is recorded
    (the daemon records into its cache-adjacent index; local runs use
    the default database).
    """
    resolved = plan(request)
    if request.command == "grid":
        return _execute_grid(resolved, history_db)
    if request.command == "sst":
        return _execute_sst(resolved, history_db)
    return _execute_run(resolved, artifact_stream, history_db)


def _execute_run(
    plan_: RunPlan,
    artifact_stream: Optional[IO[str]],
    history_db: Optional[PathLike],
) -> RunResult:
    """One spec, one simulator — the body behind ``repro run``."""
    request = plan_.request
    options = request.options
    spec = request.spec
    emitting = bool(options.emit_jsonl) or artifact_stream is not None
    observing = options.metrics or emitting or options.progress
    bus = ProbeBus() if observing else None
    sim_metrics = None
    writer = None
    if options.metrics or emitting:
        sim_metrics = SimulationMetrics()
        sim_metrics.attach(bus)
    tracer = current_tracer()
    # With the flight recorder on, always profile: the per-phase totals
    # become the trace's sim.* spans (reported only under --profile).
    profiler = PhaseProfiler() if (options.profile or tracer is not None) else None
    sim = spec.build(
        trace=Trace(backlog_stride=8), probes=bus, profiler=profiler,
        timebase=options.timebase,
        engine=options.engine,
    )
    manifest = None
    if emitting:
        manifest = RunManifest.create(
            spec=spec.canonical(),
            command="run",
            algorithm=spec.algorithm,
            n=spec.n,
            max_slot_length=spec.max_slot,
            rho=spec.rho,
            burst=spec.burst,
            schedule=spec.schedule_display(),
            seed=spec.seed,
            horizon=str(spec.horizon),
            engine=sim.engine,
            timebase=sim.timebase.describe(),
        )
        try:
            if artifact_stream is not None:
                writer = JsonlRunWriter(
                    stream=artifact_stream, manifest=manifest,
                    metrics=sim_metrics,
                ).attach(bus)
            else:
                writer = JsonlRunWriter(
                    options.emit_jsonl, manifest, metrics=sim_metrics
                ).attach(bus)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write {options.emit_jsonl!r}: {exc}"
            ) from None
    if options.progress:
        # The user picked the cadence explicitly; don't rate-limit it away.
        ProgressReporter(
            every_events=options.progress, min_interval_s=0.0
        ).attach(bus)
    started = time.perf_counter()
    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            "run", scenario=spec.name, algorithm=spec.algorithm,
            engine=sim.engine,
        )
    sim.run(until_time=spec.horizon)
    if run_span is not None:
        if profiler is not None:
            from ..analysis.experiments import emit_phase_spans

            emit_phase_spans(tracer, run_span, profiler)
        tracer.end(run_span, horizon=str(spec.horizon))
    wall_s = time.perf_counter() - started
    if writer is not None:
        writer.close(sim=sim)
    metrics = collect_metrics(sim)
    history_id = record_completion(
        "run",
        spec.name,
        db_path=history_db,
        wall_s=wall_s,
        jobs=1,
        mode="serial",
        spec_hash=_spec_hash(spec),
        git_sha=git_sha(),
        artifact_path=options.emit_jsonl or None,
        trace_path=options.trace,
        extra={"delivered": metrics.delivered, "backlog": metrics.backlog,
               "engine": sim.engine_described,
               "timebase": sim.timebase.describe()},
    )
    return RunResult(
        command="run",
        name=spec.name,
        status="ok",
        wall_s=wall_s,
        engine=sim.engine,
        timebase=sim.timebase.describe(),
        engine_detail=sim.engine_detail or "",
        metrics=metrics,
        manifest=manifest.to_record() if manifest is not None else None,
        history_id=history_id,
        artifact_path=writer.path if writer is not None else None,
        trace_path=options.trace,
        metrics_lines=(
            tuple(sim_metrics.render())
            if sim_metrics is not None and options.metrics
            else ()
        ),
        profile_lines=(
            tuple(profiler.render())
            if profiler is not None and options.profile
            else ()
        ),
    )


def _execute_grid(
    plan_: RunPlan, history_db: Optional[PathLike]
) -> RunResult:
    """A cell grid on the exec pool — the body behind ``repro grid``."""
    request = plan_.request
    options = request.options
    progress = None
    if options.progress:
        progress = ProgressReporter(every_events=1, min_interval_s=1.0)
    report = run_grid_report(
        list(plan_.cells),
        backlog_stride=options.backlog_stride,
        jobs=options.jobs,
        cache=plan_.cache,
        progress=progress,
        task_timeout=options.task_timeout,
        retries=options.retries,
        journal=plan_.journal,
        resume=options.resume,
        history=history_db,
        engine=options.engine,
    )
    csv_path = None
    if options.csv:
        write_csv(report.results, options.csv)
        csv_path = options.csv
    _attach_grid_history(
        report, plan_.cache, history_db,
        trace=options.trace, csv=csv_path,
    )
    return RunResult(
        command="grid",
        name=request.specs[0].name if len(request.specs) == 1 else (
            f"{request.specs[0].name}..{request.specs[-1].name}"
        ),
        status="failed" if report.failures else "ok",
        wall_s=report.wall_s,
        report=report,
        health=report.health,
        history_id=report.history_id,
        trace_path=options.trace,
        csv_path=csv_path,
        journal_path=plan_.journal,
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        journal_hits=report.journal_hits,
    )


def _attach_grid_history(
    report: GridReport,
    cache: Optional[ResultCache],
    history_db: Optional[PathLike],
    *,
    trace: Optional[str],
    csv: Optional[str],
) -> None:
    """Attach late-learned paths to the grid's history row (best-effort)."""
    history_id = getattr(report, "history_id", None)
    if history_id is None or not (trace or csv):
        return
    from ..obs import RunHistory

    if history_db is not None:
        db: Optional[PathLike] = history_db
    elif cache is not None:
        db = pathlib.Path(cache.root) / "history.db"
    else:
        db = None
    updates: Dict[str, Any] = {}
    if trace:
        updates["trace_path"] = trace
    if csv:
        updates["artifact_path"] = csv
    try:
        RunHistory(db).update(history_id, **updates)
    except Exception:
        pass  # history is forensics, never a reason to fail the grid


def _execute_sst(
    plan_: RunPlan, history_db: Optional[PathLike]
) -> RunResult:
    """Leader election / SST — the body behind ``repro sst``."""
    request = plan_.request
    options = request.options
    spec = request.spec
    sim = spec.build()
    fleet = {i: sim.algorithm(i) for i in sim.station_ids}
    started = time.perf_counter()
    solved_at = sim.run_until_success(max_events=options.max_events)
    if solved_at is not None:
        sim.run(
            max_events=sim.events_processed + 100_000,
            stop_when=lambda s: all(a.is_done for a in fleet.values()),
        )
    wall_s = time.perf_counter() - started
    winners = [
        i for i, a in fleet.items() if getattr(a, "outcome", None) == "won"
    ]
    solved = solved_at is not None
    max_slots = sim.max_slots_elapsed()
    history_id = record_completion(
        "sst",
        spec.name,
        db_path=history_db,
        status="ok" if solved else "failed",
        wall_s=wall_s,
        jobs=1,
        mode="serial",
        spec_hash=_spec_hash(spec),
        git_sha=git_sha(),
        extra={"solved": solved, "max_slots": max_slots},
    )
    return RunResult(
        command="sst",
        name=spec.name,
        status="ok" if solved else "failed",
        wall_s=wall_s,
        engine=sim.engine,
        timebase=sim.timebase.describe(),
        history_id=history_id,
        sst={
            "solved_at": solved_at,
            "winner": winners[0] if winners else None,
            "max_slots": max_slots,
            "bound": abs_slot_upper_bound(spec.n, spec.max_slot),
        },
    )
