"""``repro submit`` — the HTTP client for a ``repro serve`` daemon.

Stdlib only (:mod:`urllib`): POST a :class:`~repro.service.RunRequest`
to ``/run``, stream the NDJSON response as it arrives — artifact/event
records to an optional output stream, the trailing
``{"type": "service", ...}`` envelope back to the caller.
``urllib`` transparently decodes the chunked transfer encoding, so
records are seen line-by-line while the simulation is still running.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import IO, Any, Dict, Optional

__all__ = ["ServiceError", "submit_request"]


class ServiceError(RuntimeError):
    """The daemon rejected the request or the transport failed."""


def _http_error_detail(exc: urllib.error.HTTPError) -> str:
    """The daemon's ``error`` field, or the bare HTTP status."""
    try:
        payload = json.loads(exc.read().decode("utf-8"))
        if isinstance(payload, dict) and payload.get("error"):
            return str(payload["error"])
    except Exception:
        pass
    return f"HTTP {exc.code} {exc.reason}"


def submit_request(
    url: str,
    request: Any,
    *,
    out: Optional[IO[str]] = None,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """POST ``request`` to ``<url>/run``; returns the service envelope.

    ``request`` is a :class:`~repro.service.RunRequest` (anything with
    ``to_json``).  Artifact and result records are written to ``out``
    verbatim (one JSON line each) as they stream in; the final
    ``service`` record is returned as a dict with the response's
    ``X-Repro-Served-From`` header folded in as ``served_from``.
    Raises :class:`ServiceError` on any transport or daemon error —
    including an in-band ``{"type": "error"}`` record.
    """
    body = request.to_json(indent=None).encode("utf-8")
    http_request = urllib.request.Request(
        url.rstrip("/") + "/run",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        response = urllib.request.urlopen(http_request, timeout=timeout)
    except urllib.error.HTTPError as exc:
        raise ServiceError(_http_error_detail(exc)) from None
    except urllib.error.URLError as exc:
        raise ServiceError(f"cannot reach {url}: {exc.reason}") from None
    envelope: Optional[Dict[str, Any]] = None
    with response:
        served_from = response.headers.get("X-Repro-Served-From", "")
        for raw in response:
            line = raw.decode("utf-8")
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                record = None
            kind = record.get("type") if isinstance(record, dict) else None
            if kind == "service":
                envelope = record
                continue
            if kind == "error":
                raise ServiceError(str(record.get("error", "daemon error")))
            if out is not None:
                out.write(line if line.endswith("\n") else line + "\n")
    if envelope is None:
        envelope = {"type": "service", "status": "ok"}
    envelope.setdefault("served_from", served_from or "exec")
    return envelope


def fetch_version(url: str, *, timeout: Optional[float] = None) -> Dict[str, Any]:
    """GET ``<url>/version`` — the daemon's identity payload."""
    try:
        with urllib.request.urlopen(
            url.rstrip("/") + "/version", timeout=timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        raise ServiceError(_http_error_detail(exc)) from None
    except urllib.error.URLError as exc:
        raise ServiceError(f"cannot reach {url}: {exc.reason}") from None
    except json.JSONDecodeError as exc:
        raise ServiceError(f"{url}/version returned malformed JSON: {exc}") from None
