"""The frozen, JSON-round-trippable description of one service run.

A :class:`RunRequest` is the unit of work every transport speaks: one
command (``run`` / ``grid`` / ``sst``), the
:class:`~repro.scenarios.ScenarioSpec`\\ (s) to execute, and a
:class:`RunOptions` block carrying the *run* options — engine,
timebase, jobs, cache, journal/resume, timeouts/retries, artifact and
trace paths.  Exactly like the scenario layer, validation is strict
and eager: unknown keys, out-of-range values and wrong types raise
:class:`~repro.core.errors.ConfigurationError` naming the offending
field (``options.jobs``, ``specs[2]``), and
``from_json(to_json(r)) == r`` holds for every valid request.

Options are deliberately *not* part of the specs: a spec describes the
paper's model (and keys the result cache), while options describe how
this particular submission should execute — observably identical
results either way.

>>> from repro.scenarios import ScenarioSpec
>>> spec = ScenarioSpec(algorithm="ca-arrow", n=3, rho="1/2", horizon=400)
>>> request = RunRequest(specs=(spec,))
>>> RunRequest.from_json(request.to_json()) == request
True
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigurationError
from ..scenarios import ScenarioSpec

__all__ = [
    "COMMANDS",
    "OPTION_FIELDS",
    "SERVICE_SCHEMA_VERSION",
    "RunOptions",
    "RunRequest",
    "options_from_args",
]

#: Bump when the request JSON field set changes shape.
SERVICE_SCHEMA_VERSION = 1

#: The commands a request may name, in CLI order.
COMMANDS = ("run", "grid", "sst")

_ENGINES = ("auto", "batch", "object")
_TIMEBASES = ("auto", "lattice", "fraction")

#: Top-level keys accepted by :meth:`RunRequest.from_json`.
_REQUEST_KEYS = ("request", "command", "spec", "specs", "options")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


@dataclass(frozen=True)
class RunOptions:
    """How a request executes — everything that is *not* the model.

    Every field is JSON-native and optional; the defaults reproduce a
    bare ``repro run`` (serial, uncached, no artifacts).  Grid-only
    fields (``jobs``, ``journal``, …) are validated unconditionally so
    a request built for one command can be replayed as another.
    """

    #: Run loop: ``auto`` picks the vectorized batch kernel when eligible.
    engine: str = "auto"
    #: Internal time representation (observably identical either way).
    timebase: str = "auto"
    #: Worker processes for grids (0 = one per CPU core).
    jobs: int = 1
    #: Memoize grid cells in the content-addressed result cache.
    cache: bool = False
    #: Where that cache (and its history database) lives.
    cache_dir: str = ".repro-cache"
    #: Trace sampling stride passed to every cell.
    backlog_stride: int = 8
    #: Kill any grid cell running longer than this many seconds.
    task_timeout: Optional[float] = None
    #: Re-run a failed/crashed/timed-out cell up to N more times.
    retries: int = 0
    #: Checkpoint completed grid cells to this JSONL file.
    journal: Optional[str] = None
    #: Restore completed cells from the journal before executing.
    resume: bool = False
    #: Export a flight-recorder trace here (managed by the caller).
    trace: Optional[str] = None
    #: Attach the metric instruments and report their snapshot.
    metrics: bool = False
    #: Report wall time per simulator phase.
    profile: bool = False
    #: Progress cadence (events); 0 disables progress reporting.
    progress: int = 0
    #: Stream a manifest + per-event JSONL artifact to this path.
    emit_jsonl: Optional[str] = None
    #: Also write grid results as CSV to this path.
    csv: Optional[str] = None
    #: Event budget for the SST solve phase.
    max_events: int = 2_000_000

    def __post_init__(self) -> None:
        _require(
            self.engine in _ENGINES,
            f"options.engine: expected one of {'/'.join(_ENGINES)}, "
            f"got {self.engine!r}",
        )
        _require(
            self.timebase in _TIMEBASES,
            f"options.timebase: expected one of {'/'.join(_TIMEBASES)}, "
            f"got {self.timebase!r}",
        )
        _require(
            _is_int(self.jobs) and self.jobs >= 0,
            f"options.jobs: must be an integer >= 0, got {self.jobs!r}",
        )
        _require(
            isinstance(self.cache, bool),
            f"options.cache: must be a boolean, got {self.cache!r}",
        )
        _require(
            isinstance(self.cache_dir, str) and self.cache_dir,
            f"options.cache_dir: must be a non-empty string, "
            f"got {self.cache_dir!r}",
        )
        _require(
            _is_int(self.backlog_stride) and self.backlog_stride >= 1,
            f"options.backlog_stride: must be an integer >= 1, "
            f"got {self.backlog_stride!r}",
        )
        if self.task_timeout is not None:
            _require(
                isinstance(self.task_timeout, (int, float))
                and not isinstance(self.task_timeout, bool)
                and float(self.task_timeout) > 0,
                f"options.task_timeout: must be a positive number of "
                f"seconds, got {self.task_timeout!r}",
            )
            object.__setattr__(self, "task_timeout", float(self.task_timeout))
        _require(
            _is_int(self.retries) and self.retries >= 0,
            f"options.retries: must be an integer >= 0, got {self.retries!r}",
        )
        _require(
            _is_int(self.progress) and self.progress >= 0,
            f"options.progress: must be an integer >= 0, got {self.progress!r}",
        )
        _require(
            _is_int(self.max_events) and self.max_events >= 1,
            f"options.max_events: must be an integer >= 1, "
            f"got {self.max_events!r}",
        )
        for name in ("journal", "trace", "emit_jsonl", "csv"):
            value = getattr(self, name)
            _require(
                value is None or (isinstance(value, str) and value),
                f"options.{name}: must be a non-empty path or null, "
                f"got {value!r}",
            )
        for name in ("resume", "metrics", "profile"):
            value = getattr(self, name)
            _require(
                isinstance(value, bool),
                f"options.{name}: must be a boolean, got {value!r}",
            )

    def canonical(self) -> Dict[str, Any]:
        """The canonical JSON-native form (all fields, declared order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "RunOptions":
        """Strictly parse an options mapping; unknown keys are rejected."""
        if not isinstance(document, Mapping):
            raise ConfigurationError(
                f"options: expected a JSON object, got {document!r}"
            )
        unknown = sorted(set(document) - set(OPTION_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"options: unknown key(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(OPTION_FIELDS)})"
            )
        return cls(**dict(document))


#: Every key accepted inside a request's ``options`` object.
OPTION_FIELDS = tuple(f.name for f in fields(RunOptions))


@dataclass(frozen=True)
class RunRequest:
    """One unit of service work: a command, its specs, its options.

    ``run`` and ``sst`` take exactly one spec; ``grid`` takes one or
    more (one per cell, in cell order).  Specs may be given as
    :class:`~repro.scenarios.ScenarioSpec` instances or as their JSON
    mappings — anything else is rejected eagerly.
    """

    specs: Tuple[ScenarioSpec, ...] = ()
    command: str = "run"
    options: RunOptions = field(default_factory=RunOptions)

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        _require(
            self.command in COMMANDS,
            f"command: expected one of {'/'.join(COMMANDS)}, "
            f"got {self.command!r}",
        )
        if isinstance(self.specs, (ScenarioSpec, Mapping)):
            set_(self, "specs", (self.specs,))
        _require(
            isinstance(self.specs, (tuple, list)),
            f"specs: expected a list of scenario specs, got {self.specs!r}",
        )
        coerced = []
        for index, spec in enumerate(self.specs):
            if isinstance(spec, ScenarioSpec):
                coerced.append(spec)
                continue
            if isinstance(spec, Mapping):
                try:
                    coerced.append(ScenarioSpec.from_json(spec))
                except ConfigurationError as exc:
                    raise ConfigurationError(f"specs[{index}]: {exc}") from None
                continue
            raise ConfigurationError(
                f"specs[{index}]: expected a scenario spec or mapping, "
                f"got {spec!r}"
            )
        set_(self, "specs", tuple(coerced))
        _require(bool(self.specs), "specs: at least one scenario is required")
        if self.command in ("run", "sst"):
            _require(
                len(self.specs) == 1,
                f"specs: command {self.command!r} takes exactly one "
                f"scenario, got {len(self.specs)}",
            )
        if isinstance(self.options, Mapping):
            set_(self, "options", RunOptions.from_json(self.options))
        _require(
            isinstance(self.options, RunOptions),
            f"options: expected a RunOptions or mapping, got {self.options!r}",
        )

    @property
    def spec(self) -> ScenarioSpec:
        """The single spec of a ``run``/``sst`` request (first, for grids)."""
        return self.specs[0]

    # -- serialization --------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """The canonical JSON-native form — what ``to_json`` writes."""
        return {
            "request": SERVICE_SCHEMA_VERSION,
            "command": self.command,
            "specs": [spec.canonical() for spec in self.specs],
            "options": self.options.canonical(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.canonical(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(
        cls, document: Union[str, bytes, Mapping[str, Any]]
    ) -> "RunRequest":
        """Parse and strictly validate a request document.

        ``document`` may be JSON text or an already-parsed mapping.  A
        single spec may be given under ``spec`` instead of ``specs``;
        unknown keys are rejected by name so a typo cannot silently
        fall back to a default.
        """
        if isinstance(document, (str, bytes)):
            try:
                document = json.loads(document)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"request JSON is malformed: {exc}"
                ) from None
        if not isinstance(document, Mapping):
            raise ConfigurationError(
                f"request document must be a JSON object, got {document!r}"
            )
        unknown = sorted(set(document) - set(_REQUEST_KEYS))
        if unknown:
            raise ConfigurationError(
                f"unknown request key(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(_REQUEST_KEYS)})"
            )
        version = document.get("request", SERVICE_SCHEMA_VERSION)
        if version != SERVICE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"request: unsupported schema version {version!r} "
                f"(this build reads version {SERVICE_SCHEMA_VERSION})"
            )
        if "spec" in document and "specs" in document:
            raise ConfigurationError(
                "request: give either 'spec' or 'specs', not both"
            )
        specs = document.get("specs", document.get("spec"))
        if specs is None:
            raise ConfigurationError("specs: required key is missing")
        kwargs: Dict[str, Any] = {"specs": specs}
        if "command" in document:
            kwargs["command"] = document["command"]
        if "options" in document and document["options"] is not None:
            kwargs["options"] = document["options"]
        return cls(**kwargs)

    def replace_options(self, **changes: Any) -> "RunRequest":
        """A copy with option ``changes`` applied (re-validated)."""
        import dataclasses

        return dataclasses.replace(
            self, options=dataclasses.replace(self.options, **changes)
        )


def options_from_args(args: argparse.Namespace) -> RunOptions:
    """The one CLI→options resolver, shared by every subcommand.

    Each subcommand defines only the flags it supports; everything it
    does not define falls back to the :class:`RunOptions` default.
    This is the single place the flag names map onto option fields, so
    the CLI and the service cannot drift.
    """
    progress = getattr(args, "progress", 0)
    if isinstance(progress, bool):  # grid's --progress is a switch
        progress = 1 if progress else 0
    # Subcommands without --no-cache never cached; grid caches unless
    # the user opted out.
    no_cache = getattr(args, "no_cache", None)
    cache = False if no_cache is None else not no_cache
    defaults = RunOptions()
    return RunOptions(
        engine=getattr(args, "engine", defaults.engine),
        timebase=getattr(args, "timebase", defaults.timebase),
        jobs=getattr(args, "jobs", defaults.jobs),
        cache=cache,
        cache_dir=getattr(args, "cache_dir", defaults.cache_dir),
        backlog_stride=getattr(args, "backlog_stride", defaults.backlog_stride),
        task_timeout=getattr(args, "task_timeout", defaults.task_timeout),
        retries=getattr(args, "retries", defaults.retries),
        journal=getattr(args, "journal", defaults.journal),
        resume=getattr(args, "resume", defaults.resume),
        trace=getattr(args, "trace", defaults.trace),
        metrics=getattr(args, "metrics", defaults.metrics),
        profile=getattr(args, "profile", defaults.profile),
        progress=progress,
        emit_jsonl=getattr(args, "emit_jsonl", defaults.emit_jsonl),
        csv=getattr(args, "csv", defaults.csv),
        max_events=getattr(args, "max_events", defaults.max_events),
    )
