"""Reproduction of "The Impact of Asynchrony on Stability of MAC"
(Garncarek, Kowalski, Kutten, Murach — ICDCS 2024).

A partially asynchronous multiple access channel where an online
adversary controls every slot's length within ``[1, R]``, plus the
paper's algorithms and adversarial constructions:

* :mod:`repro.core` — exact-time channel model and simulator;
* :mod:`repro.timing` — slot-length adversaries;
* :mod:`repro.arrivals` — leaky-bucket-with-cost packet injection;
* :mod:`repro.algorithms` — ABS, AO-ARRoW, CA-ARRoW and baselines;
* :mod:`repro.lowerbounds` — executable Theorems 2, 4 and 5;
* :mod:`repro.analysis` — paper bounds, stability tests, MSR search;
* :mod:`repro.obs` — probes, metrics, JSONL run artifacts, profiling;
* :mod:`repro.exec` — process-pool grids/sweeps, result cache, bench diff;
* :mod:`repro.service` — the transport-agnostic run service
  (``RunRequest`` → ``execute`` → ``RunResult``) and the ``repro
  serve`` HTTP daemon + ``repro submit`` client built on it;
* :mod:`repro.viz` — ASCII schedule/phase timelines.

Quickstart::

    from repro.core import Simulator
    from repro.timing import CyclicPattern
    from repro.arrivals import UniformRate
    from repro.algorithms import CAArrow

    n, R = 4, 2
    sim = Simulator(
        {i: CAArrow(i, n, R) for i in range(1, n + 1)},
        CyclicPattern({1: [1, 2], 2: [2, 1], 3: ["3/2"], 4: [2]}),
        max_slot_length=R,
        arrival_source=UniformRate(rho="1/2", targets=[1, 2, 3, 4], assumed_cost=R),
    )
    sim.run(until_time=1000)
    assert sim.channel.stats.collisions == 0   # CA-ARRoW never collides
"""

__version__ = "1.0.0"

from . import (
    algorithms,
    analysis,
    arrivals,
    core,
    exec,
    faults,
    lowerbounds,
    obs,
    service,
    timing,
    viz,
)

__all__ = [
    "algorithms",
    "analysis",
    "arrivals",
    "core",
    "exec",
    "faults",
    "lowerbounds",
    "obs",
    "service",
    "timing",
    "viz",
    "__version__",
]
