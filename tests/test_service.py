"""Tests for the transport-agnostic run service (:mod:`repro.service`).

Three layers of contract:

* **Request** — :class:`RunRequest` round-trips through JSON exactly
  and rejects malformed documents naming the offending field.
* **Runner** — :func:`execute` produces results identical to driving
  the engine directly (the CLI's golden fixtures pin the rendered
  output; here we pin the data).
* **Server** — a live daemon streams artifacts record-identical to a
  local ``--emit-jsonl`` run, answers repeats from its cache, and
  records every submission in run-history.
"""

import io
import json
import threading

import pytest

from repro.analysis import ExperimentCell, run_grid_report
from repro.core.errors import ConfigurationError
from repro.obs import RunHistory
from repro.scenarios import ScenarioSpec
from repro.service import (
    RunOptions,
    RunRequest,
    ServiceError,
    create_server,
    execute,
    fetch_version,
    plan,
    submit_request,
)


def _spec(**overrides):
    base = dict(
        algorithm="ca-arrow", n=3, max_slot=2, schedule="worst",
        rho="1/2", horizon=400, seed=0,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestRunRequest:
    def test_json_round_trip_exact(self):
        request = RunRequest(
            specs=(_spec(),),
            command="run",
            options=RunOptions(engine="object", metrics=True, progress=5),
        )
        assert RunRequest.from_json(request.to_json()) == request

    def test_grid_round_trip_preserves_spec_order(self):
        request = RunRequest(
            specs=(_spec(rho="3/10"), _spec(rho="7/10")),
            command="grid",
            options=RunOptions(jobs=2, cache=True, retries=1),
        )
        rebuilt = RunRequest.from_json(request.to_json())
        assert rebuilt == request
        assert [s.rho for s in rebuilt.specs] == [s.rho for s in request.specs]

    def test_single_spec_key_accepted(self):
        document = {"spec": _spec().canonical(), "command": "run"}
        assert RunRequest.from_json(document).spec == _spec()

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.update(bogus=1), "unknown request key(s): bogus"),
            (lambda d: d.update(request=99), "unsupported schema version"),
            (lambda d: d.update(command="fly"), "command:"),
            (lambda d: d.pop("specs"), "specs: required key is missing"),
            (lambda d: d["options"].update(jobs=-1), "options.jobs"),
            (lambda d: d["options"].update(warp=9), "options: unknown key(s): warp"),
            (lambda d: d["options"].update(engine="steam"), "options.engine"),
            (lambda d: d["specs"][0].update(n=0), "specs[0]"),
        ],
    )
    def test_validation_names_offending_field(self, mutate, fragment):
        document = RunRequest(specs=(_spec(),)).canonical()
        mutate(document)
        with pytest.raises(ConfigurationError, match=None) as excinfo:
            RunRequest.from_json(document)
        assert fragment in str(excinfo.value)

    def test_malformed_json_text(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            RunRequest.from_json("{not json")

    def test_run_takes_exactly_one_spec(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            RunRequest(specs=(_spec(), _spec(seed=1)), command="run")

    def test_sst_plan_rejects_dynamic_algorithm(self):
        request = RunRequest(specs=(_spec(),), command="sst")
        with pytest.raises(ConfigurationError, match="not an SST algorithm"):
            plan(request)


class TestExecuteParity:
    def test_run_matches_direct_engine_drive(self):
        spec = _spec()
        result = execute(RunRequest(specs=(spec,)))
        sim = spec.build()
        sim.run(until_time=spec.horizon)
        from repro.analysis import collect_metrics

        direct = collect_metrics(sim)
        assert result.ok
        assert result.metrics.delivered == direct.delivered
        assert result.metrics.backlog == direct.backlog
        assert result.metrics.collisions == direct.collisions
        assert result.engine == sim.engine
        assert result.served_from == "exec"

    def test_grid_matches_run_grid_report(self):
        specs = (_spec(rho="3/10"), _spec(rho="7/10"))
        result = execute(RunRequest(specs=specs, command="grid"))
        report = run_grid_report(
            [ExperimentCell.from_spec(s) for s in specs], backlog_stride=8
        )
        assert result.ok
        assert [r.metrics.delivered for r in result.report.results] == [
            r.metrics.delivered for r in report.results
        ]
        assert [r.stable for r in result.report.results] == [
            r.stable for r in report.results
        ]

    def test_grid_cache_served_second_time(self, tmp_path):
        options = RunOptions(cache=True, cache_dir=str(tmp_path / "cache"))
        request = RunRequest(specs=(_spec(),), command="grid", options=options)
        first = execute(request)
        second = execute(request)
        assert first.cache_hits == 0
        assert second.cache_hits == 1
        assert second.served_from == "cache"

    def test_sst_solves_and_reports_bound(self):
        spec = ScenarioSpec(
            algorithm="abs", n=4, max_slot=2, schedule="worst",
            seed=0, rho=None,
        )
        result = execute(RunRequest(specs=(spec,), command="sst"))
        assert result.ok
        assert result.sst["solved_at"] is not None
        assert result.sst["max_slots"] <= result.sst["bound"]

    def test_artifact_stream_receives_records(self):
        stream = io.StringIO()
        result = execute(
            RunRequest(specs=(_spec(),)), artifact_stream=stream
        )
        assert result.ok
        records = [json.loads(line) for line in
                   stream.getvalue().splitlines() if line]
        kinds = {r["type"] for r in records}
        assert "manifest" in kinds and "summary" in kinds

    def test_emit_jsonl_unwritable_path_names_it(self, tmp_path):
        options = RunOptions(emit_jsonl=str(tmp_path / "no" / "dir" / "o.jsonl"))
        with pytest.raises(ConfigurationError, match="cannot write"):
            execute(RunRequest(specs=(_spec(),), options=options))


@pytest.fixture()
def daemon(tmp_path):
    server = create_server(
        "127.0.0.1", 0, cache_dir=str(tmp_path / "serve-cache"), quiet=True
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, f"http://127.0.0.1:{server.server_port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestServer:
    def test_version_endpoint(self, daemon):
        _, url = daemon
        from repro import __version__

        payload = fetch_version(url)
        assert payload["version"] == __version__
        assert "git_sha" in payload and "request_schema" in payload

    def test_streamed_artifact_matches_local_run(self, daemon, tmp_path):
        _, url = daemon
        request = RunRequest(specs=(_spec(),))
        out = io.StringIO()
        envelope = submit_request(url, request, out=out, timeout=30)
        assert envelope["status"] == "ok"
        assert envelope["served_from"] == "exec"

        local_path = tmp_path / "local.jsonl"
        execute(request.replace_options(emit_jsonl=str(local_path)))

        def events(text):
            return [
                json.loads(line) for line in text.splitlines()
                if line and json.loads(line).get("type")
                not in ("manifest", "summary")
            ]

        assert events(out.getvalue()) == events(local_path.read_text())

    def test_second_submission_is_cache_served(self, daemon):
        server, url = daemon
        request = RunRequest(specs=(_spec(seed=7),))
        first = submit_request(url, request, timeout=30)
        out = io.StringIO()
        second = submit_request(url, request, out=out, timeout=30)
        assert first["served_from"] == "exec"
        assert second["served_from"] == "cache"
        # The cached replay still streams the full artifact.
        assert any(
            json.loads(line).get("type") == "summary"
            for line in out.getvalue().splitlines() if line
        )
        history = RunHistory(server.history_db)
        serves = history.query(kind="serve")
        assert len(serves) == 2
        assert history.query(kind="serve", served="cache")[0].cache_hits == 1

    def test_grid_submission_streams_result_rows(self, daemon):
        _, url = daemon
        request = RunRequest(
            specs=(_spec(rho="3/10"), _spec(rho="7/10")), command="grid"
        )
        out = io.StringIO()
        envelope = submit_request(url, request, out=out, timeout=60)
        assert envelope["status"] == "ok"
        assert envelope["cells"] == 2
        rows = [json.loads(line) for line in out.getvalue().splitlines()
                if line]
        assert [r["type"] for r in rows] == ["result", "result"]
        assert all(r["stable"] in (True, False) for r in rows)

    def test_invalid_request_is_400_naming_field(self, daemon):
        _, url = daemon

        class Bad:
            def to_json(self, indent=None):
                document = RunRequest(specs=(_spec(),)).canonical()
                document["options"]["jobs"] = -1
                return json.dumps(document)

        with pytest.raises(ServiceError, match="options.jobs"):
            submit_request(url, Bad(), timeout=30)

    def test_client_paths_are_sanitized_away(self, daemon, tmp_path):
        _, url = daemon
        evil = str(tmp_path / "evil.jsonl")
        request = RunRequest(
            specs=(_spec(seed=3),),
            options=RunOptions(emit_jsonl=evil, trace=str(tmp_path / "t.json")),
        )
        envelope = submit_request(url, request, timeout=30)
        assert envelope["status"] == "ok"
        assert not (tmp_path / "evil.jsonl").exists()
        assert not (tmp_path / "t.json").exists()

    def test_unknown_endpoint_404(self, daemon):
        _, url = daemon
        with pytest.raises(ServiceError, match="no such endpoint"):
            fetch_version(url + "/nope")

    def test_unreachable_daemon(self):
        with pytest.raises(ServiceError, match="cannot reach"):
            fetch_version("http://127.0.0.1:1", timeout=2)
