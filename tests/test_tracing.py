"""Tests for the flight recorder (:mod:`repro.obs.tracing`).

The contract: with no tracer active nothing is recorded (and nothing
is paid — the serial-path cost is separately policed by the
``exec_overhead`` perf probe); with one active, every span the
taxonomy in docs/tracing.md promises shows up with correct
parent/child structure across the fork boundary, the Chrome export
carries the fields Perfetto needs, and attempt spans reconcile
*exactly* with the :class:`repro.exec.RunHealth` ledger of the same
run — retries and timeouts included.
"""

import json

import pytest

from repro.algorithms import CAArrow
from repro.analysis import ExperimentCell, run_grid_report
from repro.arrivals import UniformRate
from repro.exec import (
    ChaosEvent,
    ChaosPlan,
    chaos_tasks,
    fork_available,
    run_tasks,
)
from repro.obs import (
    Tracer,
    activate,
    current_tracer,
    deactivate,
    load_trace,
    render_trace_summary,
    summarize_trace,
)
from repro.timing import worst_case_for

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork-based pool unavailable"
)


@pytest.fixture
def tracer(tmp_path):
    """An active tracer, deactivated (and cleaned up) after the test."""
    tracer = activate(Tracer(spool_dir=tmp_path / "spool"))
    yield tracer
    deactivate()
    tracer.close()


def cell(name="demo", rho="1/2", horizon=400):
    n = 3
    return ExperimentCell(
        name=name,
        algorithms=lambda: {i: CAArrow(i, n, 2) for i in range(1, n + 1)},
        slot_adversary=lambda: worst_case_for(2),
        arrival_source=lambda: UniformRate(
            rho=rho, targets=[1, 2, 3], assumed_cost=2
        ),
        max_slot_length=2,
        horizon=horizon,
    )


class TestTracerCore:
    def test_off_by_default(self):
        assert current_tracer() is None

    def test_activate_deactivate(self, tmp_path):
        tracer = Tracer(spool_dir=tmp_path)
        assert activate(tracer) is tracer
        assert current_tracer() is tracer
        deactivate()
        assert current_tracer() is None

    def test_span_nesting_links_parents(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = tracer.spans()
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent"] == outer.id
        assert by_name["outer"]["parent"] is None
        assert inner.id != outer.id

    def test_begin_end_explicit_form(self, tracer):
        span = tracer.begin("attempt", tid=3, task=3, attempt=1)
        tracer.end(span, outcome="ok", retried=False)
        [record] = tracer.spans()
        assert record["tid"] == 3
        assert record["args"] == {
            "task": 3, "attempt": 1, "outcome": "ok", "retried": False,
        }
        assert record["dur"] >= 0

    def test_tid_lane_inherited_by_children(self, tracer):
        with tracer.span("pool"):
            with tracer.span("task", tid=7):
                with tracer.span("cell"):
                    pass
        by_name = {s["name"]: s for s in tracer.spans()}
        assert by_name["pool"]["tid"] == 0
        assert by_name["task"]["tid"] == 7
        assert by_name["cell"]["tid"] == 7  # lane sticks for the subtree

    def test_add_span_with_explicit_timing(self, tracer):
        ts = tracer.now_us()
        tracer.add_span("attempt", ts=ts, dur=123, tid=1, outcome="timeout")
        [record] = tracer.spans()
        assert (record["ts"], record["dur"]) == (ts, 123)
        assert record["args"]["outcome"] == "timeout"

    def test_set_merges_attributes(self, tracer):
        with tracer.span("grid", cells=2) as span:
            span.set(mode="serial")
        [record] = tracer.spans()
        assert record["args"] == {"cells": 2, "mode": "serial"}


class TestChromeExport:
    def test_required_event_fields(self, tracer, tmp_path):
        with tracer.span("grid", cells=1):
            pass
        path = tracer.export_chrome(tmp_path / "out.json", cleanup=False)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        [meta] = [e for e in events if e["ph"] == "M"]
        assert meta["name"] == "process_name"
        assert meta["args"]["name"] == "repro"
        [event] = [e for e in events if e["ph"] == "X"]
        for field in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
            assert field in event, field
        assert event["ts"] == 0  # re-based to start at zero
        assert event["args"]["span"]  # ids embedded for tree rebuilds
        assert event["args"]["parent"] is None

    def test_load_trace_roundtrip(self, tracer, tmp_path):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tracer.export_chrome(tmp_path / "out.json", cleanup=False)
        events = load_trace(path)
        assert {e["name"] for e in events} == {"outer", "inner"}

    def test_load_trace_rejects_non_traces(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("not json at all")
        with pytest.raises(ValueError):
            load_trace(bogus)
        bogus.write_text('{"some": "json"}')
        with pytest.raises(ValueError):
            load_trace(bogus)


class TestPoolTracing:
    @needs_fork
    def test_worker_spans_cross_the_fork_boundary(self, tracer, tmp_path):
        run = run_tasks([lambda i=i: i * i for i in range(4)], jobs=2)
        assert run.values == [0, 1, 4, 9]
        spans = tracer.spans()
        names = sorted({s["name"] for s in spans})
        assert names == ["attempt", "pool", "pool.dispatch", "task", "worker"]
        parent_pid = {s["name"]: s["pid"] for s in spans}["pool"]
        task_pids = {s["pid"] for s in spans if s["name"] == "task"}
        assert task_pids and parent_pid not in task_pids
        # Worker-side spans parent to the pool span opened pre-fork.
        pool_id = [s for s in spans if s["name"] == "pool"][0]["id"]
        assert all(
            s["parent"] == pool_id for s in spans if s["name"] == "task"
        )

    def test_serial_pool_traces_attempts(self, tracer):
        run = run_tasks([lambda: 1, lambda: 2], jobs=1)
        assert run.values == [1, 2]
        spans = tracer.spans()
        attempts = [s for s in spans if s["name"] == "attempt"]
        assert [a["args"]["outcome"] for a in attempts] == ["ok", "ok"]
        assert all(a["args"]["retried"] is False for a in attempts)

    @needs_fork
    def test_chaos_attempts_reconcile_with_health(self, tracer, tmp_path):
        plan = ChaosPlan(
            events=(
                ChaosEvent("raise", index=1),   # first attempt errors
                ChaosEvent("hang", index=2),    # first attempt times out
            ),
            hang_s=30.0,
        )
        tasks = chaos_tasks(
            [lambda i=i: i + 10 for i in range(4)], plan, tmp_path / "chaos"
        )
        run = run_tasks(tasks, jobs=2, task_timeout=2.0, retries=1)
        assert run.values == [10, 11, 12, 13]
        deactivate()
        path = tracer.export_chrome(tmp_path / "chaos.json", cleanup=False)
        summary = summarize_trace(path)
        # The trace *is* the health ledger, attempt by attempt.
        assert summary["retries"] == run.health.retries == 2
        assert summary["timeouts"] == run.health.timeouts == 1
        assert summary["errors"] == 1
        # A retried task shows as sibling attempts with increasing numbers.
        hung = [a for a in summary["attempts"] if a["task"] == 2]
        assert [(a["attempt"], a["outcome"]) for a in hung] == [
            (1, "timeout"), (2, "ok"),
        ]
        assert [a["retried"] for a in hung] == [True, False]
        lines = "\n".join(render_trace_summary(summary))
        assert "retry/timeout timeline" in lines


class TestGridTracing:
    @needs_fork
    def test_grid_cell_sim_nesting(self, tracer, tmp_path):
        report = run_grid_report(
            [cell(name="a"), cell(name="b", rho="7/10")],
            jobs=2,
            history=False,
        )
        assert not report.failures
        spans = tracer.spans()
        by_id = {s["id"]: s for s in spans}
        grids = [s for s in spans if s["name"] == "grid"]
        assert len(grids) == 1
        cells = [s for s in spans if s["name"] == "cell"]
        assert sorted(c["args"]["cell"] for c in cells) == ["a", "b"]
        for cell_span in cells:
            task = by_id[cell_span["parent"]]
            assert task["name"] == "task"
            pool = by_id[task["parent"]]
            assert pool["name"] == "pool"
            assert by_id[pool["parent"]]["name"] == "grid"
        phases = [s for s in spans if s["name"].startswith("sim.")]
        assert {s["name"] for s in phases} == {
            "sim.adversary", "sim.algorithm", "sim.channel",
        }
        cell_ids = {c["id"] for c in cells}
        assert all(s["parent"] in cell_ids for s in phases)
        assert all(s["args"]["aggregate"] is True for s in phases)

    @needs_fork
    def test_chaos_grid_attempts_reconcile_with_health(self, tracer, tmp_path):
        """The acceptance check: a grid disturbed by a transient failure
        and a hung cell leaves a trace whose attempt spans reconcile
        exactly with the grid's RunHealth counters."""
        state = tmp_path / "state"
        state.mkdir()

        def flaky(name, kind):
            def algorithms():
                import os
                import time

                path = os.path.join(state, f"{name}.attempts")
                fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
                try:
                    os.write(fd, b"x")
                    attempt = os.fstat(fd).st_size
                finally:
                    os.close(fd)
                if attempt == 1:
                    if kind == "raise":
                        raise RuntimeError("injected transient failure")
                    time.sleep(30)  # kind == "hang": blow the task timeout
                return {i: CAArrow(i, 3, 2) for i in range(1, 4)}

            base = cell(name=name)
            return ExperimentCell(
                name=name,
                algorithms=algorithms,
                slot_adversary=base.slot_adversary,
                arrival_source=base.arrival_source,
                max_slot_length=2,
                horizon=400,
            )

        report = run_grid_report(
            [cell(name="ok"), flaky("flaky", "raise"), flaky("hung", "hang")],
            jobs=2,
            task_timeout=2.0,
            retries=1,
            history=False,
        )
        assert not report.failures
        deactivate()
        path = tracer.export_chrome(tmp_path / "grid-chaos.json", cleanup=False)
        summary = summarize_trace(path)
        assert summary["retries"] == report.health.retries == 2
        assert summary["timeouts"] == report.health.timeouts == 1
        assert summary["errors"] == 1
        by_task = {}
        for attempt in summary["attempts"]:
            by_task.setdefault(attempt["task"], []).append(attempt)
        disturbed = {
            task: [(a["attempt"], a["outcome"]) for a in attempts]
            for task, attempts in by_task.items()
            if len(attempts) > 1
        }
        assert sorted(disturbed.values()) == [
            [(1, "error"), (2, "ok")],
            [(1, "timeout"), (2, "ok")],
        ]

    def test_traced_results_identical_to_untraced(self, tracer):
        cells = [cell(name="a"), cell(name="b", rho="7/10")]
        traced = run_grid_report(cells, history=False)
        deactivate()
        untraced = run_grid_report(cells, history=False)
        assert [r.metrics.delivered for r in traced.results] == [
            r.metrics.delivered for r in untraced.results
        ]
        assert [r.stable for r in traced.results] == [
            r.stable for r in untraced.results
        ]
