"""Tests for the executable ABS lemma checks."""

from fractions import Fraction

import pytest

from repro.analysis import (
    check_all_lemmas,
    check_lemma1_phase_alignment,
    check_lemma2_liveness,
    check_lemma3_bit_groups,
    check_lemma4_no_disjoint_transmissions,
    run_instrumented_election,
)
from repro.analysis.lemma_checks import (
    ElectionRecord,
    PhaseEntry,
    PhaseTransmission,
)
from repro.core import make_interval
from repro.timing import (
    PerStationFixed,
    RandomUniform,
    Synchronous,
    worst_case_for,
)


def record(n=2, r=2, **kwargs):
    return ElectionRecord(
        n=n, max_slot_length=Fraction(r), realized_r=Fraction(r), **kwargs
    )


class TestLemma1Unit:
    def test_aligned_entries_pass(self):
        rec = record()
        rec.entries = [
            PhaseEntry(1, 0, Fraction(0)),
            PhaseEntry(2, 0, Fraction(1)),
        ]
        assert check_lemma1_phase_alignment(rec) == []

    def test_misaligned_entries_flagged(self):
        rec = record()
        rec.entries = [
            PhaseEntry(1, 3, Fraction(0)),
            PhaseEntry(2, 3, Fraction(100)),
        ]
        violations = check_lemma1_phase_alignment(rec)
        assert violations and violations[0].lemma == "Lemma 1"

    def test_spread_exactly_2r_allowed(self):
        rec = record(r=2)
        rec.entries = [
            PhaseEntry(1, 0, Fraction(0)),
            PhaseEntry(2, 0, Fraction(4)),
        ]
        assert check_lemma1_phase_alignment(rec) == []


class TestLemma2Unit:
    def test_winner_satisfies(self):
        rec = record()
        rec.winner = 1
        rec.eliminations = {2: (0, Fraction(5))}
        assert check_lemma2_liveness(rec) == []

    def test_all_dead_no_winner_flagged(self):
        rec = record()
        rec.eliminations = {1: (0, Fraction(5)), 2: (0, Fraction(6))}
        violations = check_lemma2_liveness(rec)
        assert violations and violations[0].lemma == "Lemma 2"

    def test_still_running_satisfies(self):
        rec = record()
        rec.eliminations = {1: (0, Fraction(5))}
        assert check_lemma2_liveness(rec) == []


class TestLemma3Unit:
    def test_bit1_survivor_flagged(self):
        # Phase 0: station 2 (bit 0) and station 1 (bit 1) both alive;
        # station 1 entering phase 1 violates Lemma 3.
        rec = record()
        rec.entries = [
            PhaseEntry(1, 0, Fraction(0)),
            PhaseEntry(2, 0, Fraction(0)),
            PhaseEntry(1, 1, Fraction(50)),
        ]
        violations = check_lemma3_bit_groups(rec)
        assert violations and "bit-1 stations [1]" in violations[0].detail

    def test_bit1_eliminated_passes(self):
        rec = record()
        rec.entries = [
            PhaseEntry(1, 0, Fraction(0)),
            PhaseEntry(2, 0, Fraction(0)),
            PhaseEntry(2, 1, Fraction(50)),
        ]
        assert check_lemma3_bit_groups(rec) == []

    def test_single_group_unconstrained(self):
        # Both stations have bit 1 at phase 0 (ids 1 and 3): Lemma 3
        # says nothing.
        rec = record(n=3)
        rec.entries = [
            PhaseEntry(1, 0, Fraction(0)),
            PhaseEntry(3, 0, Fraction(0)),
            PhaseEntry(1, 1, Fraction(40)),
            PhaseEntry(3, 1, Fraction(40)),
        ]
        assert check_lemma3_bit_groups(rec) == []


class TestLemma4Unit:
    def test_overlapping_transmissions_pass(self):
        rec = record()
        rec.transmissions = [
            PhaseTransmission(1, 0, make_interval(10, 12)),
            PhaseTransmission(2, 0, make_interval(11, 13)),
        ]
        assert check_lemma4_no_disjoint_transmissions(rec) == []

    def test_disjoint_same_phase_flagged(self):
        rec = record()
        rec.transmissions = [
            PhaseTransmission(1, 0, make_interval(10, 11)),
            PhaseTransmission(2, 0, make_interval(20, 21)),
        ]
        violations = check_lemma4_no_disjoint_transmissions(rec)
        assert violations and violations[0].lemma == "Lemma 4"

    def test_disjoint_across_phases_allowed(self):
        rec = record()
        rec.transmissions = [
            PhaseTransmission(1, 0, make_interval(10, 11)),
            PhaseTransmission(2, 1, make_interval(20, 21)),
        ]
        assert check_lemma4_no_disjoint_transmissions(rec) == []


class TestInstrumentedElections:
    @pytest.mark.parametrize(
        "n,R,adversary,r",
        [
            (4, 1, Synchronous(), 1),
            (5, 2, PerStationFixed({1: 1, 2: "3/2", 3: 2, 4: "5/4", 5: "7/4"}), 2),
            (8, 2, worst_case_for(2), 2),
            (6, 3, worst_case_for(3), 3),
        ],
    )
    def test_all_lemmas_hold_on_real_executions(self, n, R, adversary, r):
        rec = run_instrumented_election(n, R, adversary, realized_r=r)
        assert rec.winner is not None
        assert check_all_lemmas(rec) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_all_lemmas_hold_on_random_schedules(self, seed):
        rec = run_instrumented_election(
            6, 2, RandomUniform(2, seed=seed), realized_r=2
        )
        assert rec.winner is not None
        assert check_all_lemmas(rec) == []

    def test_record_contains_full_story(self):
        rec = run_instrumented_election(5, 2, worst_case_for(2), realized_r=2)
        assert rec.first_success_end is not None
        # n-1 eliminations + 1 winner account for everyone.
        assert len(rec.eliminations) == 4
        assert rec.transmissions  # at least the winning transmission
        assert 0 in rec.entries_by_phase()  # everyone entered phase 0
        assert len(rec.entries_by_phase()[0]) == 5
