"""Suite-wide fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_history(tmp_path, monkeypatch):
    """Point default run-history recording at a per-test database.

    Recording is automatic (and silent), so without this every CLI
    test would append forensics rows to the developer's real
    ``.repro-cache/history.db``.  Tests that want to *read* what was
    recorded use this same path via :func:`repro.obs.default_db_path`.
    """
    monkeypatch.setenv("REPRO_HISTORY_DB", str(tmp_path / "history.db"))
