"""The vectorized batch engine is observably invisible.

Contract under test (see ``docs/vectorization.md``):

* **Auto-detection** — ``Simulator(engine="auto")`` promotes exactly the
  lattice-eligible runs whose algorithm and adversary classes have
  registered vector programs; every other configuration demotes to the
  object path with a human-readable reason in ``engine_detail``, and a
  *forced* ``engine="batch"`` raises that same reason.
* **Parity** — for every eligible configuration the batch kernel
  produces a bit-identical execution: same events, same delivery
  instants (exact rationals), same channel counters, same retained
  channel history, same pending event heap, same per-station runtime
  state.  Not approximately — ``==`` on everything.
* **Transparency** — engine choice never leaks into results: grid
  cells, chaos-disturbed pools, and trace spans agree with the object
  path in everything but wall-clock.
"""

import dataclasses
import pathlib
from fractions import Fraction

import pytest

np = pytest.importorskip("numpy")

from repro.algorithms import CAArrow, RRW, SlottedAloha
from repro.analysis import run_cell
from repro.arrivals import ArrivalSource, UniformRate
from repro.core import Simulator
from repro.core.batch import BATCH_ALGORITHMS, BATCH_SCHEDULES, batch_blocker
from repro.core.errors import ConfigurationError
from repro.core.trace import Trace
from repro.obs.probes import ProbeBus
from repro.obs.profiling import PhaseProfiler
from repro.obs.tracing import Tracer, activate, deactivate
from repro.scenarios import ScenarioSpec, load_spec
from repro.scenarios.registry import ALGORITHMS, SCHEDULES
from repro.timing import Adaptive, Synchronous

SCENARIOS = pathlib.Path(__file__).resolve().parents[1] / "scenarios"

#: Registered scenario algorithms with a vector program (everything
#: else must demote, naming its class).  The adaptive families — ABS
#: and the ARRoWs — promote through the masked-update programs of
#: ``repro.core.batch_adaptive``; ``doubling``/``randomized`` remain
#: object-path (no registered program).
BATCH_ELIGIBLE_ALGORITHMS = {
    "aloha", "mbtf", "rrw", "tdma",
    "abs", "ao-arrow", "ca-arrow", "ca-arrow-ft",
}

#: Scenario algorithms whose programs are adaptive masked-update ones.
ADAPTIVE_BATCH_ALGORITHMS = {"abs", "ao-arrow", "ca-arrow", "ca-arrow-ft"}

#: Bundled scenario files expected to auto-promote / demote.  The crash
#: and jammed ARRoW scenarios stay object-path: ``crash_fleet`` wraps
#: every station in ``Crashable`` (no program) and jammers make the
#: fleet heterogeneous.
BATCH_ELIGIBLE_SCENARIOS = {
    "aloha_random", "mbtf_sync", "rrw_sync", "tdma_sync",
    "abs_election_worst", "ao_arrow_worst", "ca_arrow_worst",
}

#: Registered schedule names -> extra spec parameters they require.
SCHEDULE_PARAMS = {
    "sync": {},
    "worst": {},
    "random": {},
    "fixed": {"length": "3/2"},
    "per-station-fixed": {"lengths": {"1": "1", "2": "3/2", "3": "2", "4": "1"}},
    "cyclic": {"patterns": {"1": ["1", "3/2"], "2": ["2", "1"],
                            "3": ["1"], "4": ["3/2"]}},
}


def spec_for(algorithm, schedule="sync", **overrides):
    params = dict(
        algorithm=algorithm, n=4, max_slot=2, rho="1/2", horizon=200,
        schedule={"name": schedule, **SCHEDULE_PARAMS.get(schedule, {})},
    )
    params.update(overrides)
    return ScenarioSpec(**params)


def fingerprint(sim, drain=True):
    """Every observable of a run — plus internal scheduling state.

    Stricter than the golden-parity fingerprint: the pending event
    heap, per-station runtime fields, and the retained channel record
    list must match too, so a batch run can be *continued* by the
    object loop (or vice versa) without any divergence later.
    """
    if drain:
        sim.channel.drain_all(sim.now)
    return (
        sim.events_processed,
        sim.now,
        sim.total_backlog,
        sim.trace.max_backlog,
        tuple(
            (p.packet_id, p.station_id, p.arrival_time, p.delivered_time,
             p.cost)
            for p in sim.delivered_packets
        ),
        dataclasses.astuple(sim.channel.stats),
        tuple(sorted(sim._event_heap)),
        tuple(
            (rt.station_id, rt.slot_index, rt.slot_start, rt.slot_end,
             rt.slots_elapsed, len(rt.queue))
            for rt in (sim.stations[sid] for sid in sim.station_ids)
        ),
        tuple(
            (t.station_id, t.interval.start, t.interval.end, t.overlapped,
             t.packet.packet_id if t.packet is not None else None)
            for t in sim.channel._transmissions
        ),
    )


def paired(spec, **build_kwargs):
    object_sim = spec.build(engine="object", **build_kwargs)
    batch_sim = spec.build(engine="batch", **build_kwargs)
    assert object_sim.engine == "object"
    assert batch_sim.engine == "batch"
    return object_sim, batch_sim


class LatticeNoHintSource(ArrivalSource):
    """On the integer lattice but adaptive: no ``next_arrival_hint``."""

    def arrivals_until(self, sim, upto):
        return ()

    def lattice_denominator(self):
        return 1


class TestEngineAutoDetection:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS.names()))
    def test_every_registered_algorithm_resolves_with_reason(self, name):
        sim = spec_for(name).build()
        if name in BATCH_ELIGIBLE_ALGORITHMS:
            assert sim.engine == "batch"
            # Promotion names the matched vector programs (satellite of
            # the adaptive-vectorization issue: --verbose-engine prints
            # the promotion path, not just demotion reasons).
            assert sim.engine_detail.startswith("promoted: ")
            cls = type(next(iter(sim.stations.values())).algorithm)
            assert cls.__name__ in sim.engine_detail
            assert f"{cls.__name__}Program" in sim.engine_detail
            if name in ADAPTIVE_BATCH_ALGORITHMS:
                assert "adaptive masked-update" in sim.engine_detail
                assert sim.engine_described == "batch(adaptive)"
            else:
                assert "non-adaptive" in sim.engine_detail
                assert sim.engine_described == "batch(nonadaptive)"
        else:
            # Ineligible -> object path, and the reason names the
            # blocking class so `repro run` output is actionable.
            assert sim.engine == "object"
            assert sim.engine_detail is not None
            cls = type(next(iter(sim.stations.values())).algorithm)
            assert cls.__name__ in sim.engine_detail

    @pytest.mark.parametrize("name", sorted(SCHEDULES.names()))
    def test_every_registered_schedule_is_vectorized(self, name):
        sim = spec_for("rrw", schedule=name).build()
        assert sim.engine == "batch", sim.engine_detail

    def test_registries_are_populated(self):
        assert {cls.__name__ for cls in BATCH_ALGORITHMS} >= {
            "SlottedAloha", "NaiveTDMA", "RRW", "MBTFLike", "KSelection",
            "ABSLeaderElection", "AOArrow", "CAArrow",
            "FaultTolerantCAArrow",
        }
        adaptive = {
            cls.__name__
            for cls, prog in BATCH_ALGORITHMS.items()
            if prog.adaptive
        }
        assert adaptive == {
            "ABSLeaderElection", "AOArrow", "CAArrow",
            "FaultTolerantCAArrow",
        }
        assert {cls.__name__ for cls in BATCH_SCHEDULES} >= {
            "Synchronous", "FixedLength", "PerStationFixed",
            "CyclicPattern", "WorstCaseCyclic", "TableDriven",
            "RandomUniform",
        }

    def test_off_lattice_adversary_demotes_with_reason(self):
        adversary = Adaptive(lambda sim, sid, idx: Fraction(3, 2))
        sim = Simulator(
            {i: RRW(i, 3) for i in range(1, 4)}, adversary,
            max_slot_length=2,
        )
        assert sim.engine == "object"
        assert "Fraction timebase" in sim.engine_detail

    def test_unvectorized_adversary_on_lattice_demotes_by_name(self):
        class RigidSync(Synchronous):
            """Lattice-friendly subclass with no registered program."""

        sim = Simulator(
            {i: RRW(i, 3) for i in range(1, 4)}, RigidSync(),
            max_slot_length=2,
        )
        assert sim.timebase.is_lattice
        assert sim.engine == "object"
        assert "RigidSync" in sim.engine_detail

    def test_probe_bus_demotes(self):
        spec = spec_for("rrw")
        sim = spec.build(probes=ProbeBus())
        assert sim.engine == "object"
        assert "ProbeBus" in sim.engine_detail

    def test_profiler_demotes(self):
        sim = spec_for("rrw").build(profiler=PhaseProfiler())
        assert sim.engine == "object"
        assert "PhaseProfiler" in sim.engine_detail

    def test_record_slots_demotes(self):
        sim = spec_for("rrw").build(trace=Trace(record_slots=True))
        assert sim.engine == "object"
        assert "record_slots" in sim.engine_detail

    def test_mixed_algorithm_classes_demote(self):
        fleet = {1: RRW(1, 3), 2: RRW(2, 3), 3: SlottedAloha(3, 0.5)}
        sim = Simulator(fleet, Synchronous(), max_slot_length=2)
        assert sim.engine == "object"
        assert "mixed" in sim.engine_detail

    def test_hintless_source_demotes(self):
        sim = Simulator(
            {i: RRW(i, 3) for i in range(1, 4)}, Synchronous(),
            max_slot_length=2, arrival_source=LatticeNoHintSource(),
        )
        assert sim.timebase.is_lattice
        assert sim.engine == "object"
        assert "next_arrival_hint" in sim.engine_detail

    def test_forced_batch_raises_the_detection_reason(self):
        spec = spec_for("doubling", rho=None)
        reason = batch_blocker(spec.build())
        with pytest.raises(ConfigurationError, match="DoublingABS"):
            spec.build(engine="batch")
        assert "DoublingABS" in reason

    def test_mixed_adaptive_nonadaptive_fleet_demotes(self):
        from repro.algorithms import AOArrow

        fleet = {1: AOArrow(1, 3, 2), 2: AOArrow(2, 3, 2), 3: RRW(3, 3)}
        sim = Simulator(fleet, Synchronous(), max_slot_length=2)
        assert sim.engine == "object"
        assert "mixed" in sim.engine_detail
        assert "AOArrow" in sim.engine_detail and "RRW" in sim.engine_detail
        with pytest.raises(ConfigurationError, match="mixed"):
            Simulator(
                dict(fleet), Synchronous(), max_slot_length=2,
                engine="batch",
            )

    def test_abs_threshold_overrides_demote(self):
        from repro.algorithms import ABSLeaderElection

        fleet = {i: ABSLeaderElection(i, 2) for i in range(1, 5)}
        fleet[2].core.threshold0_override = 7
        fleet[2].core.__post_init__()
        sim = Simulator(fleet, Synchronous(), max_slot_length=2)
        assert sim.engine == "object"
        assert "threshold overrides" in sim.engine_detail
        with pytest.raises(ConfigurationError, match="threshold overrides"):
            Simulator(
                dict(fleet), Synchronous(), max_slot_length=2,
                engine="batch",
            )

    def test_adaptive_fraction_timebase_falls_back_with_reason(self):
        from repro.algorithms import CAArrow as CA

        adversary = Adaptive(lambda sim, sid, idx: Fraction(3, 2))
        sim = Simulator(
            {i: CA(i, 3, 2) for i in range(1, 4)}, adversary,
            max_slot_length=2,
        )
        assert sim.engine == "object"
        assert "Fraction timebase" in sim.engine_detail
        with pytest.raises(ConfigurationError, match="Fraction timebase"):
            Simulator(
                {i: CA(i, 3, 2) for i in range(1, 4)}, adversary,
                max_slot_length=2, engine="batch",
            )

    def test_crashable_fleet_demotes_naming_the_wrapper(self):
        sim = load_spec(SCENARIOS / "ca_arrow_ft_crash.json").build()
        assert sim.engine == "object"
        assert "Crashable" in sim.engine_detail
        assert "no vectorized program" in sim.engine_detail

    def test_jammed_fleet_demotes_as_mixed(self):
        sim = load_spec(SCENARIOS / "ca_arrow_jammed.json").build()
        assert sim.engine == "object"
        assert "mixed" in sim.engine_detail

    def test_forced_batch_with_probes_raises(self):
        with pytest.raises(ConfigurationError, match="ProbeBus"):
            spec_for("rrw").build(engine="batch", probes=ProbeBus())

    def test_stop_when_auto_falls_back_forced_raises(self):
        spec = spec_for("rrw")
        auto = spec.build()  # resolves to batch
        assert auto.engine == "batch"
        auto.run(until_time=50, stop_when=lambda s: s.events_processed >= 10)
        assert auto.events_processed == 10  # per-event check ran
        forced = spec.build(engine="batch")
        with pytest.raises(ConfigurationError, match="stop_when"):
            forced.run(until_time=50, stop_when=lambda s: False)


class TestBatchObjectParity:
    @pytest.mark.parametrize(
        "path",
        sorted(p for p in SCENARIOS.glob("*.json")
               if p.stem in BATCH_ELIGIBLE_SCENARIOS),
        ids=lambda p: p.stem,
    )
    def test_eligible_bundled_scenarios_bit_identical(self, path):
        spec = load_spec(path).replace(horizon=600)
        assert spec.build().engine == "batch"
        object_sim, batch_sim = paired(spec)
        object_sim.run(until_time=spec.horizon)
        batch_sim.run(until_time=spec.horizon)
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    @pytest.mark.parametrize(
        "path",
        sorted(p for p in SCENARIOS.glob("*.json")
               if p.stem not in BATCH_ELIGIBLE_SCENARIOS),
        ids=lambda p: p.stem,
    )
    def test_ineligible_bundled_scenarios_demote_with_reason(self, path):
        sim = load_spec(path).build()
        assert sim.engine == "object"
        assert sim.engine_detail

    @pytest.mark.parametrize("schedule", sorted(SCHEDULE_PARAMS))
    def test_every_vector_schedule_bit_identical(self, schedule):
        spec = spec_for("rrw", schedule=schedule, horizon=300)
        object_sim, batch_sim = paired(spec)
        object_sim.run(until_time=spec.horizon)
        batch_sim.run(until_time=spec.horizon)
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    def test_chunked_max_events_and_prune_boundaries(self):
        """max_events is cumulative; chunk cuts landing mid-tick-group
        must stay bit-identical, including the channel history pruned
        at every 512-event boundary (regression: the kernel once pruned
        with post-group low water instead of the boundary snapshot)."""
        spec = spec_for("rrw", n=7, horizon=400)
        object_sim, batch_sim = paired(spec)
        object_sim.run(until_time=spec.horizon)
        cuts = (7, 3, 1, 40, 5, 1000, 13)
        i = 0
        while batch_sim.now < spec.horizon:
            budget = batch_sim.events_processed + cuts[i % len(cuts)]
            batch_sim.run(until_time=spec.horizon, max_events=budget)
            if batch_sim.events_processed < budget:
                break  # horizon reached first
            i += 1
        assert object_sim.events_processed > 512  # prune actually fired
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    def test_keep_channel_history_full_record_parity(self):
        spec = spec_for("aloha", schedule="random", horizon=250)
        object_sim, batch_sim = paired(spec, keep_channel_history=True)
        object_sim.run(until_time=spec.horizon)
        batch_sim.run(until_time=spec.horizon)
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    def test_run_until_success_and_continuation(self):
        """SST parity: first success instant matches, and the finished
        batch run continues under the object semantics identically."""
        from repro.algorithms import KSelection
        from repro.timing import worst_case_for

        def build(engine):
            fleet = {
                i: KSelection(i, 3, Fraction(2)) for i in range(1, 13)
            }
            return Simulator(
                fleet, worst_case_for(Fraction(2)), max_slot_length=2,
                initial_packets=1, engine=engine,
            )

        object_sim, batch_sim = build("object"), build("batch")
        ends = (
            object_sim.run_until_success(max_events=100_000),
            batch_sim.run_until_success(max_events=100_000),
        )
        assert ends[0] is not None
        assert ends[0] == ends[1]
        assert fingerprint(object_sim, drain=False) == fingerprint(
            batch_sim, drain=False
        )
        object_sim.run(until_time=5000)
        batch_sim.run(until_time=5000)
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    @pytest.mark.parametrize("name", sorted(ADAPTIVE_BATCH_ALGORITHMS))
    @pytest.mark.parametrize("schedule", ["sync", "worst"])
    def test_adaptive_families_bit_identical(self, name, schedule):
        overrides = {"rho": None} if name == "abs" else {}
        spec = spec_for(name, schedule=schedule, n=6, horizon=400,
                        **overrides)
        object_sim, batch_sim = paired(spec)
        object_sim.run(until_time=spec.horizon)
        batch_sim.run(until_time=spec.horizon)
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    def test_adaptive_chunked_max_events(self):
        """Mid-tick budget cuts on an adaptive program: the masked
        sub-steps must commute with any event-order prefix."""
        spec = spec_for("ao-arrow", n=7, horizon=400)
        object_sim, batch_sim = paired(spec)
        object_sim.run(until_time=spec.horizon)
        cuts = (7, 3, 1, 40, 5, 1000, 13)
        i = 0
        while batch_sim.now < spec.horizon:
            budget = batch_sim.events_processed + cuts[i % len(cuts)]
            batch_sim.run(until_time=spec.horizon, max_events=budget)
            if batch_sim.events_processed < budget:
                break
            i += 1
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    def test_adaptive_engines_interleave_on_one_simulator(self):
        """Full bidirectional state sync: an auto(batch) run continued
        on a fresh object-engine clone of its own canonical state must
        agree — here checked by alternating horizon chunks against a
        pure object run."""
        spec = spec_for("ca-arrow-ft", n=5, horizon=600)
        reference = spec.build(engine="object")
        reference.run(until_time=spec.horizon)
        alternating = spec.build(engine="object")
        # Same canonical objects, alternating inner loops per chunk
        # (the kernel snapshots/writes back around every run call).
        for chunk in range(6):
            alternating._engine = "batch" if chunk % 2 else "object"
            alternating.run(until_time=(chunk + 1) * 100)
        assert fingerprint(reference) == fingerprint(alternating)

    def test_ft_skip_ladder_bit_identical(self):
        """A permanently silent ring id engages the skip/claim ladder
        (scalar hot path) on both engines identically."""
        from repro.algorithms import FaultTolerantCAArrow
        from repro.timing import worst_case_for

        def build(engine):
            fleet = {i: FaultTolerantCAArrow(i, 4, 2) for i in (1, 2, 3)}
            return Simulator(
                fleet, worst_case_for(Fraction(2)), max_slot_length=2,
                engine=engine, arrival_source=UniformRate(
                    rho=Fraction(1, 8), targets=[1, 2, 3], assumed_cost=2,
                ),
            )

        object_sim, batch_sim = build("object"), build("batch")
        object_sim.run(until_time=2000)
        batch_sim.run(until_time=2000)
        assert fingerprint(object_sim) == fingerprint(batch_sim)
        skips = sum(
            object_sim.stations[sid].algorithm.stats.skips
            for sid in object_sim.station_ids
        )
        claims = sum(
            object_sim.stations[sid].algorithm.stats.recoveries_claimed
            for sid in object_sim.station_ids
        )
        assert skips > 0 and claims > 0  # the ladder actually engaged
        for sid in object_sim.station_ids:
            a = object_sim.stations[sid].algorithm
            b = batch_sim.stations[sid].algorithm
            assert dataclasses.astuple(a.stats) == dataclasses.astuple(
                b.stats
            )
            assert (a.silent_run, a.skip_count, a.ladder_rounds) == (
                b.silent_run, b.skip_count, b.ladder_rounds
            )

    def test_ft_conflict_mode_staggering_bit_identical(self):
        """Conflict-mode claims stagger thresholds by (2R)^(id-1) with
        exact integers; identical pre-desynchronized fleets must resolve
        identically on both engines."""
        from repro.algorithms import FaultTolerantCAArrow

        def build(engine):
            fleet = {i: FaultTolerantCAArrow(i, 3, 2) for i in (1, 2, 3)}
            for i, algo in fleet.items():
                algo.conflict_mode = True
                algo.state = "claim"
                algo.skip_count = 1
                algo.silent_run = 5
                algo.turn = i
            return Simulator(
                fleet, Synchronous(), max_slot_length=2, engine=engine,
                initial_packets=2,
            )

        object_sim, batch_sim = build("object"), build("batch")
        object_sim.run(until_time=1500)
        batch_sim.run(until_time=1500)
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    def test_ao_arrow_sync_signal_path_bit_identical(self):
        """Sparse arrivals leave super-threshold silences, engaging
        AO-ARRoW's sync_wait/sync_tx machinery on both engines."""
        spec = spec_for("ao-arrow", schedule="worst", rho="1/64",
                        horizon=3000)
        object_sim, batch_sim = paired(spec)
        object_sim.run(until_time=spec.horizon)
        batch_sim.run(until_time=spec.horizon)
        assert fingerprint(object_sim) == fingerprint(batch_sim)
        sync_signals = sum(
            object_sim.stations[sid].algorithm.stats.sync_signals_sent
            for sid in object_sim.station_ids
        )
        assert sync_signals > 0  # the path actually ran

    def test_abs_run_until_success_and_continuation(self):
        """SST on the standalone ABS fleet: first success matches, and
        the finished batch run continues identically."""
        spec = spec_for("abs", schedule="worst", rho=None, n=9,
                        horizon=5000)
        object_sim, batch_sim = paired(spec)
        ends = (
            object_sim.run_until_success(max_events=100_000),
            batch_sim.run_until_success(max_events=100_000),
        )
        assert ends[0] is not None
        assert ends[0] == ends[1]
        assert fingerprint(object_sim, drain=False) == fingerprint(
            batch_sim, drain=False
        )
        object_sim.run(until_time=5000)
        batch_sim.run(until_time=5000)
        assert fingerprint(object_sim) == fingerprint(batch_sim)

    def test_engine_choice_never_reaches_results(self):
        """Grid cells agree on everything a CellResult records."""
        cell = spec_for("rrw", horizon=400).to_cell(name="parity")
        object_result = run_cell(cell, engine="object")
        batch_result = run_cell(cell, engine="batch")
        assert object_result.engine == "object"
        assert batch_result.engine == "batch"
        assert object_result.engine_described == "object"
        assert batch_result.engine_described == "batch(nonadaptive)"
        exempt = {"engine", "engine_described", "timebase", "wall_s"}
        for field in dataclasses.fields(object_result):
            if field.name in exempt:
                continue
            assert getattr(object_result, field.name) == getattr(
                batch_result, field.name
            ), field.name


class TestBatchChaosParity:
    """Batch-engine cells disturbed by the chaos harness still match an
    undisturbed serial run bit-for-bit, and RunHealth records the
    recoveries (the engine is a per-process run option, so respawned
    workers re-resolve it identically)."""

    def test_disturbed_batch_grid_matches_undisturbed_serial(self, tmp_path):
        from repro.exec import (
            ChaosEvent, ChaosPlan, chaos_tasks, fork_available, run_tasks,
        )

        if not fork_available():
            pytest.skip("fork-based pool unavailable")
        cells = [
            spec_for("rrw", horizon=300, rho=f"{k}/8").to_cell(name=f"b{k}")
            for k in range(1, 6)
        ]
        baseline = [run_cell(c) for c in cells]
        assert all(r.engine == "batch" for r in baseline)
        tasks = [(lambda c: (lambda: run_cell(c)))(c) for c in cells]
        plan = ChaosPlan(
            events=(
                ChaosEvent("crash", index=0, attempts=1),
                ChaosEvent("raise", index=2, attempts=1),
                ChaosEvent("hang", index=4, attempts=1),
            ),
            hang_s=30.0,
        )
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        run = run_tasks(
            wrapped, jobs=2, task_timeout=2.0, retries=3,
            backoff_base=0.001,
        )
        assert run.values == baseline
        assert all(r.engine == "batch" for r in run.values)
        assert run.health.worker_crashes >= 1
        assert run.health.timeouts >= 1
        assert run.health.retries >= 3
        assert run.health.failures == 0
        assert run.health.disturbed


class TestBatchObservability:
    def test_trace_spans_identical_but_for_engine(self, tmp_path):
        """RunHealth-adjacent observability: the cell span records the
        same stable/delivered facts on both engines."""
        cell = spec_for("aloha", horizon=300).to_cell(name="span-parity")
        attrs = {}
        for engine in ("object", "batch"):
            tracer = activate(Tracer(spool_dir=tmp_path / engine))
            try:
                run_cell(cell, engine=engine)
            finally:
                deactivate()
            spans = tracer.spans()
            [cell_span] = [s for s in spans if s["name"] == "cell"]
            attrs[engine] = cell_span["args"]
        assert attrs["object"]["engine"] == "object"
        assert attrs["batch"]["engine"] == "batch"
        for key in ("cell", "stable", "delivered"):
            assert attrs["object"][key] == attrs["batch"][key], key
