"""Tests for the Theorem 2 mirror-execution adversary."""

from fractions import Fraction

import pytest

from repro.algorithms import ABSLeaderElection
from repro.analysis import abs_slot_upper_bound, sst_lower_bound_slots
from repro.core import ConfigurationError
from repro.lowerbounds import run_mirror_adversary, verify_mirror_execution
from repro.lowerbounds.mirror import _block_lengths, _block_signature


class TestBlockSignature:
    def test_all_listen(self):
        assert _block_signature([0, 0, 0, 0], r=4) == 1

    def test_all_transmit_gets_r_offset(self):
        assert _block_signature([1, 1, 1, 1], r=4) == 1 + 4

    def test_alternating(self):
        assert _block_signature([0, 1, 0, 1], r=4) == 4

    def test_starting_with_one(self):
        assert _block_signature([1, 0, 0, 1], r=4) == 3 + 4

    def test_range_is_one_to_2r(self):
        r = 3
        import itertools

        values = {
            _block_signature(bits, r)
            for bits in itertools.product([0, 1], repeat=r)
        }
        assert min(values) >= 1 and max(values) <= 2 * r


class TestBlockLengths:
    def test_single_block_stretches_to_r(self):
        lengths = _block_lengths([0, 0, 0, 0], r=4)
        assert lengths == [Fraction(1)] * 4  # 4 slots * 1 = 4 = r

    def test_two_blocks_each_total_r(self):
        lengths = _block_lengths([0, 0, 1, 1], r=4)
        assert lengths == [Fraction(2)] * 4  # each block: 2 slots * 2 = 4

    def test_uneven_blocks(self):
        lengths = _block_lengths([0, 1, 1, 1], r=4)
        assert lengths[0] == Fraction(4)
        assert lengths[1:] == [Fraction(4, 3)] * 3

    def test_all_lengths_within_one_to_r(self):
        import itertools

        r = 4
        for bits in itertools.product([0, 1], repeat=r):
            for length in _block_lengths(list(bits), r):
                assert 1 <= length <= r

    def test_totals_are_r_per_block(self):
        lengths = _block_lengths([0, 1, 0, 0, 1, 1], r=6)
        assert sum(lengths) == 6 * 4  # 4 maximal blocks, each stretched to r


class TestAdversaryAgainstAbs:
    def test_meets_formula_lower_bound(self):
        n, r = 64, 4
        result = run_mirror_adversary(
            lambda sid: ABSLeaderElection(sid, r), n, r
        )
        assert result.slots_forced >= sst_lower_bound_slots(n, r)

    def test_never_exceeds_abs_upper_bound(self):
        # Consistency: the adversary cannot delay ABS beyond Theorem 1.
        for n, r in [(8, 2), (32, 4), (64, 4)]:
            result = run_mirror_adversary(
                lambda sid: ABSLeaderElection(sid, r), n, r
            )
            assert result.slots_forced <= abs_slot_upper_bound(n, r)

    def test_survivor_counts_shrink_geometrically_at_worst(self):
        n, r = 128, 4
        result = run_mirror_adversary(
            lambda sid: ABSLeaderElection(sid, r), n, r
        )
        for phase in result.phases:
            assert phase.alive_after >= phase.alive_before // (2 * r)

    def test_schedule_lengths_legal(self):
        result = run_mirror_adversary(
            lambda sid: ABSLeaderElection(sid, 4), 16, 4
        )
        for lengths in result.schedule.values():
            assert all(1 <= length <= 4 for length in lengths)
            assert len(lengths) == result.slots_forced

    def test_equal_duration_schedules(self):
        # Phases are time-aligned: every survivor's total duration match.
        result = run_mirror_adversary(
            lambda sid: ABSLeaderElection(sid, 4), 16, 4
        )
        totals = {sum(lengths, Fraction(0)) for lengths in result.schedule.values()}
        assert len(totals) == 1

    @pytest.mark.parametrize("n,r", [(8, 2), (16, 2), (16, 4), (64, 4)])
    def test_realized_execution_has_no_success(self, n, r):
        factory = lambda sid: ABSLeaderElection(sid, r)  # noqa: E731
        result = run_mirror_adversary(factory, n, r)
        sim = verify_mirror_execution(factory, result)
        assert sim.channel.count_successes_up_to(sim.now) == 0


class TestAdversaryAgainstGreedy:
    """Against a naive 'transmit immediately' contender the adversary
    keeps everyone colliding forever (capped by max_phases)."""

    def test_greedy_transmitters_never_separate(self):
        from repro.core import StationAlgorithm, TRANSMIT_CONTROL

        class Greedy(StationAlgorithm):
            uses_control_messages = True

            def first_action(self, ctx):
                return TRANSMIT_CONTROL

            def on_slot_end(self, ctx):
                return TRANSMIT_CONTROL

        result = run_mirror_adversary(lambda sid: Greedy(), 8, 2, max_phases=50)
        assert len(result.phases) == 50  # never separated
        assert len(result.survivors) == 8  # all share the same signature


class TestValidation:
    def test_r_one_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mirror_adversary(lambda sid: ABSLeaderElection(sid, 1), 4, 1)

    def test_single_station_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mirror_adversary(lambda sid: ABSLeaderElection(sid, 2), 1, 2)
