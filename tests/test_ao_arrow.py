"""Unit and stability tests for AO-ARRoW (Fig. 5, Theorem 3)."""

from fractions import Fraction

import pytest

from repro.algorithms import AOArrow
from repro.analysis import (
    ao_queue_bound_L,
    ao_sync_extra_wait,
    ao_sync_silence_threshold,
    assess_stability,
    collect_metrics,
)
from repro.arrivals import BurstyRate, StaticSchedule, UniformRate, check_admissible
from repro.core import ConfigurationError, Feedback, Simulator, SlotContext, Trace
from repro.timing import RandomUniform, Synchronous, worst_case_for

from .helpers import make_ao, run_loaded


def ctx(feedback, queue=0, index=1):
    return SlotContext(feedback=feedback, queue_size=queue, slot_index=index)


class TestConstruction:
    def test_id_range_checked(self):
        with pytest.raises(ConfigurationError):
            AOArrow(5, 4, 2)
        with pytest.raises(ConfigurationError):
            AOArrow(0, 4, 2)

    def test_no_control_messages_declared(self):
        assert AOArrow(1, 2, 2).uses_control_messages is False

    def test_thresholds_from_bounds_module(self):
        algo = AOArrow(1, 2, 3)
        assert algo.sync_threshold == ao_sync_silence_threshold(3)
        assert algo.sync_extra == ao_sync_extra_wait(3)


class TestAutomatonUnit:
    def test_starts_election_with_packets(self):
        algo = AOArrow(1, 2, 2)
        algo.first_action(ctx(None, queue=1, index=0))
        assert algo.state == "election"

    def test_observes_without_packets(self):
        algo = AOArrow(1, 2, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        assert algo.state == "observe"

    def test_round_boundary_decrements_wait(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        algo.wait = 2
        algo.on_slot_end(ctx(Feedback.ACK))       # winner's delivery
        algo.on_slot_end(ctx(Feedback.SILENCE))   # round boundary
        assert algo.wait == 1

    def test_busy_does_not_mark_round(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        algo.wait = 2
        algo.on_slot_end(ctx(Feedback.BUSY))
        algo.on_slot_end(ctx(Feedback.SILENCE))
        assert algo.wait == 2

    def test_eligible_station_joins_at_round_boundary(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        algo.on_slot_end(ctx(Feedback.ACK, queue=1))
        algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        assert algo.state == "election"

    def test_waiting_station_does_not_join(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        algo.wait = 2
        algo.on_slot_end(ctx(Feedback.ACK, queue=1))
        algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        assert algo.state == "observe"
        assert algo.wait == 1

    def test_long_silence_clears_wait_and_enters_sync_wait(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        algo.wait = 2
        for _ in range(algo.sync_threshold):
            algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        assert algo.wait == 0
        assert algo.state == "sync_wait"

    def test_long_silence_without_packets_stays_observing(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        algo.wait = 2
        for _ in range(algo.sync_threshold + 5):
            algo.on_slot_end(ctx(Feedback.SILENCE, queue=0))
        assert algo.wait == 0
        assert algo.state == "observe"

    def test_sync_wait_transmits_after_extra_slots(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        for _ in range(algo.sync_threshold):
            algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        assert algo.state == "sync_wait"
        action = None
        for _ in range(algo.sync_extra):
            action = algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        assert action is not None and action.is_transmit and action.carries_packet
        assert algo.state == "sync_tx"

    def test_sync_wait_aborts_to_election_on_activity(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        for _ in range(algo.sync_threshold):
            algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        algo.on_slot_end(ctx(Feedback.BUSY, queue=1))
        assert algo.state == "election"

    def test_observer_treats_activity_after_long_silence_as_sync(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        algo.wait = 2
        for _ in range(algo.sync_threshold):
            algo.on_slot_end(ctx(Feedback.SILENCE, queue=0))
        # A packet arrived meanwhile; the next activity is a sync signal.
        algo.on_slot_end(ctx(Feedback.ACK, queue=1))
        assert algo.state == "election"
        assert algo.wait == 0

    def test_ack_within_election_silence_budget_is_not_sync(self):
        algo = AOArrow(1, 3, 2)
        algo.first_action(ctx(None, queue=0, index=0))
        for _ in range(algo.sync_threshold - 1):
            algo.on_slot_end(ctx(Feedback.SILENCE, queue=1))
        algo.on_slot_end(ctx(Feedback.ACK, queue=1))
        assert algo.state == "observe"
        assert algo.saw_ack


class TestEndToEndBehaviour:
    def test_single_packet_delivered_from_cold_start(self):
        n, R = 3, 2
        algos = make_ao(n, R)
        src = StaticSchedule([(50, 2)])
        sim = Simulator(
            algos, worst_case_for(R), max_slot_length=R, arrival_source=src
        )
        sim.run(until_time=3000)
        assert len(sim.delivered_packets) == 1
        assert sim.total_backlog == 0

    def test_initial_burst_drains(self):
        n, R = 4, 2
        algos = make_ao(n, R)
        sim = Simulator(
            algos, worst_case_for(R), max_slot_length=R, initial_packets=3
        )
        sim.run(until_time=5000)
        assert sim.total_backlog == 0
        assert len(sim.delivered_packets) == 12

    def test_all_packets_conserved(self):
        sim = run_loaded(make_ao(4, 2), R=2, rho="1/2", horizon=4000)
        delivered = len(sim.delivered_packets)
        assert delivered + sim.total_backlog == delivered + sum(
            sim.queue_size(i) for i in sim.station_ids
        ) + (sim.total_backlog - sum(sim.queue_size(i) for i in sim.station_ids))
        # Conservation proper: every injected packet is delivered or queued.
        injected = delivered + sim.total_backlog
        assert injected > 0

    def test_workload_was_admissible(self):
        sim = run_loaded(make_ao(3, 2), R=2, rho="1/2", horizon=3000)
        packets = sim.delivered_packets + [
            p for sid in sim.station_ids for p in sim.stations[sid].queue
        ]
        report = check_admissible(
            packets, rho="1/2", burstiness=2, undelivered_cost=2
        )
        assert report.realized_rate <= Fraction(1, 2)

    def test_no_winner_monopolizes(self):
        sim = run_loaded(make_ao(3, 2), R=2, rho="3/5", horizon=6000)
        by_station = {sid: 0 for sid in sim.station_ids}
        for p in sim.delivered_packets:
            by_station[p.station_id] += 1
        assert all(count > 0 for count in by_station.values())


class TestTheorem3Stability:
    @pytest.mark.parametrize("rho", ["3/10", "3/5", "9/10"])
    def test_bounded_backlog_worst_case_schedule(self, rho):
        n, R = 3, 2
        trace = Trace(record_slots=False, backlog_stride=8)
        src = UniformRate(rho=rho, targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(
            make_ao(n, R),
            worst_case_for(R),
            max_slot_length=R,
            arrival_source=src,
            trace=trace,
        )
        horizon = 20_000
        sim.run(until_time=horizon)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        verdict = assess_stability(samples, horizon, tolerance=5)
        assert verdict.stable, f"rho={rho}: {verdict.window_maxima}"

    def test_queue_cost_below_theorem_bound(self):
        n, R, rho, b = 2, 2, Fraction(1, 2), 2
        trace = Trace(record_slots=False, backlog_stride=1)
        src = BurstyRate(rho=rho, burst_size=2, targets=[1, 2], assumed_cost=R)
        sim = Simulator(
            make_ao(n, R),
            worst_case_for(R),
            max_slot_length=R,
            arrival_source=src,
            trace=trace,
        )
        sim.run(until_time=30_000)
        measured_cost_bound = trace.max_backlog * R
        assert measured_cost_bound <= ao_queue_bound_L(n, R, rho, b, R)

    @pytest.mark.parametrize("seed", range(3))
    def test_stable_under_random_schedules(self, seed):
        n, R = 4, 2
        src = UniformRate(rho="7/10", targets=[1, 2, 3, 4], assumed_cost=R)
        trace = Trace(backlog_stride=8)
        sim = Simulator(
            make_ao(n, R),
            RandomUniform(R, seed=seed),
            max_slot_length=R,
            arrival_source=src,
            trace=trace,
        )
        sim.run(until_time=15_000)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 15_000, tolerance=5).stable

    def test_stable_under_synchrony_too(self):
        # R=1 degenerate case must also work (Fig. 1 comparability).
        n = 3
        src = UniformRate(rho="4/5", targets=[1, 2, 3], assumed_cost=1)
        trace = Trace(backlog_stride=8)
        sim = Simulator(
            make_ao(n, 1),
            Synchronous(),
            max_slot_length=1,
            arrival_source=src,
            trace=trace,
        )
        sim.run(until_time=15_000)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 15_000, tolerance=5).stable

    def test_throughput_tracks_rate(self):
        sim = run_loaded(make_ao(3, 2), R=2, rho="3/5", horizon=20_000)
        metrics = collect_metrics(sim)
        # Delivered cost per time should approach the injection rate.
        assert Fraction(2, 5) < metrics.throughput_cost <= Fraction(4, 5)
