"""Property-based tests for fault tolerance and the §VII extensions.

Random crash points x random slot schedules x random workloads, with
the invariants that must survive all of it:

* FT-CA never collides, whatever crashes happen;
* live stations' packets keep flowing as long as at least one station
  survives;
* DoublingABS and RandomizedSST never produce two winners;
* the Crashable wrapper is exactly transparent before its crash point.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    CAArrow,
    DoublingABS,
    FaultTolerantCAArrow,
    RandomizedSST,
)
from repro.arrivals import UniformRate
from repro.core import Simulator
from repro.faults import Crashable, crash_fleet
from repro.timing import RandomUniform


@given(
    crash_station=st.integers(min_value=1, max_value=4),
    crash_slot=st.integers(min_value=0, max_value=120),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_ft_ca_collision_free_under_any_single_crash(
    crash_station, crash_slot, seed
):
    n, R = 4, 2
    fleet = crash_fleet(
        {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)},
        {crash_station: crash_slot},
    )
    live = [i for i in range(1, n + 1) if i != crash_station]
    source = UniformRate(rho="1/4", targets=live, assumed_cost=R)
    sim = Simulator(fleet, RandomUniform(R, seed=seed), R, arrival_source=source)
    sim.run(until_time=3000)
    assert sim.channel.stats.collisions == 0


@given(
    crash_slots=st.lists(
        st.integers(min_value=0, max_value=80), min_size=2, max_size=2
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_ft_ca_delivers_with_two_crashes(crash_slots, seed):
    n, R = 4, 2
    crashes = {2: crash_slots[0], 3: crash_slots[1]}
    fleet = crash_fleet(
        {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)}, crashes
    )
    source = UniformRate(rho="1/5", targets=[1, 4], assumed_cost=R)
    sim = Simulator(fleet, RandomUniform(R, seed=seed), R, arrival_source=source)
    sim.run(until_time=8000)
    assert sim.channel.stats.collisions == 0
    assert len(sim.delivered_packets) > 50


@given(
    crash_slot=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_crashable_transparent_before_crash(crash_slot, seed):
    """Identical prefixes: a wrapped fleet behaves exactly like an
    unwrapped one up to the crash point."""
    n, R = 3, 2

    def run(wrapped):
        algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
        if wrapped:
            algos = {
                sid: Crashable(algo, crash_at_slot=crash_slot + 1000)
                for sid, algo in algos.items()
            }
        source = UniformRate(rho="1/3", targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(
            algos, RandomUniform(R, seed=seed), R, arrival_source=source
        )
        sim.run(max_events=3 * crash_slot)  # all well before any crash
        return (
            len(sim.delivered_packets),
            sim.total_backlog,
            sim.channel.stats.transmissions,
        )

    assert run(False) == run(True)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_doubling_abs_never_two_winners(seed):
    n, r = 5, 3
    algos = {i: DoublingABS(i, n) for i in range(1, n + 1)}
    sim = Simulator(algos, RandomUniform(r, seed=seed), max_slot_length=r)
    sim.run(
        max_events=2_000_000,
        stop_when=lambda s: all(a.is_done for a in algos.values()),
    )
    winners = [i for i, a in algos.items() if a.outcome == "won"]
    assert len(winners) <= 1
    if all(a.is_done for a in algos.values()):
        assert len(winners) == 1


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    probability_percent=st.integers(min_value=10, max_value=90),
)
@settings(max_examples=20, deadline=None)
def test_randomized_sst_never_two_winners(seed, probability_percent):
    n, R = 5, 2
    algos = {
        i: RandomizedSST(
            i, transmit_probability=probability_percent / 100, seed=seed
        )
        for i in range(1, n + 1)
    }
    sim = Simulator(algos, RandomUniform(R, seed=seed + 1), max_slot_length=R)
    sim.run(
        max_events=300_000,
        stop_when=lambda s: all(a.is_done for a in algos.values()),
    )
    winners = [i for i, a in algos.items() if a.outcome == "won"]
    assert len(winners) <= 1
