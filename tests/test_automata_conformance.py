"""E11: automaton well-formedness for Figs. 3, 5, 6.

Every (state, feedback, queue-regime) combination of each automaton
must yield a defined action — never an unhandled branch, never an
action that violates the automaton's declared model row (AO-ARRoW must
not emit control messages; CA-ARRoW never transmits outside its turn).
Transitions are driven exhaustively by brute force over the reachable
state space under short feedback strings.
"""

import itertools

import pytest

from repro.algorithms import AOArrow, CAArrow, FaultTolerantCAArrow
from repro.algorithms.abs_leader import AbsCore
from repro.core import Feedback, ProtocolError, SlotContext

FEEDBACKS = [Feedback.SILENCE, Feedback.BUSY, Feedback.ACK]


def ctx(feedback, queue, index=1):
    return SlotContext(feedback=feedback, queue_size=queue, slot_index=index)


def drive(algo, feedback_string, queue):
    """Feed a feedback string; returns the actions taken (skipping
    infeasible prefixes, i.e. model-impossible feedback for the action
    on the air)."""
    actions = [algo.first_action(ctx(None, queue, 0))]
    for index, feedback in enumerate(feedback_string, start=1):
        previous = actions[-1]
        if previous.is_transmit and feedback is Feedback.SILENCE:
            return None  # channel-model-impossible path
        actions.append(algo.on_slot_end(ctx(feedback, queue, index)))
    return actions


class TestAbsCoreConformance:
    @pytest.mark.parametrize("station_id", [1, 2, 3, 6])
    @pytest.mark.parametrize("depth", [4])
    def test_every_feasible_path_defined(self, station_id, depth):
        for string in itertools.product(FEEDBACKS, repeat=depth):
            core = AbsCore(station_id=station_id, max_slot_length=2)
            action = core.start()
            feasible = True
            for feedback in string:
                if core.done:
                    break
                if action is not None and action.is_transmit and feedback is Feedback.SILENCE:
                    feasible = False
                    break
                action = core.step(feedback)
            if not feasible:
                continue
            # Terminal cores must carry an outcome; live ones a state.
            if core.done:
                assert core.outcome in ("won", "eliminated")
            else:
                assert core.state in ("wait_silence", "listen_threshold", "transmitted")

    def test_impossible_feedback_rejected_not_mangled(self):
        core = AbsCore(station_id=2, max_slot_length=2)
        core.start()
        core.step(Feedback.SILENCE)
        for _ in range(6):
            core.step(Feedback.SILENCE)  # reaches the transmit slot
        with pytest.raises(ProtocolError):
            core.step(Feedback.SILENCE)


class TestAOArrowConformance:
    @pytest.mark.parametrize("queue", [0, 3])
    @pytest.mark.parametrize("depth", [5])
    def test_every_feasible_path_defined_and_control_free(self, queue, depth):
        for string in itertools.product(FEEDBACKS, repeat=depth):
            algo = AOArrow(2, 3, 2)
            actions = drive(algo, string, queue)
            if actions is None:
                continue
            for action in actions:
                if action.is_transmit:
                    assert action.carries_packet, (
                        "AO-ARRoW emitted a control message"
                    )
            assert algo.state in (
                "observe", "election", "drain", "sync_wait", "sync_tx"
            )

    def test_never_transmits_with_empty_queue(self):
        for string in itertools.product(FEEDBACKS, repeat=5):
            algo = AOArrow(1, 2, 2)
            actions = drive(algo, string, queue=0)
            if actions is None:
                continue
            assert all(not action.is_transmit for action in actions)


class TestCAArrowConformance:
    @pytest.mark.parametrize("station_id", [1, 2, 3])
    @pytest.mark.parametrize("queue", [0, 2])
    def test_every_feasible_path_defined(self, station_id, queue):
        for string in itertools.product(FEEDBACKS, repeat=5):
            algo = CAArrow(station_id, 3, 2)
            actions = drive(algo, string, queue)
            if actions is None:
                continue
            assert algo.state in ("wait_end", "gap", "transmitting")
            assert 1 <= algo.turn <= 3

    def test_non_holder_stays_silent(self):
        # Station 3 of a 3-ring only ever transmits after its turn has
        # provably arrived (two observed turn completions).
        for string in itertools.product(FEEDBACKS, repeat=4):
            algo = CAArrow(3, 3, 2)
            actions = drive(algo, string, queue=2)
            if actions is None:
                continue
            for action in actions:
                if action.is_transmit:
                    assert algo.stats.turns_taken >= 1
                    assert algo.turn == 3


class TestFTCAArrowConformance:
    @pytest.mark.parametrize("station_id", [1, 2])
    def test_every_feasible_path_defined(self, station_id):
        for string in itertools.product(FEEDBACKS, repeat=5):
            algo = FaultTolerantCAArrow(station_id, 3, 2)
            actions = drive(algo, string, queue=1)
            if actions is None:
                continue
            assert algo.state in ("wait_end", "gap", "transmitting", "claim")
            assert algo.skip_count >= 0
            assert algo.silent_run >= 0

    def test_reduces_to_ca_on_short_horizons(self):
        # With the ladder disengaged (short feedback strings), FT-CA and
        # CA take identical actions on identical inputs.
        for string in itertools.product(FEEDBACKS, repeat=5):
            ca = CAArrow(2, 3, 2)
            ft = FaultTolerantCAArrow(2, 3, 2)
            a = drive(ca, string, queue=2)
            b = drive(ft, string, queue=2)
            if a is None or b is None:
                assert a == b  # both infeasible at the same prefix
                continue
            assert a == b
