"""Unit tests for the slot-length adversaries."""

from fractions import Fraction

import pytest

from repro.core import AlwaysListen, ConfigurationError, Simulator
from repro.timing import (
    Adaptive,
    CyclicPattern,
    FixedLength,
    PerStationFixed,
    RandomUniform,
    StretchTransmitters,
    Synchronous,
    TableDriven,
    worst_case_for,
)


class _Sim:
    """Minimal stand-in; only adversaries needing state get a real one."""


class TestSynchronous:
    def test_always_unit(self):
        adv = Synchronous()
        for j in range(10):
            assert adv.next_slot_length(_Sim(), 1, j) == 1


class TestFixedLength:
    def test_constant(self):
        adv = FixedLength("5/2")
        assert adv.next_slot_length(_Sim(), 3, 7) == Fraction(5, 2)


class TestPerStationFixed:
    def test_per_station(self):
        adv = PerStationFixed({1: 1, 2: "3/2"})
        assert adv.next_slot_length(_Sim(), 1, 0) == 1
        assert adv.next_slot_length(_Sim(), 2, 0) == Fraction(3, 2)

    def test_unknown_station_rejected(self):
        adv = PerStationFixed({1: 1})
        with pytest.raises(ConfigurationError):
            adv.next_slot_length(_Sim(), 9, 0)


class TestCyclicPattern:
    def test_cycles(self):
        adv = CyclicPattern({1: [1, 2, "3/2"]})
        lengths = [adv.next_slot_length(_Sim(), 1, j) for j in range(6)]
        assert lengths == [1, 2, Fraction(3, 2)] * 2

    def test_empty_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            CyclicPattern({1: []})


class TestTableDriven:
    def test_table_then_default(self):
        adv = TableDriven({1: [2, "3/2"]}, default=1)
        assert adv.next_slot_length(_Sim(), 1, 0) == 2
        assert adv.next_slot_length(_Sim(), 1, 1) == Fraction(3, 2)
        assert adv.next_slot_length(_Sim(), 1, 2) == 1

    def test_unknown_station_gets_default(self):
        adv = TableDriven({}, default="7/4")
        assert adv.next_slot_length(_Sim(), 5, 0) == Fraction(7, 4)


class TestRandomUniform:
    def test_deterministic_per_seed(self):
        a = RandomUniform(3, seed=11)
        b = RandomUniform(3, seed=11)
        seq_a = [a.next_slot_length(_Sim(), 1, j) for j in range(50)]
        seq_b = [b.next_slot_length(_Sim(), 1, j) for j in range(50)]
        assert seq_a == seq_b

    def test_lengths_in_range(self):
        adv = RandomUniform(4, seed=3)
        for j in range(200):
            length = adv.next_slot_length(_Sim(), 1, j)
            assert 1 <= length <= 4

    def test_non_divisible_span_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomUniform("7/3", seed=0, denominator=2)

    def test_r_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomUniform("1/2", seed=0)


class TestAdaptive:
    def test_callback_receives_arguments(self):
        seen = []

        def decide(sim, sid, idx):
            seen.append((sid, idx))
            return 1

        adv = Adaptive(decide)
        adv.next_slot_length(_Sim(), 4, 9)
        assert seen == [(4, 9)]


class TestStretchTransmitters:
    def test_listening_station_gets_unit_slots(self):
        sim = Simulator([AlwaysListen()], StretchTransmitters(3), 3)
        sim.run(until_time=5)
        assert sim.slots_elapsed(1) == 5  # all unit length

    def test_transmitting_station_gets_max_slots(self):
        from repro.core import AlwaysTransmit

        sim = Simulator([AlwaysTransmit()], StretchTransmitters(3), 3)
        sim.run(until_time=6)
        assert sim.slots_elapsed(1) == 2  # all length 3


class TestWorstCaseFor:
    def test_unit_r_degenerates_to_synchronous(self):
        adv = worst_case_for(1)
        assert adv.next_slot_length(_Sim(), 1, 0) == 1

    def test_lengths_within_bound(self):
        adv = worst_case_for(3)
        for sid in (1, 2):
            for j in range(12):
                assert 1 <= adv.next_slot_length(_Sim(), sid, j) <= 3

    def test_stations_get_different_patterns(self):
        adv = worst_case_for(2)
        seq1 = [adv.next_slot_length(_Sim(), 1, j) for j in range(12)]
        seq2 = [adv.next_slot_length(_Sim(), 2, j) for j in range(12)]
        assert seq1 != seq2
