"""End-to-end integration scenarios across subsystem boundaries.

Each test is a small story exercising several modules together —
the kind of composite behaviour unit tests cannot see.
"""

from fractions import Fraction

import pytest

from repro.algorithms import AOArrow, CAArrow, FaultTolerantCAArrow
from repro.analysis import (
    assess_stability,
    collect_metrics,
    summarize_latencies,
    utilization,
    wasted_time,
)
from repro.arrivals import check_admissible
from repro.arrivals import (
    BurstyRate,
    ConcatSource,
    StaticSchedule,
    UniformRate,
)
from repro.core import Simulator, Trace
from repro.faults import PeriodicJammer, crash_fleet
from repro.timing import RandomUniform, Synchronous, worst_case_for


class TestLoadSpikeRecovery:
    """Quiet system -> burst -> quiet: backlog spikes and fully drains."""

    @pytest.mark.parametrize("make", ["ao", "ca"])
    def test_spike_drains_to_zero(self, make):
        n, R = 3, 2
        algos = (
            {i: AOArrow(i, n, R) for i in range(1, n + 1)}
            if make == "ao"
            else {i: CAArrow(i, n, R) for i in range(1, n + 1)}
        )
        spike = StaticSchedule(
            [(500, (k % 3) + 1) for k in range(30)]
        )
        trace = Trace(backlog_stride=1)
        sim = Simulator(
            algos, worst_case_for(R), R, arrival_source=spike, trace=trace
        )
        sim.run(until_time=6000)
        assert sim.total_backlog == 0
        assert len(sim.delivered_packets) == 30
        assert trace.max_backlog == 30

    def test_two_spikes_with_idle_between(self):
        n, R = 3, 2
        algos = {i: AOArrow(i, n, R) for i in range(1, n + 1)}
        spikes = StaticSchedule(
            [(100, 1), (100, 2), (100, 3), (4000, 1), (4000, 2), (4000, 3)]
        )
        sim = Simulator(algos, worst_case_for(R), R, arrival_source=spikes)
        sim.run(until_time=8000)
        assert sim.total_backlog == 0
        assert len(sim.delivered_packets) == 6


class TestMixedWorkloads:
    def test_concat_of_steady_and_bursts(self):
        n, R = 4, 2
        algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
        source = ConcatSource(
            [
                UniformRate(rho="1/4", targets=[1, 2], assumed_cost=R),
                BurstyRate(
                    rho="1/4", burst_size=4, targets=[3, 4], assumed_cost=R
                ),
            ]
        )
        trace = Trace(backlog_stride=8)
        sim = Simulator(
            algos, worst_case_for(R), R, arrival_source=source, trace=trace
        )
        sim.run(until_time=10_000)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 10_000, tolerance=5).stable
        assert sim.channel.stats.collisions == 0

    def test_combined_workload_still_admissible(self):
        n, R = 3, 2
        algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
        source = ConcatSource(
            [
                UniformRate(rho="1/4", targets=[1], assumed_cost=R),
                UniformRate(rho="1/4", targets=[2, 3], assumed_cost=R),
            ]
        )
        sim = Simulator(algos, worst_case_for(R), R, arrival_source=source)
        sim.run(until_time=5000)
        packets = sim.delivered_packets + [
            p for sid in sim.station_ids for p in sim.stations[sid].queue
        ]
        # Two rate-1/4 buckets compose into a rate-1/2 bucket with the
        # sum of burstinesses.
        report = check_admissible(
            packets, rho="1/2", burstiness=2 * R, undelivered_cost=R
        )
        assert report.realized_rate <= Fraction(1, 2)


class TestAccountingIdentities:
    """Cross-module bookkeeping must agree exactly."""

    def test_waste_utilization_and_throughput_are_consistent(self):
        n, R = 3, 2
        algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
        source = UniformRate(rho="3/5", targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(algos, worst_case_for(R), R, arrival_source=source)
        sim.run(until_time=5000)
        metrics = collect_metrics(sim)
        assert wasted_time(sim) + sim.channel.stats.success_time == sim.now
        assert utilization(sim) == sim.channel.stats.success_time / sim.now
        # success_time = delivered packet cost + successful control
        # signals' time; with a loaded CA ring control noise is rare
        # but must still reconcile.
        control_time = sim.channel.stats.success_time - metrics.delivered_cost
        assert control_time >= 0

    def test_delivered_plus_queued_equals_injected(self):
        n, R = 3, 2
        algos = {i: AOArrow(i, n, R) for i in range(1, n + 1)}
        source = UniformRate(
            rho="1/2", targets=[1, 2, 3], assumed_cost=R, limit=200
        )
        sim = Simulator(algos, worst_case_for(R), R, arrival_source=source)
        sim.run(until_time=20_000)
        # Finite workload fully delivered.
        assert len(sim.delivered_packets) == 200
        assert sim.total_backlog == 0
        # Latency distribution is well-formed over the full workload.
        summary = summarize_latencies(sim.delivered_packets)
        assert summary.count == 200
        assert summary.minimum > 0


class TestHostileEnvironmentSurvival:
    """Crash + jammer + random schedule, all at once."""

    def test_ft_ca_under_crash_and_light_jamming(self):
        n, R = 4, 2
        fleet = crash_fleet(
            {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)},
            {4: 60},
        )
        fleet[9] = PeriodicJammer(burst=1, period=40, budget=20)
        source = UniformRate(rho="1/4", targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(
            fleet, RandomUniform(R, seed=11), R, arrival_source=source
        )
        sim.run(until_time=10_000)
        # Progress despite a dead station and a (budgeted) jammer.
        assert len(sim.delivered_packets) > 200
        # The jammer exhausted its budget.
        assert fleet[9].stats.jam_slots == 20

    def test_plain_ca_livelocks_after_jamming_desync(self):
        # Documented fragility: jamming corrupts plain CA-ARRoW's turn
        # views permanently — two stations retry-collide forever even
        # after the jammer's budget runs out.
        n, R = 3, 2
        fleet = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
        fleet[9] = PeriodicJammer(burst=1, period=10, budget=15)
        source = UniformRate(rho="1/4", targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(fleet, worst_case_for(R), R, arrival_source=source)
        sim.run(until_time=12_000)
        assert sim.total_backlog > 500
        assert sim.channel.stats.collisions > 1000

    def test_ft_ca_recovers_after_jammer_dies(self):
        # The FT variant's conflict backoff + ID-staggered claims +
        # ladder-round ring reset restore the ring once jamming stops.
        n, R = 3, 2
        fleet = {i: FaultTolerantCAArrow(i, n, R) for i in range(1, n + 1)}
        fleet[9] = PeriodicJammer(burst=1, period=10, budget=15)
        source = UniformRate(rho="1/4", targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(fleet, worst_case_for(R), R, arrival_source=source)
        sim.run(until_time=12_000)
        assert sim.total_backlog < 20
        assert len(sim.delivered_packets) > 1000


class TestSynchronousDegeneracy:
    """R = 1 must reduce every async algorithm to sane synchronous
    behaviour (Fig. 1's comparability premise)."""

    @pytest.mark.parametrize("cls", [AOArrow, CAArrow, FaultTolerantCAArrow])
    def test_async_algorithms_run_clean_at_r1(self, cls):
        n = 3
        algos = {i: cls(i, n, 1) for i in range(1, n + 1)}
        source = UniformRate(rho="3/5", targets=[1, 2, 3], assumed_cost=1)
        trace = Trace(backlog_stride=8)
        sim = Simulator(
            algos, Synchronous(), 1, arrival_source=source, trace=trace
        )
        sim.run(until_time=8000)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 8000, tolerance=5).stable
        if cls is not AOArrow:
            assert sim.channel.stats.collisions == 0
