"""Integration-grade unit tests for the event-driven simulator."""

from fractions import Fraction

import pytest

from repro.arrivals import StaticSchedule
from repro.core import (
    AlwaysListen,
    AlwaysTransmit,
    ConfigurationError,
    Feedback,
    LISTEN,
    ProtocolError,
    Simulator,
    SlotContext,
    StationAlgorithm,
    TRANSMIT_PACKET,
    Trace,
)
from repro.timing import FixedLength, PerStationFixed, Synchronous, TableDriven


class TransmitOnceWithPacket(StationAlgorithm):
    """Transmits its queued packet in the first slot, then listens."""

    def first_action(self, ctx):
        return TRANSMIT_PACKET if ctx.queue_size else LISTEN

    def on_slot_end(self, ctx):
        return LISTEN


class FeedbackRecorder(StationAlgorithm):
    """Pure observer that logs the feedback sequence it receives."""

    def __init__(self):
        self.feedback_log = []

    def first_action(self, ctx):
        return LISTEN

    def on_slot_end(self, ctx):
        self.feedback_log.append(ctx.feedback)
        return LISTEN


class TestConstruction:
    def test_sequence_gets_one_based_ids(self):
        sim = Simulator([AlwaysListen(), AlwaysListen()], Synchronous(), 1)
        assert sim.station_ids == (1, 2)

    def test_mapping_keeps_explicit_ids(self):
        sim = Simulator({3: AlwaysListen(), 7: AlwaysListen()}, Synchronous(), 1)
        assert sim.station_ids == (3, 7)

    def test_empty_station_set_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator([], Synchronous(), 1)

    def test_r_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator([AlwaysListen()], Synchronous(), "1/2")

    def test_run_without_stop_condition_rejected(self):
        sim = Simulator([AlwaysListen()], Synchronous(), 1)
        with pytest.raises(ConfigurationError):
            sim.run()


class TestEventLoop:
    def test_until_time_processes_all_slots_ending_by_then(self):
        sim = Simulator([AlwaysListen()], Synchronous(), 1)
        sim.run(until_time=10)
        assert sim.slots_elapsed(1) == 10
        assert sim.now == 10

    def test_max_events_bound(self):
        sim = Simulator([AlwaysListen(), AlwaysListen()], Synchronous(), 1)
        sim.run(max_events=7)
        assert sim.events_processed == 7

    def test_slot_lengths_respected(self):
        sim = Simulator([AlwaysListen()], FixedLength(2), 2)
        sim.run(until_time=10)
        assert sim.slots_elapsed(1) == 5

    def test_asynchronous_slot_counts_differ(self):
        sim = Simulator(
            [AlwaysListen(), AlwaysListen()],
            PerStationFixed({1: 1, 2: 2}),
            2,
        )
        sim.run(until_time=20)
        assert sim.slots_elapsed(1) == 20
        assert sim.slots_elapsed(2) == 10

    def test_adversary_outside_range_caught(self):
        sim = Simulator([AlwaysListen()], FixedLength(3), 2)
        with pytest.raises(ConfigurationError):
            sim.run(until_time=5)

    def test_stop_when_predicate(self):
        sim = Simulator([AlwaysListen()], Synchronous(), 1)
        sim.run(stop_when=lambda s: s.events_processed >= 3, max_events=100)
        assert sim.events_processed == 3


class TestFeedbackDelivery:
    def test_listener_hears_silence_on_idle_channel(self):
        rec = FeedbackRecorder()
        sim = Simulator([rec], Synchronous(), 1)
        sim.run(until_time=3)
        assert rec.feedback_log == [Feedback.SILENCE] * 3

    def test_listener_hears_ack_of_lone_transmission(self):
        rec = FeedbackRecorder()
        sim = Simulator(
            {1: TransmitOnceWithPacket(), 2: rec},
            Synchronous(),
            1,
            initial_packets=1,
        )
        sim.run(until_time=2)
        assert rec.feedback_log[0] == Feedback.ACK

    def test_listener_hears_busy_on_collision(self):
        rec = FeedbackRecorder()
        sim = Simulator(
            {1: AlwaysTransmit(), 2: AlwaysTransmit(), 3: rec},
            Synchronous(),
            1,
        )
        sim.run(until_time=2)
        assert rec.feedback_log[0] == Feedback.BUSY

    def test_transmitter_gets_ack_and_delivers(self):
        sim = Simulator(
            {1: TransmitOnceWithPacket()}, Synchronous(), 1, initial_packets=1
        )
        sim.run(until_time=2)
        assert len(sim.delivered_packets) == 1
        packet = sim.delivered_packets[0]
        assert packet.cost == Fraction(1)
        assert packet.delivered_time == Fraction(1)
        assert sim.total_backlog == 0

    def test_collided_packet_stays_queued(self):
        sim = Simulator(
            {1: TransmitOnceWithPacket(), 2: TransmitOnceWithPacket()},
            Synchronous(),
            1,
            initial_packets=1,
        )
        sim.run(until_time=3)
        assert len(sim.delivered_packets) == 0
        assert sim.queue_size(1) == 1 and sim.queue_size(2) == 1

    def test_partial_overlap_collision_under_asynchrony(self):
        # Station 1 transmits [0, 2); station 2 transmits [0, 3/2):
        # overlap in real time destroys both.
        sim = Simulator(
            {1: TransmitOnceWithPacket(), 2: TransmitOnceWithPacket()},
            PerStationFixed({1: 2, 2: "3/2"}),
            2,
            initial_packets=1,
        )
        sim.run(until_time=4)
        assert sim.channel.stats.collisions == 2
        assert len(sim.delivered_packets) == 0


class TestProtocolEnforcement:
    def test_packet_transmit_with_empty_queue_rejected(self):
        class Liar(StationAlgorithm):
            def first_action(self, ctx):
                return TRANSMIT_PACKET

            def on_slot_end(self, ctx):
                return LISTEN

        sim = Simulator([Liar()], Synchronous(), 1)
        with pytest.raises(ProtocolError):
            sim.run(until_time=1)

    def test_control_transmit_without_capability_rejected(self):
        from repro.core import TRANSMIT_CONTROL

        class Cheater(StationAlgorithm):
            uses_control_messages = False

            def first_action(self, ctx):
                return TRANSMIT_CONTROL

            def on_slot_end(self, ctx):
                return LISTEN

        sim = Simulator([Cheater()], Synchronous(), 1)
        with pytest.raises(ProtocolError):
            sim.run(until_time=1)


class TestArrivalsDelivery:
    def test_arrival_visible_at_next_slot_boundary(self):
        log = []

        class QueueWatcher(StationAlgorithm):
            def first_action(self, ctx):
                return LISTEN

            def on_slot_end(self, ctx):
                log.append((ctx.slot_index, ctx.queue_size))
                return LISTEN

        source = StaticSchedule([("3/2", 1)])
        sim = Simulator([QueueWatcher()], Synchronous(), 1, arrival_source=source)
        sim.run(until_time=4)
        # Arrival at t=3/2 becomes visible at the end of slot [1,2).
        assert (1, 0) in log  # end of slot [0,1): not yet
        assert (2, 1) in log  # end of slot [1,2): visible

    def test_arrival_exactly_at_boundary_included(self):
        log = []

        class QueueWatcher(StationAlgorithm):
            def first_action(self, ctx):
                return LISTEN

            def on_slot_end(self, ctx):
                log.append(ctx.queue_size)
                return LISTEN

        source = StaticSchedule([(1, 1)])
        sim = Simulator([QueueWatcher()], Synchronous(), 1, arrival_source=source)
        sim.run(until_time=2)
        assert log[0] == 1

    def test_backlog_counts_pending_arrivals(self):
        source = StaticSchedule([("1/2", 1)])
        sim = Simulator([AlwaysListen()], Synchronous(), 1, arrival_source=source)
        sim.run(until_time=1)
        assert sim.total_backlog == 1


class TestTraceRecording:
    def test_slot_records_written(self):
        trace = Trace(record_slots=True)
        sim = Simulator(
            {1: TransmitOnceWithPacket(), 2: AlwaysListen()},
            Synchronous(),
            1,
            initial_packets=1,
            trace=trace,
        )
        sim.run(until_time=3)
        mine = trace.slots_of(1)
        assert mine[0].action.is_transmit
        assert mine[0].delivered
        assert mine[0].feedback is Feedback.ACK

    def test_backlog_max_tracked(self):
        source = StaticSchedule([(0, 1), (0, 1), (1, 1)])
        sim = Simulator([AlwaysListen()], Synchronous(), 1, arrival_source=source)
        sim.run(until_time=2)
        assert sim.trace.max_backlog == 3


class TestDeterminism:
    def test_identical_runs_are_bitwise_identical(self):
        def run():
            from repro.algorithms import AOArrow
            from repro.arrivals import UniformRate
            from repro.timing import RandomUniform

            algos = {i: AOArrow(i, 3, 2) for i in range(1, 4)}
            source = UniformRate(rho="1/2", targets=[1, 2, 3], assumed_cost=2)
            sim = Simulator(
                algos,
                RandomUniform(2, seed=42),
                2,
                arrival_source=source,
            )
            sim.run(until_time=500)
            return (
                sim.total_backlog,
                len(sim.delivered_packets),
                sim.channel.stats.collisions,
                [p.delivered_time for p in sim.delivered_packets],
            )

        assert run() == run()
