"""Tests for the AO-ARRoW stability-lemma checks (Lemmas 6-8 renderings)."""

from fractions import Fraction

import pytest

from repro.algorithms import AOArrow
from repro.analysis.ao_lemma_checks import (
    AOLemmaViolation,
    check_loaded_window_drain,
    check_wasted_time_budget,
    check_withholding_fairness,
    rounds_of_run,
)
from repro.arrivals import BurstyRate, UniformRate
from repro.core import Simulator, Trace
from repro.timing import RandomUniform, worst_case_for

N, R = 3, 2
SILENCE_GAP = 120  # > one election's worst-case duration at R=2, n=3


def run_ao(rho="3/5", horizon=8000, adversary=None, bursty=False, stride=1):
    algos = {i: AOArrow(i, N, R) for i in range(1, N + 1)}
    if bursty:
        source = BurstyRate(
            rho=rho, burst_size=4, targets=[1, 2, 3], assumed_cost=R
        )
    else:
        source = UniformRate(rho=rho, targets=[1, 2, 3], assumed_cost=R)
    trace = Trace(backlog_stride=stride)
    sim = Simulator(
        algos,
        adversary if adversary is not None else worst_case_for(R),
        R,
        arrival_source=source,
        trace=trace,
        keep_channel_history=True,
    )
    sim.run(until_time=horizon)
    return sim, trace


class TestRoundsOfRun:
    def test_rounds_found_and_ordered(self):
        sim, _ = run_ao()
        rounds = rounds_of_run(sim, SILENCE_GAP)
        assert len(rounds) > 10
        for earlier, later in zip(rounds, rounds[1:]):
            assert earlier.end <= later.start


class TestWastedTimeBudget:
    def test_holds_on_worst_case_schedule(self):
        sim, _ = run_ao()
        assert check_wasted_time_budget(sim, N, R, SILENCE_GAP) == []

    @pytest.mark.parametrize("seed", range(3))
    def test_holds_on_random_schedules(self, seed):
        sim, _ = run_ao(adversary=RandomUniform(R, seed=seed))
        assert check_wasted_time_budget(sim, N, R, SILENCE_GAP) == []

    def test_detects_synthetic_violation(self):
        # A doctored run with a huge silent hole inside a "phase" must
        # trip the budget check.  Build it from raw segments.
        from repro.analysis.stability import PhaseSegment, RoundSegment

        class FakeSim:
            now = Fraction(10_000)

            class channel:  # noqa: N801 - structural stub
                live_records = []

        # monkey-style: call the check's internals via rounds list by
        # stubbing segment_rounds is overkill; instead verify the
        # arithmetic directly on two rounds with a big wasted window.
        from repro.analysis import ao_lemma_checks as mod

        r1 = RoundSegment(start=Fraction(0), end=Fraction(2), winner=1,
                          packets_delivered=1)
        r2 = RoundSegment(start=Fraction(400), end=Fraction(401), winner=2,
                          packets_delivered=1)
        original = mod.rounds_of_run
        mod.rounds_of_run = lambda sim, silence_gap: [r1, r2]
        try:
            violations = check_wasted_time_budget(
                FakeSim(), N, R, silence_gap=1000
            )
        finally:
            mod.rounds_of_run = original
        assert violations and violations[0].check == "wasted-time budget"


class TestWithholdingFairness:
    def test_holds_under_shared_load(self):
        sim, _ = run_ao(rho="3/5")
        assert check_withholding_fairness(sim, N, SILENCE_GAP) == []

    def test_holds_under_bursty_load(self):
        sim, _ = run_ao(bursty=True)
        assert check_withholding_fairness(sim, N, SILENCE_GAP) == []

    def test_single_active_station_exempt(self):
        # All packets to one station: it legitimately wins round after
        # round (everyone else has nothing) — no violation.
        algos = {i: AOArrow(i, N, R) for i in range(1, N + 1)}
        source = UniformRate(rho="2/5", targets=[2], assumed_cost=R)
        sim = Simulator(
            algos, worst_case_for(R), R, arrival_source=source,
            keep_channel_history=True,
        )
        sim.run(until_time=5000)
        assert check_withholding_fairness(sim, N, SILENCE_GAP) == []


class TestLoadedWindowDrain:
    def test_holds_on_stable_run(self):
        sim, trace = run_ao(rho="3/5", horizon=10_000)
        series = trace.backlog_series()
        series.append((sim.now, sim.total_backlog))
        threshold = max(10, trace.max_backlog // 2)
        violations = check_loaded_window_drain(
            series, horizon=10_000, load_threshold=threshold, window=2500,
            slack=max(4, trace.max_backlog // 4),
        )
        assert violations == []

    def test_detects_sustained_growth(self):
        series = [(Fraction(10 * k), 5 * k) for k in range(40)]
        violations = check_loaded_window_drain(
            series, horizon=400, load_threshold=20, window=100, slack=2
        )
        assert violations
        assert violations[0].check == "loaded-window drain"

    def test_spike_and_drain_passes(self):
        series = [
            (Fraction(0), 0), (Fraction(10), 30), (Fraction(20), 25),
            (Fraction(30), 12), (Fraction(40), 3), (Fraction(50), 0),
        ]
        assert (
            check_loaded_window_drain(
                series, horizon=50, load_threshold=10, window=30
            )
            == []
        )
