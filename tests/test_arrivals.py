"""Unit tests for arrival sources, patterns and the leaky-bucket checker."""

from fractions import Fraction

import pytest

from repro.arrivals import (
    BurstyRate,
    ConcatSource,
    CostedArrival,
    NoArrivals,
    PoissonLike,
    RandomTargets,
    RoundRobinTargets,
    SingleTarget,
    StaticSchedule,
    UniformRate,
    check_admissible,
    costed_arrivals_from_packets,
    tightest_burstiness,
)
from repro.core import AdmissibilityError, ConfigurationError, Packet


def drain(source, upto, sim=None):
    return list(source.arrivals_until(sim, Fraction(upto)))


class TestStaticSchedule:
    def test_ordered_delivery(self):
        src = StaticSchedule([(1, 1), (2, 2), (5, 1)])
        assert drain(src, 3) == [(1, 1), (2, 2)]
        assert drain(src, 10) == [(5, 1)]
        assert src.remaining == 0

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticSchedule([(2, 1), (1, 1)])

    def test_no_arrivals(self):
        assert drain(NoArrivals(), 100) == []


class TestConcatSource:
    def test_merges_in_time_order(self):
        src = ConcatSource(
            [StaticSchedule([(2, 1)]), StaticSchedule([(1, 2), (3, 2)])]
        )
        assert drain(src, 10) == [(1, 2), (2, 1), (3, 2)]


class TestTargetPolicies:
    def test_round_robin(self):
        policy = RoundRobinTargets([3, 5])
        assert [policy.next_target() for _ in range(4)] == [3, 5, 3, 5]

    def test_single(self):
        policy = SingleTarget(7)
        assert [policy.next_target() for _ in range(3)] == [7, 7, 7]

    def test_random_deterministic_per_seed(self):
        a = RandomTargets([1, 2, 3], seed=5)
        b = RandomTargets([1, 2, 3], seed=5)
        assert [a.next_target() for _ in range(20)] == [
            b.next_target() for _ in range(20)
        ]

    def test_empty_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinTargets([])


class TestUniformRate:
    def test_spacing_is_cost_over_rho(self):
        src = UniformRate(rho="1/2", targets=[1], assumed_cost=2)
        arrivals = drain(src, 12)
        times = [t for t, _ in arrivals]
        assert times == [Fraction(k * 4) for k in range(4)]

    def test_incremental_draining_has_no_duplicates(self):
        src = UniformRate(rho=1, targets=[1], assumed_cost=1)
        first = drain(src, 3)
        second = drain(src, 6)
        assert len(first) == 4 and len(second) == 3
        assert {t for t, _ in first}.isdisjoint({t for t, _ in second})

    def test_limit_respected(self):
        src = UniformRate(rho=1, targets=[1], assumed_cost=1, limit=5)
        assert len(drain(src, 1000)) == 5

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformRate(rho=0, targets=[1], assumed_cost=1)

    def test_admissible_at_declared_bucket(self):
        src = UniformRate(rho="2/3", targets=[1], assumed_cost=2)
        arrivals = drain(src, 300)
        costed = [CostedArrival(time=t, cost=Fraction(2)) for t, _ in arrivals]
        report = tightest_burstiness(costed, rho="2/3")
        assert report.admissible_for(2)


class TestBurstyRate:
    def test_bursts_are_simultaneous(self):
        src = BurstyRate(rho=1, burst_size=3, targets=[1], assumed_cost=1)
        arrivals = drain(src, 5)
        times = [t for t, _ in arrivals]
        assert times[:3] == [Fraction(0)] * 3
        assert times[3:6] == [Fraction(3)] * 3

    def test_admissible_at_burst_sized_bucket(self):
        src = BurstyRate(rho="1/2", burst_size=4, targets=[1], assumed_cost=1)
        arrivals = drain(src, 200)
        costed = [CostedArrival(time=t, cost=Fraction(1)) for t, _ in arrivals]
        report = tightest_burstiness(costed, rho="1/2")
        assert report.admissible_for(4)
        assert not report.admissible_for(3)

    def test_bad_burst_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BurstyRate(rho=1, burst_size=0, targets=[1], assumed_cost=1)


class TestPoissonLike:
    def test_deterministic_per_seed(self):
        def mk():
            return PoissonLike(
                rho="1/2", burstiness=3, targets=[1], assumed_cost=1, seed=9
            )

        assert drain(mk(), 100) == drain(mk(), 100)

    def test_envelope_respected(self):
        src = PoissonLike(
            rho="1/2", burstiness=3, targets=[1], assumed_cost=1, seed=2
        )
        arrivals = drain(src, 500)
        costed = [CostedArrival(time=t, cost=Fraction(1)) for t, _ in arrivals]
        report = tightest_burstiness(costed, rho="1/2")
        assert report.admissible_for(3)

    def test_burstiness_below_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonLike(rho=1, burstiness="1/2", targets=[1], assumed_cost=1, seed=0)


class TestLeakyBucketChecker:
    def test_empty_pattern_has_zero_burst(self):
        report = tightest_burstiness([], rho=1)
        assert report.max_burst == 0

    def test_single_packet_needs_its_cost(self):
        report = tightest_burstiness(
            [CostedArrival(time=Fraction(5), cost=Fraction(2))], rho="1/2"
        )
        assert report.max_burst == 2

    def test_rate_credit_accumulates(self):
        # Two cost-1 packets 2 time apart at rho=1/2: the second is
        # fully paid by accrued rate, so b=1 suffices.
        arrivals = [
            CostedArrival(time=Fraction(0), cost=Fraction(1)),
            CostedArrival(time=Fraction(2), cost=Fraction(1)),
        ]
        report = tightest_burstiness(arrivals, rho="1/2")
        assert report.max_burst == 1

    def test_burst_window_detected(self):
        # Packets at t=10,10,10 each cost 1 at rho=1/10: the window
        # [10, 10] holds cost 3, needing b = 3 (no time elapses).
        arrivals = [
            CostedArrival(time=Fraction(10), cost=Fraction(1)) for _ in range(3)
        ]
        report = tightest_burstiness(arrivals, rho="1/10")
        assert report.max_burst == 3

    def test_window_not_anchored_at_zero(self):
        # Quiet prefix then a burst: the violating window starts late.
        arrivals = [
            CostedArrival(time=Fraction(100), cost=Fraction(4)),
            CostedArrival(time=Fraction(101), cost=Fraction(4)),
        ]
        report = tightest_burstiness(arrivals, rho=1)
        assert report.max_burst == 7  # 8 cost in 1 time unit, minus 1 rate credit

    def test_unsorted_rejected(self):
        arrivals = [
            CostedArrival(time=Fraction(2), cost=Fraction(1)),
            CostedArrival(time=Fraction(1), cost=Fraction(1)),
        ]
        with pytest.raises(ConfigurationError):
            tightest_burstiness(arrivals, rho=1)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            tightest_burstiness([], rho=-1)

    def test_check_admissible_raises_with_evidence(self):
        packets = [
            Packet(packet_id=k, station_id=1, arrival_time=Fraction(0))
            for k in range(5)
        ]
        with pytest.raises(AdmissibilityError):
            check_admissible(packets, rho="1/2", burstiness=2, undelivered_cost=1)

    def test_costed_arrivals_use_realized_cost(self):
        p = Packet(packet_id=0, station_id=1, arrival_time=Fraction(3))
        p.mark_delivered(at=Fraction(10), cost=Fraction(2))
        q = Packet(packet_id=1, station_id=1, arrival_time=Fraction(1))
        costed = costed_arrivals_from_packets([p, q], undelivered_cost=5)
        assert costed[0].time == 1 and costed[0].cost == 5  # sorted, fallback
        assert costed[1].time == 3 and costed[1].cost == 2

    def test_realized_rate_reported(self):
        arrivals = [
            CostedArrival(time=Fraction(k), cost=Fraction(1)) for k in range(1, 11)
        ]
        report = tightest_burstiness(arrivals, rho=2)
        assert report.realized_rate == Fraction(10, 10)
