"""Tests for the execution engine: pool, cache, and bench diff.

Covers the engine's contract surface: deterministic sharding
(parallel == serial, element for element), content-addressed cache
hits that skip re-execution, stride passthrough from ``run_grid``,
and the ``repro bench diff`` verdicts (identical / changed / missing).
"""

import io
import json
import pickle
from fractions import Fraction

import pytest

from repro.algorithms import CAArrow
from repro.analysis import (
    ExperimentCell,
    run_cell,
    run_grid,
    run_grid_report,
    sweep_seeds,
    sweep_seeds_report,
)
from repro.arrivals import UniformRate
from repro.exec import (
    MISS,
    ResultCache,
    UncacheableValue,
    canonical_key,
    diff_results,
    fingerprint,
    fork_available,
    resolve_jobs,
    run_tasks,
)
from repro.obs import ProgressReporter
from repro.timing import worst_case_for


def cell(name="demo", rho="1/2", R=2, horizon=900, labels=None):
    n = 3
    return ExperimentCell(
        name=name,
        algorithms=lambda: {i: CAArrow(i, n, R) for i in range(1, n + 1)},
        slot_adversary=lambda: worst_case_for(R),
        arrival_source=lambda: UniformRate(
            rho=rho, targets=[1, 2, 3], assumed_cost=R
        ),
        max_slot_length=R,
        horizon=horizon,
        labels=labels or {"rho": rho},
    )


# Module-level so the cache fingerprints it by code, not by a closure
# whose captured counter would change the key on every call.
MEASURE_CALLS = {"count": 0}


def counting_measure(seed):
    MEASURE_CALLS["count"] += 1
    return Fraction(seed % 5, 7)


class TestPool:
    def test_serial_mode_for_jobs_one(self):
        run = run_tasks([lambda: 1, lambda: 2], jobs=1)
        assert run.values == [1, 2]
        assert run.mode == "serial"

    def test_parallel_matches_serial_order(self):
        tasks = [lambda k=k: k * k for k in range(7)]
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=3)
        assert parallel.values == serial.values == [k * k for k in range(7)]
        if fork_available():
            assert parallel.mode == "fork-pool"

    def test_single_task_stays_serial(self):
        run = run_tasks([lambda: "only"], jobs=4)
        assert run.mode == "serial"
        assert run.values == ["only"]

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_worker_error_propagates(self):
        def boom():
            raise RuntimeError("worker failed")

        with pytest.raises(RuntimeError, match="worker failed"):
            run_tasks([boom], jobs=1)
        if fork_available():
            with pytest.raises(RuntimeError, match="worker failed"):
                run_tasks([boom, lambda: 1], jobs=2)

    def test_progress_ticks_per_task(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            every_events=1, min_interval_s=0.0, stream=stream
        )
        run_tasks([lambda: 1, lambda: 2, lambda: 3], jobs=1, progress=reporter)
        assert reporter.events == 3
        assert reporter.reports_emitted >= 1
        assert "3/3" in stream.getvalue()


class TestFingerprint:
    def test_equal_configs_equal_keys(self):
        payload = lambda: {"kind": "x", "rho": Fraction(1, 2), "horizon": 100}
        assert canonical_key(payload(), "s") == canonical_key(payload(), "s")

    def test_salt_changes_key(self):
        payload = {"kind": "x", "n": 4}
        assert canonical_key(payload, "a") != canonical_key(payload, "b")

    def test_closure_values_distinguish_lambdas(self):
        def make(rho):
            return lambda: rho

        assert fingerprint(make("1/2")) != fingerprint(make("9/10"))
        assert fingerprint(make("1/2")) == fingerprint(make("1/2"))

    def test_fraction_exactness(self):
        assert fingerprint(Fraction(1, 3)) != fingerprint(1 / 3)
        assert fingerprint(Fraction(2, 6)) == fingerprint(Fraction(1, 3))

    def test_default_repr_objects_rejected(self):
        class Opaque:
            __slots__ = ()

        with pytest.raises(UncacheableValue):
            fingerprint({"obj": Opaque()})


class TestResultCache:
    def test_roundtrip_preserves_fractions(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        key = cache.key_for({"kind": "t", "value": 1})
        assert cache.get(key) is MISS
        cache.put(key, {"peak": Fraction(22, 7)})
        assert cache.get(key) == {"peak": Fraction(22, 7)}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        keys = [cache.key_for({"kind": "t", "value": k}) for k in range(3)]
        for key in keys:
            cache.put(key, key)
        assert cache.invalidate(keys[0])
        assert not cache.invalidate(keys[0])
        assert cache.get(keys[0]) is MISS
        assert cache.clear() == 2
        assert list(cache.entries()) == []

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        key = cache.key_for({"kind": "t"})
        cache.put(key, "fine")
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is MISS
        assert not cache.path_for(key).exists()


class TestGridEngine:
    def test_parallel_grid_equals_serial_elementwise(self):
        cells = [cell(name="a", rho="1/4"), cell(name="b", rho="1/2")]
        serial = run_grid(cells, jobs=1)
        parallel = run_grid(cells, jobs=2)
        assert len(parallel) == len(serial) == 2
        for left, right in zip(serial, parallel):
            # Frozen dataclasses: == compares every field, including the
            # exact-Fraction metrics that crossed the worker pipe.
            assert left == right

    def test_parallel_sweep_equals_serial(self):
        seeds = list(range(6))
        assert sweep_seeds(counting_measure, seeds, jobs=3) == sweep_seeds(
            counting_measure, seeds, jobs=1
        )

    def test_backlog_stride_passthrough(self):
        # Regression: run_grid used to drop backlog_stride on the floor.
        spec = cell(rho="9/10", horizon=1500)
        direct = run_cell(spec, backlog_stride=3)
        via_grid = run_grid([spec], backlog_stride=3)[0]
        assert via_grid == direct
        coarse = run_grid([spec], backlog_stride=500)[0]
        assert coarse.peak_backlog <= direct.peak_backlog

    def test_warm_cache_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="pinned")
        seeds = [1, 2, 3]
        MEASURE_CALLS["count"] = 0
        cold = sweep_seeds_report(counting_measure, seeds, jobs=1, cache=cache)
        assert MEASURE_CALLS["count"] == 3
        assert (cold.cache_hits, cold.cache_misses) == (0, 3)
        warm = sweep_seeds_report(counting_measure, seeds, jobs=1, cache=cache)
        assert MEASURE_CALLS["count"] == 3  # nothing re-ran
        assert (warm.cache_hits, warm.cache_misses) == (3, 0)
        assert warm.stats == cold.stats

    def test_warm_grid_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="pinned")
        cells = [cell(name="a", rho="1/4")]
        cold = run_grid_report(cells, cache=cache)
        warm = run_grid_report(cells, cache=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        assert warm.results == cold.results

    def test_cell_results_pickle_exactly(self):
        result = run_cell(cell(horizon=600))
        assert pickle.loads(pickle.dumps(result)) == result

    def test_collect_metrics_aggregates_workers(self):
        report = run_grid_report(
            [cell(name="a", rho="1/4"), cell(name="b", rho="1/2")],
            collect_metrics=True,
        )
        delivered = sum(r.metrics.delivered for r in report.results)
        assert report.aggregate_counter("delivered") == delivered


def write_report(directory, name, rows, wall_s=1.0):
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "name": name,
        "preamble": [f"{name} title"],
        "tables": [{"headers": ["n", "peak"], "rows": rows}],
        "meta": {"wall_s": wall_s, "jobs": 1},
    }
    (directory / f"{name}.json").write_text(json.dumps(document))


class TestBenchDiff:
    def test_identical_directories_are_clean(self, tmp_path):
        for d in ("old", "new"):
            write_report(tmp_path / d, "thm", [[2, 16], [4, 30]], wall_s=d == "new")
        report = diff_results(tmp_path / "old", tmp_path / "new")
        assert report.clean
        assert report.exit_code() == 0
        # meta drift is reported but never fatal
        assert report.entries[0].status == "identical"

    def test_changed_value_fails_and_is_located(self, tmp_path):
        write_report(tmp_path / "old", "thm", [[2, 16], [4, 30]])
        write_report(tmp_path / "new", "thm", [[2, 16], [4, 31]])
        report = diff_results(tmp_path / "old", tmp_path / "new")
        assert not report.clean
        assert report.exit_code() == 1
        assert report.entries[0].status == "changed"
        rendered = "\n".join(report.render())
        assert "30 -> 31" in rendered

    def test_missing_report_fails(self, tmp_path):
        write_report(tmp_path / "old", "thm", [[2, 16]])
        write_report(tmp_path / "old", "gone", [[1, 1]])
        write_report(tmp_path / "new", "thm", [[2, 16]])
        report = diff_results(tmp_path / "old", tmp_path / "new")
        assert report.exit_code() == 1
        assert {e.status for e in report.entries} == {"identical", "missing"}

    def test_added_report_does_not_fail(self, tmp_path):
        write_report(tmp_path / "old", "thm", [[2, 16]])
        write_report(tmp_path / "new", "thm", [[2, 16]])
        write_report(tmp_path / "new", "extra", [[1, 1]])
        report = diff_results(tmp_path / "old", tmp_path / "new")
        assert report.clean


class TestCliSurface:
    def test_bench_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        write_report(tmp_path / "old", "thm", [[2, 16]])
        write_report(tmp_path / "new", "thm", [[2, 16]])
        assert main(
            ["bench", "diff", str(tmp_path / "old"), str(tmp_path / "new")]
        ) == 0
        write_report(tmp_path / "new", "thm", [[2, 17]])
        assert main(
            ["bench", "diff", str(tmp_path / "old"), str(tmp_path / "new")]
        ) == 1
        assert "16 -> 17" in capsys.readouterr().out

    def test_bench_diff_rejects_missing_directory(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench", "diff", str(tmp_path / "nope"), str(tmp_path)])

    def test_grid_command_runs_and_caches(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "grid", "--algorithms", "ca-arrow", "--rhos", "1/2",
            "--n", "3", "--horizon", "600",
            "--cache-dir", str(tmp_path / "cache"),
            "--csv", str(tmp_path / "grid.csv"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "1 hit" not in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "1 hit" in warm
        assert (tmp_path / "grid.csv").exists()

    def test_cache_info_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache = ResultCache(tmp_path / "c", salt="s")
        cache.put(cache.key_for({"kind": "t"}), 1)
        assert main(["cache", "info", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "entries: 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "1" in capsys.readouterr().out
        assert list(cache.entries()) == []


class TestDiffTolerance:
    """Relative tolerance for numeric cells (the perf-smoke contract)."""

    def test_within_tolerance_is_clean(self, tmp_path):
        write_report(tmp_path / "old", "perf", [[2, 100], [4, 200]])
        write_report(tmp_path / "new", "perf", [[2, 110], [4, 180]])
        assert diff_results(tmp_path / "old", tmp_path / "new",
                            tolerance=0.25).clean

    def test_beyond_tolerance_fails(self, tmp_path):
        write_report(tmp_path / "old", "perf", [[2, 100]])
        write_report(tmp_path / "new", "perf", [[2, 126]])
        report = diff_results(tmp_path / "old", tmp_path / "new",
                              tolerance=0.25)
        assert not report.clean
        assert "100 -> 126" in "\n".join(report.render())

    def test_strings_and_bools_stay_exact(self, tmp_path):
        write_report(tmp_path / "old", "perf", [["ok", True, 10]])
        write_report(tmp_path / "new", "perf", [["OK", True, 10]])
        assert not diff_results(tmp_path / "old", tmp_path / "new",
                                tolerance=10.0).clean
        write_report(tmp_path / "new2", "perf", [["ok", False, 10]])
        assert not diff_results(tmp_path / "old", tmp_path / "new2",
                                tolerance=10.0).clean

    def test_old_zero_admits_only_zero(self, tmp_path):
        write_report(tmp_path / "old", "perf", [[0, 0]])
        write_report(tmp_path / "new", "perf", [[0, 1]])
        assert not diff_results(tmp_path / "old", tmp_path / "new",
                                tolerance=0.5).clean

    def test_default_stays_exact(self, tmp_path):
        write_report(tmp_path / "old", "perf", [[2, 100]])
        write_report(tmp_path / "new", "perf", [[2, 101]])
        assert not diff_results(tmp_path / "old", tmp_path / "new").clean

    def test_negative_tolerance_rejected(self, tmp_path):
        write_report(tmp_path / "old", "perf", [[2, 100]])
        with pytest.raises(ValueError):
            diff_results(tmp_path / "old", tmp_path / "old", tolerance=-0.1)

    def test_cli_tolerance_flag(self, tmp_path, capsys):
        from repro.cli import main

        write_report(tmp_path / "old", "perf", [[2, 100]])
        write_report(tmp_path / "new", "perf", [[2, 110]])
        assert main(["bench", "diff", str(tmp_path / "old"),
                     str(tmp_path / "new")]) == 1
        capsys.readouterr()
        assert main(["bench", "diff", "--tolerance", "0.25",
                     str(tmp_path / "old"), str(tmp_path / "new")]) == 0


class TestPerfSuite:
    """Unit-level checks of repro.exec.perf (full runs live in benchmarks/)."""

    def _tiny_case(self):
        from repro.exec.perf import PerfCase

        return PerfCase(name="tiny", algorithm="ca-arrow", n=3,
                        horizon=120, quick_horizon=120)

    def test_report_form_and_parity(self, tmp_path):
        from repro.exec.perf import run_perf, write_report as write_perf

        document = run_perf(cases=[self._tiny_case()], quick=True, repeats=1)
        assert document["name"] == "perf_core"
        case_table, speedup_table = document["tables"]
        assert case_table["rows"][0][0] == "tiny"
        assert case_table["rows"][0][-1] == "ok"
        assert speedup_table["headers"] == ["case", "speedup"]
        assert speedup_table["rows"] == [
            ["geomean", document["meta"]["geomean_speedup"]]
        ]
        assert isinstance(speedup_table["rows"][0][1], float)
        assert "speedup" in document["meta"]["throughput"]["tiny"]
        json_path, txt_path = write_perf(document, tmp_path)
        assert json.loads(json_path.read_text())["name"] == "perf_core"
        assert "speedup" in txt_path.read_text()

    def test_quick_and_full_share_row_shape(self):
        from repro.exec.perf import run_perf

        quick = run_perf(cases=[self._tiny_case()], quick=True, repeats=1)
        full = run_perf(cases=[self._tiny_case()], quick=False, repeats=1)
        assert [len(t["rows"]) for t in quick["tables"]] == \
            [len(t["rows"]) for t in full["tables"]]

    def test_fleet_win_policy_is_per_case(self):
        """Only cases with a ``win_min`` get a policed ``win`` cell, and
        the floor itself is printed next to it (exact-compare in CI)."""
        pytest.importorskip("numpy")
        from repro.exec.perf import PerfCase, run_perf

        fleet = [
            PerfCase(name="f-info", algorithm="rrw", n=8, schedule="sync",
                     horizon=60, quick_horizon=60),
            # An adaptive family, policed with a floor any machine meets:
            # this asserts the wiring (win_min -> win cell), not speed.
            PerfCase(name="f-policed", algorithm="ao-arrow", n=8,
                     schedule="sync", horizon=60, quick_horizon=60,
                     win_min=0.0001),
        ]
        document = run_perf(
            cases=[self._tiny_case()], quick=True, repeats=1,
            fleet_cases=fleet,
        )
        fleet_table = document["tables"][2]
        assert fleet_table["headers"][-2:] == ["win_min", "win"]
        rows = {row[0]: row for row in fleet_table["rows"]}
        assert rows["f-info"][-2:] == ["-", "-"]
        assert rows["f-policed"][-2] == ">=0.0001x"
        assert rows["f-policed"][-1] == "yes"
