"""Unit tests for packets and per-station queues."""

from fractions import Fraction

import pytest

from repro.core import Packet, PacketQueue, SimulationError


def pkt(pid=0, sid=1, at=0) -> Packet:
    return Packet(packet_id=pid, station_id=sid, arrival_time=Fraction(at))


class TestPacket:
    def test_initially_undelivered(self):
        p = pkt()
        assert not p.delivered
        assert p.latency is None
        assert p.cost is None

    def test_mark_delivered_sets_cost_and_latency(self):
        p = pkt(at=3)
        p.mark_delivered(at=Fraction(10), cost=Fraction(2))
        assert p.delivered
        assert p.cost == Fraction(2)
        assert p.latency == Fraction(7)

    def test_double_delivery_rejected(self):
        p = pkt()
        p.mark_delivered(at=Fraction(1), cost=Fraction(1))
        with pytest.raises(SimulationError):
            p.mark_delivered(at=Fraction(2), cost=Fraction(1))


class TestPacketQueue:
    def test_fifo_order(self):
        q = PacketQueue(station_id=1)
        first, second = pkt(0), pkt(1)
        q.push(first)
        q.push(second)
        assert q.head() is first
        assert q.pop_delivered() is first
        assert q.head() is second

    def test_len_and_bool(self):
        q = PacketQueue(station_id=1)
        assert not q and len(q) == 0
        q.push(pkt())
        assert q and len(q) == 1

    def test_wrong_station_rejected(self):
        q = PacketQueue(station_id=1)
        with pytest.raises(SimulationError):
            q.push(pkt(sid=2))

    def test_head_on_empty_rejected(self):
        with pytest.raises(SimulationError):
            PacketQueue(station_id=1).head()

    def test_pop_on_empty_rejected(self):
        with pytest.raises(SimulationError):
            PacketQueue(station_id=1).pop_delivered()

    def test_conservation_counters(self):
        q = PacketQueue(station_id=1)
        for k in range(5):
            q.push(pkt(k))
        q.pop_delivered()
        q.pop_delivered()
        assert q.total_enqueued == 5
        assert q.total_delivered == 2
        assert len(q) == 3

    def test_pending_cost_upper_bound(self):
        q = PacketQueue(station_id=1)
        q.push(pkt(0))
        q.push(pkt(1))
        assert q.pending_cost_upper_bound(Fraction(3)) == Fraction(6)

    def test_iteration_preserves_order(self):
        q = PacketQueue(station_id=1)
        packets = [pkt(k) for k in range(4)]
        for p in packets:
            q.push(p)
        assert list(q) == packets
