"""Unit tests for the station-algorithm interface."""

import pytest

from repro.core import (
    Action,
    ActionKind,
    AlwaysListen,
    AlwaysTransmit,
    Feedback,
    LISTEN,
    ProtocolError,
    SlotContext,
    StationAlgorithm,
    TRANSMIT_CONTROL,
    TRANSMIT_PACKET,
)


class TestAction:
    def test_listen_singleton(self):
        assert not LISTEN.is_transmit
        assert LISTEN.kind is ActionKind.LISTEN

    def test_transmit_packet(self):
        assert TRANSMIT_PACKET.is_transmit and TRANSMIT_PACKET.carries_packet

    def test_transmit_control(self):
        assert TRANSMIT_CONTROL.is_transmit and not TRANSMIT_CONTROL.carries_packet

    def test_actions_hashable_and_comparable(self):
        assert Action(ActionKind.LISTEN) == LISTEN
        assert len({LISTEN, TRANSMIT_PACKET, TRANSMIT_CONTROL}) == 3


class TestBaseClassContract:
    def test_abstract_methods_raise(self):
        base = StationAlgorithm()
        ctx = SlotContext(feedback=None, queue_size=0, slot_index=0)
        with pytest.raises(NotImplementedError):
            base.first_action(ctx)
        with pytest.raises(NotImplementedError):
            base.on_slot_end(ctx)

    def test_default_flags(self):
        assert StationAlgorithm.uses_control_messages is False
        assert StationAlgorithm.collision_free_by_design is False
        assert StationAlgorithm().is_done is False

    def test_require_feedback_rejects_first_context(self):
        algo = AlwaysListen()
        ctx = SlotContext(feedback=None, queue_size=0, slot_index=0)
        with pytest.raises(ProtocolError):
            algo._require_feedback(ctx)

    def test_require_feedback_passthrough(self):
        algo = AlwaysListen()
        ctx = SlotContext(feedback=Feedback.BUSY, queue_size=0, slot_index=1)
        assert algo._require_feedback(ctx) is Feedback.BUSY


class TestClone:
    def test_clone_is_independent(self):
        from repro.algorithms import AOArrow

        original = AOArrow(1, 4, 2)
        original.wait = 3
        copy = original.clone()
        copy.wait = 0
        assert original.wait == 3

    def test_clone_preserves_rng_stream(self):
        from repro.algorithms import SlottedAloha

        a = SlottedAloha(1, transmit_probability=0.5, seed=7)
        b = a.clone()
        ctx = SlotContext(feedback=Feedback.SILENCE, queue_size=1, slot_index=1)
        first = a.first_action(SlotContext(feedback=None, queue_size=1, slot_index=0))
        # The clone must replay the identical decision sequence.
        assert b.first_action(
            SlotContext(feedback=None, queue_size=1, slot_index=0)
        ) == first
        for _ in range(20):
            assert a.on_slot_end(ctx) == b.on_slot_end(ctx)


class TestTrivialAlgorithms:
    def test_always_listen(self):
        algo = AlwaysListen()
        ctx0 = SlotContext(feedback=None, queue_size=5, slot_index=0)
        ctx1 = SlotContext(feedback=Feedback.BUSY, queue_size=5, slot_index=1)
        assert algo.first_action(ctx0) == LISTEN
        assert algo.on_slot_end(ctx1) == LISTEN

    def test_always_transmit_prefers_packets(self):
        algo = AlwaysTransmit()
        with_packets = SlotContext(feedback=Feedback.SILENCE, queue_size=1, slot_index=1)
        without = SlotContext(feedback=Feedback.SILENCE, queue_size=0, slot_index=1)
        assert algo.on_slot_end(with_packets) == TRANSMIT_PACKET
        assert algo.on_slot_end(without) == TRANSMIT_CONTROL
