"""Property-based end-to-end invariants of the paper's protocols.

Randomized-but-reproducible slot schedules and workloads, asserting the
theorem-level invariants on every generated execution:

* ABS elects exactly one winner, within the Theorem 1 slot bound;
* CA-ARRoW never collides (Theorem 6's defining property);
* packet conservation: injected = delivered + queued, costs within
  ``[1, R]``, deliveries time-ordered.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ABSLeaderElection, CAArrow
from repro.analysis import abs_slot_upper_bound
from repro.arrivals import UniformRate
from repro.core import Simulator
from repro.timing import CyclicPattern, RandomUniform

# Per-station cyclic slot patterns over quarter-integers in [1, 2].
_quarter_lengths = st.integers(min_value=4, max_value=8).map(
    lambda k: Fraction(k, 4)
)
_patterns = st.lists(_quarter_lengths, min_size=1, max_size=4)


@st.composite
def slot_adversaries(draw, n):
    patterns = {
        sid: tuple(draw(_patterns)) for sid in range(1, n + 1)
    }
    return CyclicPattern(patterns)


@given(st.integers(min_value=2, max_value=9), st.data())
@settings(max_examples=40, deadline=None)
def test_abs_unique_winner_under_arbitrary_patterns(n, data):
    R = 2
    adversary = data.draw(slot_adversaries(n))
    algos = {i: ABSLeaderElection(i, R) for i in range(1, n + 1)}
    sim = Simulator(algos, adversary, max_slot_length=R)
    end = sim.run_until_success(max_events=400_000)
    assert end is not None, "ABS failed to elect under this schedule"
    assert sim.max_slots_elapsed() <= abs_slot_upper_bound(n, R)
    # Let everyone terminate, then check uniqueness.
    sim.run(
        max_events=sim.events_processed + 4000,
        stop_when=lambda s: all(a.is_done for a in algos.values()),
    )
    winners = [i for i, a in algos.items() if a.outcome == "won"]
    assert len(winners) == 1


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["3/10", "1/2", "7/10"]),
)
@settings(max_examples=30, deadline=None)
def test_ca_arrow_collision_free_everywhere(n, seed, rho):
    R = 2
    algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
    source = UniformRate(
        rho=rho, targets=list(range(1, n + 1)), assumed_cost=R
    )
    sim = Simulator(
        algos,
        RandomUniform(R, seed=seed),
        max_slot_length=R,
        arrival_source=source,
    )
    sim.run(until_time=1200)
    assert sim.channel.stats.collisions == 0
    assert all(sim.algorithm(i).stats.unexpected_busy == 0 for i in sim.station_ids)


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_packet_conservation_and_cost_range(n, seed):
    R = 2
    algos = {i: CAArrow(i, n, R) for i in range(1, n + 1)}
    source = UniformRate(
        rho="1/2", targets=list(range(1, n + 1)), assumed_cost=R
    )
    sim = Simulator(
        algos,
        RandomUniform(R, seed=seed),
        max_slot_length=R,
        arrival_source=source,
    )
    sim.run(until_time=800)
    delivered = sim.delivered_packets
    queued = sum(sim.queue_size(i) for i in sim.station_ids)
    pending = sim.total_backlog - queued  # injected, not yet visible
    assert pending >= 0
    assert len(delivered) + sim.total_backlog == len(delivered) + queued + pending
    # Costs are realized slot durations: within [1, R].
    for packet in delivered:
        assert 1 <= packet.cost <= R
        assert packet.delivered_time > packet.arrival_time
    # Deliveries are time-ordered (the channel serializes successes).
    times = [p.delivered_time for p in delivered]
    assert times == sorted(times)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_queue_sizes_never_negative_and_backlog_consistent(seed):
    from repro.algorithms import AOArrow

    n, R = 3, 2
    algos = {i: AOArrow(i, n, R) for i in range(1, n + 1)}
    source = UniformRate(rho="3/5", targets=[1, 2, 3], assumed_cost=R)
    sim = Simulator(
        algos,
        RandomUniform(R, seed=seed),
        max_slot_length=R,
        arrival_source=source,
    )
    checkpoints = [200, 400, 600, 800]
    for checkpoint in checkpoints:
        sim.run(until_time=checkpoint)
        queued = sum(sim.queue_size(i) for i in sim.station_ids)
        assert 0 <= queued <= sim.total_backlog
        for sid in sim.station_ids:
            q = sim.stations[sid].queue
            assert q.total_enqueued - q.total_delivered == len(q)
