"""Smoke tests: every example script runs to completion.

Examples are executable documentation; a broken one is a broken
deliverable.  Each is run in-process via runpy (so failures surface as
ordinary tracebacks) with stdout captured and spot-checked.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTATIONS = {
    "quickstart.py": "Theorem 6 invariants hold",
    "leader_election_demo.py": "elected exactly one leader",
    "adversary_showcase.py": "Theorem 5",
    "fault_tolerance.py": "collision-free",
    "open_problems.py": "Open problem 2",
    "sensor_network.py": "what the numbers say",
    "stability_sweep.py": "hold the",
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert EXPECTATIONS[script] in out


def test_every_example_file_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTATIONS), (
        "examples/ and the smoke-test table drifted apart"
    )
