"""Tests for the observability subsystem (repro.obs).

The load-bearing guarantees, in order of importance:

1. **Transparency** — a simulator with a probe bus (subscribed or not)
   produces bit-identical executions to a bare one.
2. **Completeness** — a subscriber sees *every* slot_end / collision /
   arrival / delivery event, with counts matching the post-hoc
   :class:`~repro.analysis.metrics.RunMetrics` aggregates.
3. **Round-trip** — a JSONL artifact summarizes to the same quantities
   the live run measured.
"""

import io
import json
from fractions import Fraction

import pytest

from repro.algorithms import AOArrow, NaiveTDMA, SlottedAloha
from repro.analysis import collect_metrics
from repro.arrivals import UniformRate
from repro.core import Simulator, Trace
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonlRunWriter,
    MetricsRegistry,
    PROBE_EVENTS,
    PhaseProfiler,
    ProbeBus,
    ProgressReporter,
    RunManifest,
    SimulationMetrics,
    load_run,
    render_summary,
    summarize_run,
)
from repro.timing import RandomUniform, worst_case_for

from .helpers import make_ao


def _build(n=3, R=2, rho="1/2", **kwargs):
    return Simulator(
        make_ao(n, R),
        worst_case_for(R),
        max_slot_length=R,
        arrival_source=UniformRate(
            rho=rho, targets=list(range(1, n + 1)), assumed_cost=R
        ),
        **kwargs,
    )


def _fingerprint(sim):
    """Everything observable about a finished run, for exact comparison."""
    return (
        sim.now,
        sim.events_processed,
        sim.total_backlog,
        [(p.packet_id, p.station_id, p.delivered_time, p.cost)
         for p in sim.delivered_packets],
        sim.channel.stats.collisions,
        sim.channel.stats.transmissions,
        {sid: sim.queue_size(sid) for sid in sim.station_ids},
    )


class TestTransparency:
    def test_unsubscribed_bus_is_bit_identical_to_seed(self):
        bare = _build()
        bare.run(until_time=600)
        probed = _build(probes=ProbeBus())
        probed.run(until_time=600)
        assert _fingerprint(bare) == _fingerprint(probed)

    def test_fully_subscribed_bus_is_bit_identical_to_seed(self):
        bare = _build()
        bare.run(until_time=600)
        bus = ProbeBus()
        for event in PROBE_EVENTS:
            bus.subscribe(event, lambda payload: None)
        probed = _build(probes=bus)
        probed.run(until_time=600)
        assert _fingerprint(bare) == _fingerprint(probed)

    def test_profiler_does_not_change_execution(self):
        bare = _build()
        bare.run(until_time=400)
        profiled = _build(profiler=PhaseProfiler())
        profiled.run(until_time=400)
        assert _fingerprint(bare) == _fingerprint(profiled)


class TestProbeCompleteness:
    def test_slot_end_and_delivery_counts_match_run_metrics(self):
        bus = ProbeBus()
        slot_ends = []
        deliveries = []
        arrivals = []
        bus.subscribe("slot_end", slot_ends.append)
        bus.subscribe("delivery", deliveries.append)
        bus.subscribe("arrival", arrivals.append)
        sim = _build(probes=bus)
        sim.run(until_time=800)
        metrics = collect_metrics(sim)

        assert len(slot_ends) == sim.events_processed
        assert len(deliveries) == metrics.delivered
        assert sum(1 for e in slot_ends if e.delivered) == metrics.delivered
        assert len(arrivals) == metrics.delivered + metrics.backlog
        # The backlog carried on events is exact at every boundary.
        assert max(e.backlog for e in arrivals) == sim.trace.max_backlog

    def test_collision_events_match_channel_stats(self):
        # NaiveTDMA under an asynchronous adversary collides readily.
        n, R = 3, 2
        bus = ProbeBus()
        collisions = []
        bus.subscribe("collision", collisions.append)
        sim = Simulator(
            {i: NaiveTDMA(i, n) for i in range(1, n + 1)},
            RandomUniform(R, seed=11),
            max_slot_length=R,
            initial_packets=5,
            probes=bus,
        )
        sim.run(until_time=300)
        assert sim.channel.stats.collisions > 0
        assert len(collisions) == sim.channel.stats.collisions

    def test_slot_begin_matches_slot_end(self):
        bus = ProbeBus()
        begins, ends = [], []
        bus.subscribe("slot_begin", begins.append)
        bus.subscribe("slot_end", ends.append)
        sim = _build(probes=bus)
        sim.run(max_events=200)
        # Every ended slot began; open slots (one per station) remain.
        assert len(begins) == len(ends) + sim.n_stations
        by_station = {}
        for event in begins:
            by_station.setdefault(event.station_id, []).append(event.slot_index)
        for indices in by_station.values():
            assert indices == list(range(len(indices)))

    def test_feedback_probe_mirrors_slot_end_feedback(self):
        bus = ProbeBus()
        feedbacks, ends = [], []
        bus.subscribe("feedback", feedbacks.append)
        bus.subscribe("slot_end", ends.append)
        sim = _build(probes=bus)
        sim.run(max_events=150)
        assert [f.feedback for f in feedbacks] == [e.feedback for e in ends]

    def test_unsubscribe_stops_delivery(self):
        bus = ProbeBus()
        seen = []
        unsubscribe = bus.subscribe("slot_end", seen.append)
        sim = _build(probes=bus)
        sim.run(max_events=50)
        count = len(seen)
        assert count == 50
        unsubscribe()
        sim.run(max_events=100)
        assert len(seen) == count

    def test_deepcopy_clone_gets_empty_bus(self):
        import copy

        bus = ProbeBus()
        bus.subscribe("slot_end", lambda e: None)
        clone = copy.deepcopy(bus)
        assert not clone.any_subscribers

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            ProbeBus().subscribe("slot_middle", lambda e: None)


class TestMetricsInstruments:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        gauge = registry.gauge("g")
        for value in (3, 7, 1):
            gauge.set(value)
        histogram = registry.histogram("h", window=2)
        for value in (1, 1, 2, 3):
            histogram.observe(value)
        assert counter.snapshot() == 5
        assert gauge.snapshot() == {"value": 1, "max": 7, "min": 1}
        assert histogram.counts == {1: 2, 2: 1, 3: 1}
        assert histogram.recent_counts() == {2: 1, 3: 1}
        assert registry.counter("c") is counter
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_simulation_metrics_match_run_metrics(self):
        bus = ProbeBus()
        sim_metrics = SimulationMetrics()
        sim_metrics.attach(bus)
        sim = _build(probes=bus)
        sim.run(until_time=800)
        metrics = collect_metrics(sim)
        registry = sim_metrics.registry

        assert registry.counter("slots").value == sim.events_processed
        assert registry.counter("delivered").value == metrics.delivered
        assert registry.counter("collisions").value == metrics.collisions
        assert registry.counter("control_messages").value == metrics.control_transmissions
        assert registry.gauge("backlog").max == metrics.max_backlog
        assert registry.gauge("backlog").value == metrics.backlog
        mix = sum(
            registry.counter(f"feedback.{kind}").value
            for kind in ("ack", "silence", "busy")
        )
        assert mix == sim.events_processed
        lengths = registry.histogram("slot_length")
        assert lengths.count == sim.events_processed
        assert all(Fraction(1) <= value <= Fraction(2) for value in lengths.counts)

    def test_render_and_snapshot_are_json_safe(self):
        bus = ProbeBus()
        sim_metrics = SimulationMetrics()
        sim_metrics.attach(bus)
        sim = _build(probes=bus)
        sim.run(until_time=200)
        snapshot = sim_metrics.snapshot()
        json.dumps(snapshot)  # must not raise
        assert any("slot_length" in line for line in sim_metrics.render())


class TestArtifacts:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        bus = ProbeBus()
        sim_metrics = SimulationMetrics()
        sim_metrics.attach(bus)
        writer = JsonlRunWriter(
            path,
            RunManifest.create(algorithm="ao-arrow", n=3, max_slot_length=Fraction(2)),
            metrics=sim_metrics,
        ).attach(bus)
        sim = _build(probes=bus)
        sim.run(until_time=500)
        writer.close(sim=sim)

        artifact = load_run(path)
        assert artifact.manifest["config"]["algorithm"] == "ao-arrow"
        assert artifact.manifest["config"]["max_slot_length"] == "2"
        assert artifact.summary["slot_events"] == sim.events_processed
        assert len(artifact.of_type("slot")) == sim.events_processed
        assert len(artifact.of_type("delivery")) == len(sim.delivered_packets)

        stats = summarize_run(artifact)
        assert stats["slot_events"] == sim.events_processed
        assert stats["delivered"] == len(sim.delivered_packets)
        assert stats["max_backlog"] == sim.trace.max_backlog
        assert stats["collisions"] == sim.channel.stats.collisions
        mix = stats["feedback_mix"]
        assert sum(mix.values()) == sim.events_processed
        assert sum(stats["slot_length_histogram"].values()) == sim.events_processed
        assert render_summary(stats)  # renders without raising

    def test_slot_stride_thins_only_slot_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        bus = ProbeBus()
        writer = JsonlRunWriter(path, slot_stride=10).attach(bus)
        sim = _build(probes=bus)
        sim.run(until_time=400)
        writer.close(sim=sim)
        artifact = load_run(path)
        assert len(artifact.of_type("slot")) == sim.events_processed // 10
        assert len(artifact.of_type("delivery")) == len(sim.delivered_packets)
        # The summary still carries exact totals.
        assert artifact.summary["slot_events"] == sim.events_processed

    def test_truncated_artifact_still_loads(self, tmp_path):
        path = tmp_path / "run.jsonl"
        bus = ProbeBus()
        writer = JsonlRunWriter(
            path, RunManifest.create(algorithm="ao-arrow")
        ).attach(bus)
        sim = _build(probes=bus)
        sim.run(until_time=200)
        writer.close(sim=sim)
        text = path.read_text()
        path.write_text(text[: len(text) * 2 // 3])  # simulate a crash
        artifact = load_run(path)
        assert artifact.manifest is not None
        assert artifact.records  # a readable prefix survived
        summarize_run(artifact)  # and it still summarizes

    def test_invalid_writer_params_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlRunWriter(tmp_path / "x.jsonl", slot_stride=0)
        with pytest.raises(ValueError):
            JsonlRunWriter(tmp_path / "y.jsonl", metrics_every=0)


class TestProfilingAndProgress:
    def test_profiler_attributes_all_three_phases(self):
        profiler = PhaseProfiler()
        sim = _build(profiler=profiler)
        sim.run(until_time=300)
        assert set(profiler.seconds) == {"adversary", "channel", "algorithm"}
        assert profiler.calls["channel"] == sim.events_processed
        # first_action (n stations) + one step per processed event
        assert profiler.calls["algorithm"] == sim.events_processed + sim.n_stations
        report = profiler.as_dict()
        json.dumps(report)
        assert report["phases"]["channel"]["calls"] == sim.events_processed
        assert any("channel" in line for line in profiler.render())

    def test_progress_reporter_emits_lines(self):
        stream = io.StringIO()
        bus = ProbeBus()
        reporter = ProgressReporter(
            every_events=100, min_interval_s=0.0, stream=stream
        )
        reporter.attach(bus)
        sim = _build(probes=bus)
        sim.run(max_events=350)
        assert reporter.reports_emitted == 3
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert "events=100" in lines[0] and "backlog=" in lines[0]

    def test_progress_reporter_validates_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(every_events=0)


class TestRandomizedAlgorithmsStayDeterministic:
    def test_seeded_aloha_identical_with_and_without_probes(self):
        def build(probes=None):
            n = 3
            return Simulator(
                {
                    i: SlottedAloha(i, transmit_probability=Fraction(1, 3), seed=5)
                    for i in range(1, n + 1)
                },
                RandomUniform(2, seed=9),
                max_slot_length=2,
                initial_packets=4,
                probes=probes,
            )

        bare = build()
        bare.run(until_time=300)
        probed = build(ProbeBus())
        probed.run(until_time=300)
        assert _fingerprint(bare) == _fingerprint(probed)
