"""Tests for the ASCII timeline renderers."""

from fractions import Fraction

from repro.algorithms import ABSLeaderElection
from repro.analysis import segment_rounds
from repro.arrivals import BurstyRate
from repro.core import Simulator, Trace
from repro.timing import PerStationFixed, worst_case_for
from repro.viz import render_phases, render_timeline

from .helpers import make_ao


def abs_trace(R=2):
    algos = {i: ABSLeaderElection(i, R) for i in (1, 2, 3)}
    trace = Trace(record_slots=True)
    sim = Simulator(
        algos, PerStationFixed({1: 1, 2: "3/2", 3: 2}), max_slot_length=R, trace=trace
    )
    sim.run_until_success()
    return sim, trace


class TestRenderTimeline:
    def test_contains_station_lanes_and_legend(self):
        _, trace = abs_trace()
        text = render_timeline(trace, width=60)
        assert "s1" in text and "s2" in text and "s3" in text
        assert "legend:" in text

    def test_empty_trace_message(self):
        assert "empty trace" in render_timeline(Trace(record_slots=True))

    def test_station_filter(self):
        _, trace = abs_trace()
        text = render_timeline(trace, stations=[2], width=60)
        assert "s2" in text and "s1" not in text

    def test_window_clipping(self):
        _, trace = abs_trace()
        clipped = render_timeline(trace, start=0, end=2, width=40)
        assert "s1" in clipped

    def test_transmissions_rendered_with_transmit_glyphs(self):
        sim, trace = abs_trace()
        sim.run(max_events=sim.events_processed + 6)  # flush winner's record
        text = render_timeline(trace, width=80)
        assert "*" in text or "#" in text

    def test_width_respected(self):
        _, trace = abs_trace()
        for line in render_timeline(trace, width=50).splitlines():
            if line.startswith("legend:"):
                continue  # the legend is prose, not a lane
            assert len(line) <= 50 + 14  # label margin


class TestRenderPhases:
    def test_empty(self):
        assert "no phases" in render_phases([])

    def test_round_digits_and_counts(self):
        n, R = 3, 2
        src = BurstyRate(
            rho="1/2", burst_size=3, targets=[1, 2, 3], assumed_cost=R, limit=12
        )
        sim = Simulator(
            make_ao(n, R),
            worst_case_for(R),
            max_slot_length=R,
            arrival_source=src,
            trace=Trace(record_slots=True),
            keep_channel_history=True,
        )
        sim.run(until_time=2500)
        phases = segment_rounds(sim, silence_gap=30)
        text = render_phases(phases, width=80)
        assert "phases=" in text and "rounds=" in text
        assert "[" in text
