"""Chaos tests for the fault-tolerant exec engine.

The contract under test: whatever the engine has to survive — worker
crashes, hung tasks, transient failures, torn cache writes, a fork
that stops working, a Ctrl-C mid-grid — the results that come out are
**bit-identical** to an undisturbed serial run, and everything the
recovery machinery did is visible in :class:`repro.exec.RunHealth`.

Faults are injected on a fixed schedule by :mod:`repro.exec.chaos`
(real ``os._exit`` crashes in forked workers, real sleeps for hangs),
so every recovery path here is exercised for real, deterministically.

``REPRO_CHAOS_JOBS`` widens the pool (CI runs the suite at 4).
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time
from fractions import Fraction

import pytest

from repro.algorithms import CAArrow
from repro.analysis import (
    ExperimentCell,
    grid_key,
    run_cell,
    run_grid,
    run_grid_report,
)
from repro.arrivals import UniformRate
from repro.exec import (
    MISS,
    ChaosError,
    ChaosEvent,
    ChaosPlan,
    GridJournal,
    JournalMismatch,
    ResultCache,
    RunHealth,
    TaskError,
    TruncatingCache,
    backoff_delay,
    chaos_tasks,
    fork_available,
    run_tasks,
)
from repro.timing import worst_case_for

CHAOS_JOBS = int(os.environ.get("REPRO_CHAOS_JOBS", "2"))

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork-based pool unavailable"
)


def cell(name="demo", rho="1/2", R=2, horizon=900, labels=None):
    n = 3
    return ExperimentCell(
        name=name,
        algorithms=lambda: {i: CAArrow(i, n, R) for i in range(1, n + 1)},
        slot_adversary=lambda: worst_case_for(R),
        arrival_source=lambda: UniformRate(
            rho=rho, targets=[1, 2, 3], assumed_cost=R
        ),
        max_slot_length=R,
        horizon=horizon,
        labels=labels or {"rho": rho},
    )


def failing_cell(name="boom"):
    def explode():
        raise ValueError("algorithms factory exploded")

    return ExperimentCell(
        name=name,
        algorithms=explode,
        slot_adversary=lambda: worst_case_for(2),
        arrival_source=lambda: UniformRate(
            rho="1/2", targets=[1, 2, 3], assumed_cost=2
        ),
        max_slot_length=2,
        horizon=900,
    )


def sim_tasks(count=5):
    """Real (small) simulation tasks plus their undisturbed results."""
    cells = [cell(name=f"c{i}", rho=Fraction(i + 1, count + 2)) for i in range(count)]
    tasks = [
        (lambda c: (lambda: run_cell(c)))(c) for c in cells
    ]
    baseline = [run_cell(c) for c in cells]
    return tasks, baseline


class TestBackoff:
    def test_deterministic_doubling_with_cap(self):
        assert [backoff_delay(0.05, a) for a in (1, 2, 3)] == [0.05, 0.1, 0.2]
        assert backoff_delay(0.5, 10) == 2.0
        assert backoff_delay(0.0, 3) == 0.0

    def test_run_tasks_validates_knobs(self):
        with pytest.raises(ValueError):
            run_tasks([lambda: 1], retries=-1)
        with pytest.raises(ValueError):
            run_tasks([lambda: 1], on_error="explode")


class TestRetriesSerial:
    def test_transient_failure_retried_to_success(self, tmp_path):
        tasks, baseline = sim_tasks(3)
        plan = ChaosPlan(events=(ChaosEvent("raise", index=1, attempts=1),))
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        run = run_tasks(wrapped, jobs=1, retries=2, backoff_base=0.001)
        assert run.values == baseline
        assert run.health.retries == 1
        assert run.health.failures == 0

    def test_exhausted_retries_capture_taskerror(self, tmp_path):
        tasks, baseline = sim_tasks(3)
        plan = ChaosPlan(events=(ChaosEvent("raise", index=1, attempts=5),))
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        run = run_tasks(
            wrapped, jobs=1, retries=1, backoff_base=0.001, on_error="capture"
        )
        error = run.values[1]
        assert isinstance(error, TaskError)
        assert error.index == 1
        assert error.attempts == 2
        assert error.kind == "error"
        assert error.error_type == "ChaosError"
        assert "injected failure" in error.message
        assert "ChaosError" in error.traceback_text
        # The siblings are untouched and still exact.
        assert run.values[0] == baseline[0]
        assert run.values[2] == baseline[2]
        assert run.health.failures == 1
        assert run.task_workers[1] == 0

    def test_default_mode_still_raises(self, tmp_path):
        plan = ChaosPlan(events=(ChaosEvent("raise", index=0, attempts=9),))
        wrapped = chaos_tasks([lambda: 1], plan, tmp_path / "chaos")
        with pytest.raises(ChaosError):
            run_tasks(wrapped, jobs=1, retries=1, backoff_base=0.001)


@needs_fork
class TestCrashRecovery:
    def test_crashed_worker_loses_only_its_task(self, tmp_path):
        tasks, baseline = sim_tasks(5)
        plan = ChaosPlan(
            events=(
                ChaosEvent("crash", index=1, attempts=1),
                ChaosEvent("crash", index=3, attempts=1),
            )
        )
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        run = run_tasks(
            wrapped, jobs=CHAOS_JOBS, retries=2, backoff_base=0.001
        )
        assert run.values == baseline  # bit-identical despite real crashes
        assert run.mode == "fork-pool"
        assert run.health.worker_crashes >= 2
        assert run.health.retries >= 2
        assert run.health.pool_respawns >= 1
        assert run.health.failures == 0
        assert run.health.disturbed

    def test_crash_beyond_budget_surfaces_as_taskerror(self, tmp_path):
        tasks, baseline = sim_tasks(3)
        plan = ChaosPlan(events=(ChaosEvent("crash", index=2, attempts=9),))
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        run = run_tasks(
            wrapped,
            jobs=CHAOS_JOBS,
            retries=1,
            backoff_base=0.001,
            on_error="capture",
        )
        error = run.values[2]
        assert isinstance(error, TaskError)
        assert error.kind == "crash"
        assert "87" in error.message  # CRASH_EXIT_CODE is visible
        assert run.values[:2] == baseline[:2]
        assert run.health.failures == 1

    def test_crash_in_raise_mode_aborts(self, tmp_path):
        tasks, _ = sim_tasks(2)
        plan = ChaosPlan(events=(ChaosEvent("crash", index=0, attempts=9),))
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        with pytest.raises(RuntimeError, match="crash"):
            run_tasks(wrapped, jobs=CHAOS_JOBS, retries=0)


@needs_fork
class TestTimeouts:
    def test_hung_task_is_killed_and_retried(self, tmp_path):
        tasks, baseline = sim_tasks(4)
        plan = ChaosPlan(
            events=(ChaosEvent("hang", index=2, attempts=1),), hang_s=30.0
        )
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        began = time.monotonic()
        run = run_tasks(
            wrapped,
            jobs=CHAOS_JOBS,
            task_timeout=1.0,
            retries=1,
            backoff_base=0.001,
        )
        assert time.monotonic() - began < 15.0  # nobody waited out the hang
        assert run.values == baseline
        assert run.health.timeouts >= 1
        assert run.health.retries >= 1
        assert run.health.failures == 0

    def test_timeout_beyond_budget_is_a_taskerror(self, tmp_path):
        tasks, baseline = sim_tasks(3)
        plan = ChaosPlan(
            events=(ChaosEvent("hang", index=0, attempts=9),), hang_s=30.0
        )
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        run = run_tasks(
            wrapped,
            jobs=CHAOS_JOBS,
            task_timeout=0.5,
            retries=0,
            on_error="capture",
        )
        error = run.values[0]
        assert isinstance(error, TaskError)
        assert error.kind == "timeout"
        assert "task_timeout" in error.message
        assert run.values[1:] == baseline[1:]


@needs_fork
class TestDegradedMode:
    def test_fork_failure_degrades_to_serial(self, monkeypatch, tmp_path):
        import repro.exec.pool as pool_mod

        def no_fork(context):
            raise OSError("fork: Resource temporarily unavailable")

        monkeypatch.setattr(pool_mod, "_spawn_worker", no_fork)
        tasks, baseline = sim_tasks(3)
        run = run_tasks(tasks, jobs=CHAOS_JOBS)
        assert run.values == baseline
        assert run.health.degraded
        assert run.health.failures == 0


class TestGridFailureSurface:
    def test_report_names_failed_cells(self):
        cells = [cell(name="ok-a"), failing_cell("boom"), cell(name="ok-b", rho="7/10")]
        report = run_grid_report(cells)
        assert [f.name for f in report.failures] == ["boom"]
        assert report.failures[0].error.error_type == "ValueError"
        assert [r.name for r in report.results] == ["ok-a", "ok-b"]
        assert report.health.failures == 1

    def test_run_grid_raises_with_cell_name(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_grid([cell(name="fine"), failing_cell("boom")])


@needs_fork
class TestGridChaosParity:
    """The acceptance test: a grid disturbed by every chaos mode at once
    still produces results bit-identical to an undisturbed serial run."""

    def test_disturbed_grid_matches_undisturbed_serial(self, tmp_path):
        tasks, baseline = sim_tasks(6)
        plan = ChaosPlan(
            events=(
                ChaosEvent("crash", index=0, attempts=1),
                ChaosEvent("raise", index=2, attempts=2),
                ChaosEvent("hang", index=4, attempts=1),
            ),
            hang_s=30.0,
        )
        wrapped = chaos_tasks(tasks, plan, tmp_path / "chaos")
        run = run_tasks(
            wrapped,
            jobs=CHAOS_JOBS,
            task_timeout=2.0,
            retries=3,
            backoff_base=0.001,
        )
        assert run.values == baseline
        assert run.health.worker_crashes >= 1
        assert run.health.timeouts >= 1
        assert run.health.retries >= 3
        assert run.health.failures == 0

    def test_torn_cache_write_recovers_on_rerun(self, tmp_path):
        cells = [cell(name=f"g{i}", rho=Fraction(i + 1, 8)) for i in range(3)]
        baseline = run_grid(cells)
        torn = TruncatingCache(tmp_path / "cache", truncate_stores=(2,))
        first = run_grid_report(cells, cache=torn)
        assert first.results == baseline
        assert len(torn.torn_keys) == 1
        # The torn entry reads as a miss (and is dropped), the healthy
        # ones hit; the re-run recomputes exactly the torn cell.
        clean = ResultCache(tmp_path / "cache")
        second = run_grid_report(cells, cache=clean)
        assert second.results == baseline
        assert second.cache_hits == 2
        assert second.cache_misses == 1
        third = run_grid_report(cells, cache=clean)
        assert third.cache_hits == 3


class TestGridJournal:
    def test_round_trip_and_resume_skips_recorded_cells(self, tmp_path):
        cells = [cell(name=f"j{i}", rho=Fraction(i + 1, 6)) for i in range(4)]
        path = tmp_path / "grid.jsonl"
        first = run_grid_report(cells, journal=path)
        assert first.journal_hits == 0
        assert path.exists()
        resumed = run_grid_report(cells, journal=path, resume=True)
        assert resumed.journal_hits == 4
        assert resumed.results == first.results

    def test_partial_journal_recomputes_only_missing(self, tmp_path):
        cells = [cell(name=f"p{i}", rho=Fraction(i + 1, 6)) for i in range(4)]
        full = run_grid(cells)
        path = tmp_path / "grid.jsonl"
        with GridJournal(path) as journal:
            journal.start(grid_key(cells, 8), len(cells))
            journal.record(0, cells[0].name, full[0])
            journal.record(2, cells[2].name, full[2])
        report = run_grid_report(cells, journal=path, resume=True)
        assert report.journal_hits == 2
        assert report.results == full

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        cells = [cell(name=f"t{i}", rho=Fraction(i + 1, 6)) for i in range(3)]
        path = tmp_path / "grid.jsonl"
        run_grid_report(cells, journal=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 99, "name": "torn", "resu')  # no newline
        state = GridJournal(path).load()
        assert set(state.results) == {0, 1, 2}
        report = run_grid_report(cells, journal=path, resume=True)
        assert report.journal_hits == 3

    def test_journal_of_different_grid_is_rejected(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        run_grid_report([cell(name="original")], journal=path)
        other = [cell(name="different", rho="7/10")]
        with pytest.raises(JournalMismatch):
            run_grid_report(other, journal=path, resume=True)
        # Without --resume the journal is simply overwritten.
        report = run_grid_report(other, journal=path)
        assert report.journal_hits == 0

    def test_journal_survives_failed_cells(self, tmp_path):
        cells = [cell(name="ok"), failing_cell("bad")]
        path = tmp_path / "grid.jsonl"
        report = run_grid_report(cells, journal=path)
        assert [f.name for f in report.failures] == ["bad"]
        state = GridJournal(path).load()
        assert set(state.results) == {0}  # only the completed cell


@needs_fork
class TestKeyboardInterrupt:
    def test_sigint_mid_grid_keeps_journal_and_resumes(self, tmp_path):
        repo = pathlib.Path(__file__).resolve().parents[1]
        journal = tmp_path / "grid.jsonl"
        args = [
            sys.executable, "-m", "repro", "grid",
            "--algorithms", "ca-arrow,ao-arrow",
            "--rhos", "3/10,1/2,7/10",
            "--n", "4", "--horizon", "60000",
            "--jobs", str(CHAOS_JOBS),
            "--no-cache",
            "--journal", str(journal),
        ]
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))
        proc = subprocess.Popen(
            args, cwd=repo, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # Wait for at least one checkpointed cell, then interrupt.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                state = GridJournal(journal).load()
                if state is not None and state.results:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no cell checkpointed within 120s")
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode == 0:
            pytest.skip("grid finished before SIGINT landed")
        assert proc.returncode != 0
        state = GridJournal(journal).load()
        assert state is not None and state.results  # completed cells kept

        # The follow-up --resume completes, reusing the journal.
        from repro.cli import main

        code = main([
            "grid",
            "--algorithms", "ca-arrow,ao-arrow",
            "--rhos", "3/10,1/2,7/10",
            "--n", "4", "--horizon", "60000",
            "--no-cache",
            "--journal", str(journal),
            "--resume",
        ])
        assert code == 0
        final = GridJournal(journal).load()
        assert len(final.results) == 6


class TestCacheHardening:
    def test_scratch_names_are_process_and_call_unique(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        target = cache.path_for("ab" * 32)
        first = cache._scratch_for(target)
        second = cache._scratch_for(target)
        assert first != second
        assert str(os.getpid()) in first.name

    @needs_fork
    def test_concurrent_writers_leave_consistent_entries(self, tmp_path):
        import multiprocessing

        root = tmp_path / "cache"
        seed_cache = ResultCache(root)
        keys = [format(i, "02x") * 32 for i in range(4)]

        def hammer(worker_seed):
            cache = ResultCache(root)
            for round_no in range(25):
                key = keys[(worker_seed + round_no) % len(keys)]
                cache.put(key, {"key": key, "value": Fraction(1, 3)})
            return 0

        context = multiprocessing.get_context("fork")
        procs = [context.Process(target=hammer, args=(i,)) for i in range(4)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        for key in keys:
            value = seed_cache.get(key)
            assert value is not MISS
            assert value["key"] == key
        # No scratch files left behind by any writer.
        assert not list(root.rglob("*.tmp.*"))
        verification = seed_cache.verify()
        assert verification.clean
        assert verification.checked == len(keys)

    def test_corrupt_entry_reads_as_miss_and_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "cd" * 32
        cache.put(key, [Fraction(7, 3)])
        path = cache.path_for(key)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.get(key) is MISS
        assert not path.exists()  # dropped, not left to fail again

    def test_verify_quarantines_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good, bad = "aa" * 32, "bb" * 32
        cache.put(good, "fine")
        cache.put(bad, "doomed")
        bad_path = cache.path_for(bad)
        bad_path.write_bytes(bad_path.read_bytes()[:10])
        verification = cache.verify()
        assert verification.checked == 2
        assert verification.ok == 1
        assert len(verification.quarantined) == 1
        assert not verification.clean
        assert not bad_path.exists()
        quarantined = verification.quarantined[0]
        assert quarantined.exists()
        assert "quarantine" in str(quarantined)
        # Quarantined files never masquerade as entries again.
        assert cache.get(bad) is MISS
        assert len(list(cache.entries())) == 1
        assert cache.get(good) == "fine"

    def test_truncating_cache_tears_scheduled_stores(self, tmp_path):
        cache = TruncatingCache(tmp_path / "cache", truncate_stores=(1,))
        key = "ee" * 32
        cache.put(key, "value")
        assert cache.torn_keys == [key]
        assert cache.get(key) is MISS
        cache.put(key, "value")  # store #2 is not scheduled: intact
        assert cache.get(key) == "value"

    def test_lock_is_reentrant_per_operation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with cache.lock():
            pass  # acquire/release cycles cleanly
        cache.put("ff" * 32, "v")
        assert cache.clear() == 1


class TestCLI:
    def test_cache_verify_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "cache"
        cache = ResultCache(root)
        cache.put("ab" * 32, "ok-value")
        assert main(["cache", "verify", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 ok, 0 quarantined" in out

        path = cache.path_for("ab" * 32)
        path.write_bytes(path.read_bytes()[:7])
        assert main(["cache", "verify", "--cache-dir", str(root)]) == 1
        captured = capsys.readouterr()
        assert "1 quarantined" in captured.out
        assert "quarantined:" in captured.err

    def test_grid_journal_resume_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "grid.jsonl"
        base = [
            "grid", "--algorithms", "ca-arrow", "--rhos", "3/10,1/2",
            "--n", "3", "--horizon", "1200", "--no-cache",
            "--journal", str(journal),
        ]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert f"journal: {journal}" in out
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "(2 cells resumed)" in out

    @needs_fork
    def test_grid_timeout_failures_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        # Two cells: a single-task run would fold to the serial path,
        # where a running task cannot be preempted by the timeout.
        code = main([
            "grid", "--algorithms", "ca-arrow", "--rhos", "1/2,7/10",
            "--n", "4", "--horizon", "200000", "--no-cache",
            "--jobs", "2", "--task-timeout", "0.05",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED cells" in captured.err
        assert "ca-arrow@rho=1/2" in captured.err
        assert "health:" in captured.out
        assert "timeouts=" in captured.out
