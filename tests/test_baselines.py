"""Tests for the synchronous baselines: RRW, NaiveTDMA, MBTFLike, Aloha.

The Fig. 1 story these back up: all of them behave well at ``R = 1``
(their home model), and the collision-avoiding control-free ones (RRW,
TDMA) break under bounded asynchrony.
"""

from fractions import Fraction

import pytest

from repro.algorithms import MBTFLike, NaiveTDMA, RRW, SlottedAloha
from repro.analysis import assess_stability, collect_metrics
from repro.arrivals import UniformRate
from repro.core import ConfigurationError, Simulator, Trace
from repro.timing import PerStationFixed, Synchronous, worst_case_for

from .helpers import make_mbtf, make_rrw


def run_sync(algos, rho, horizon=10_000, assumed_cost=1):
    trace = Trace(backlog_stride=8)
    src = UniformRate(rho=rho, targets=sorted(algos), assumed_cost=assumed_cost)
    sim = Simulator(
        algos, Synchronous(), max_slot_length=1, arrival_source=src, trace=trace
    )
    sim.run(until_time=horizon)
    return sim, trace


class TestRRWSynchronous:
    @pytest.mark.parametrize("rho", ["1/2", "4/5", "19/20"])
    def test_universally_stable(self, rho):
        sim, trace = run_sync(make_rrw(4), rho)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 10_000, tolerance=5).stable

    def test_collision_free_under_synchrony(self):
        sim, _ = run_sync(make_rrw(4), "4/5")
        assert sim.channel.stats.collisions == 0

    def test_no_control_messages_ever(self):
        sim, _ = run_sync(make_rrw(3), "1/2")
        assert sim.channel.stats.control_transmissions == 0

    def test_throughput_tracks_rate(self):
        sim, _ = run_sync(make_rrw(3), "4/5", horizon=20_000)
        metrics = collect_metrics(sim)
        assert metrics.throughput_cost > Fraction(7, 10)

    def test_id_validation(self):
        with pytest.raises(ConfigurationError):
            RRW(5, 4)


class TestRRWUnderAsynchrony:
    def test_collides_or_starves(self):
        # The Fig. 1 row-1 contrast: RRW's silence-passing token breaks
        # once slots desynchronize.
        n, R = 3, 2
        algos = make_rrw(n)
        src = UniformRate(rho="1/2", targets=[1, 2, 3], assumed_cost=R)
        sim = Simulator(
            algos,
            PerStationFixed({1: 1, 2: "3/2", 3: 2}),
            max_slot_length=R,
            arrival_source=src,
        )
        sim.run(until_time=5000)
        misbehaved = (
            sim.channel.stats.collisions > 0
            or sim.total_backlog > 50
        )
        assert misbehaved


class TestNaiveTDMA:
    def test_collision_free_under_synchrony(self):
        n = 3
        algos = {i: NaiveTDMA(i, n) for i in range(1, n + 1)}
        src = UniformRate(rho="3/4", targets=[1, 2, 3], assumed_cost=1)
        sim = Simulator(
            algos, Synchronous(), max_slot_length=1, arrival_source=src
        )
        sim.run(until_time=5000)
        assert sim.channel.stats.collisions == 0

    def test_stable_below_one_over_n_per_station(self):
        n = 4
        algos = {i: NaiveTDMA(i, n) for i in range(1, n + 1)}
        trace = Trace(backlog_stride=8)
        src = UniformRate(rho="3/4", targets=list(range(1, 5)), assumed_cost=1)
        sim = Simulator(
            algos, Synchronous(), max_slot_length=1, arrival_source=src, trace=trace
        )
        sim.run(until_time=10_000)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 10_000, tolerance=5).stable

    def test_collides_under_asynchrony(self):
        # Both stations hold packets at once; drifting slot grids make
        # their "own" slots overlap in real time.
        from repro.arrivals import StaticSchedule

        n = 2
        algos = {i: NaiveTDMA(i, n) for i in range(1, n + 1)}
        src = StaticSchedule([(0, 1), (0, 1), (0, 2), (0, 2)])
        sim = Simulator(
            algos,
            PerStationFixed({1: 1, 2: "3/2"}),
            max_slot_length=2,
            arrival_source=src,
        )
        sim.run(until_time=100)
        assert sim.channel.stats.collisions > 0

    def test_ignores_feedback(self):
        # Oblivious schedule: identical decisions whatever the channel says.
        from repro.core import Feedback, SlotContext

        a = NaiveTDMA(1, 3)
        b = NaiveTDMA(1, 3)
        for idx in range(1, 20):
            ctx_busy = SlotContext(feedback=Feedback.BUSY, queue_size=2, slot_index=idx)
            ctx_silent = SlotContext(
                feedback=Feedback.SILENCE, queue_size=2, slot_index=idx
            )
            assert a.on_slot_end(ctx_busy) == b.on_slot_end(ctx_silent)


class TestMBTFLike:
    @pytest.mark.parametrize("rho", ["1/2", "4/5"])
    def test_universally_stable(self, rho):
        sim, trace = run_sync(make_mbtf(4), rho)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 10_000, tolerance=5).stable

    def test_collision_free_under_synchrony(self):
        sim, _ = run_sync(make_mbtf(4), "4/5")
        assert sim.channel.stats.collisions == 0

    def test_uses_control_messages_when_idle(self):
        sim = Simulator(make_mbtf(3), Synchronous(), max_slot_length=1)
        sim.run(until_time=500)
        assert sim.channel.stats.control_transmissions > 10

    def test_turns_rotate(self):
        sim, _ = run_sync(make_mbtf(3), "1/2", horizon=3000)
        assert all(
            sim.algorithm(i).stats.turns_taken > 0 for i in sim.station_ids
        )


class TestSlottedAloha:
    def test_probability_validation(self):
        with pytest.raises(ConfigurationError):
            SlottedAloha(1, transmit_probability=0.0)
        with pytest.raises(ConfigurationError):
            SlottedAloha(1, transmit_probability=1.5)

    def test_deterministic_per_seed(self):
        def run(seed):
            n = 3
            algos = {
                i: SlottedAloha(i, transmit_probability=1 / n, seed=seed)
                for i in range(1, n + 1)
            }
            src = UniformRate(rho="1/5", targets=[1, 2, 3], assumed_cost=1)
            sim = Simulator(
                algos, Synchronous(), max_slot_length=1, arrival_source=src
            )
            sim.run(until_time=2000)
            return (len(sim.delivered_packets), sim.channel.stats.collisions)

        assert run(5) == run(5)

    def test_stable_at_low_rate(self):
        n = 3
        algos = {
            i: SlottedAloha(i, transmit_probability=1 / n, seed=1)
            for i in range(1, n + 1)
        }
        trace = Trace(backlog_stride=8)
        src = UniformRate(rho="1/5", targets=[1, 2, 3], assumed_cost=1)
        sim = Simulator(
            algos, Synchronous(), max_slot_length=1, arrival_source=src, trace=trace
        )
        sim.run(until_time=10_000)
        samples = trace.backlog_series()
        samples.append((sim.now, sim.total_backlog))
        assert assess_stability(samples, 10_000, tolerance=5).stable

    def test_unstable_at_high_rate(self):
        # Far above 1/e: collisions dominate and the backlog diverges —
        # the Section I comparison point against ARRoW's rho -> 1.
        n = 3
        algos = {
            i: SlottedAloha(i, transmit_probability=1 / n, seed=1)
            for i in range(1, n + 1)
        }
        src = UniformRate(rho="9/10", targets=[1, 2, 3], assumed_cost=1)
        sim = Simulator(
            algos, Synchronous(), max_slot_length=1, arrival_source=src
        )
        sim.run(until_time=10_000)
        assert sim.total_backlog > 100

    def test_collisions_happen(self):
        n = 4
        algos = {
            i: SlottedAloha(i, transmit_probability=0.5, seed=3)
            for i in range(1, n + 1)
        }
        src = UniformRate(rho="1/2", targets=list(range(1, 5)), assumed_cost=1)
        sim = Simulator(
            algos, Synchronous(), max_slot_length=1, arrival_source=src
        )
        sim.run(until_time=2000)
        assert sim.channel.stats.collisions > 0
